//! Per-site configuration: geo gating, anti-bot CDNs, load speed, and
//! publisher customization of the embedded consent dialog (paper §4.1).
//!
//! All draws are deterministic functions of the site seed, so the same
//! world always produces the same behaviours.

use crate::cmp::Cmp;
use consent_util::{date::known, Day, SeedTree};

/// How a site's CMP embed reacts to the visitor's apparent location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeoBehavior {
    /// CMP framework always embedded (possibly with the dialog shown only
    /// to EU visitors — the framework request is still observable).
    EmbedAlways,
    /// CMP embedded only when the visitor appears to be in the EU.
    EmbedOnlyEu,
    /// CMP hidden from EU visitors (CCPA-only products, §4.1 TrustArc).
    HideFromEu,
    /// The site responds HTTP 451 to EU visitors entirely (§3.5).
    Block451Eu,
}

/// Publisher customization class of an embedded dialog, unifying the
/// §4.1 taxonomies across CMPs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DialogStyle {
    /// Conventional cookie banner: 1-click accept, link to more info
    /// (OneTrust majority: 61 %).
    ConventionalBanner,
    /// Banner with an explicit opt-out button ("Do Not Sell", "Deny All").
    OptOutButtonBanner {
        /// 40 % of such banners still require a confirmation click.
        needs_confirm: bool,
    },
    /// "Script banner": accept + reject/manage *scripts* (OneTrust 5.5 %).
    ScriptBanner,
    /// No banner; only a footer link to privacy controls (OneTrust 7.5 %).
    FooterLinkOnly,
    /// Quantcast-style modal with a direct reject button (55 % of
    /// Quantcast sites).
    DirectReject,
    /// Quantcast-style modal where the second button is "More Options"
    /// (45 %) — rejecting takes extra steps.
    MoreOptions,
    /// TrustArc instant 1-click opt-out (7 %).
    InstantOptOut,
    /// TrustArc opt-out that must contact multiple partners (12 %) — the
    /// Figure 9 waiting-time case.
    MultiPartnerOptOut,
    /// First-page button implying user autonomy without real controls
    /// (TrustArc 44 %).
    AutonomyButton,
    /// Link or button that does not imply control (TrustArc 31 %).
    NoControlLink,
    /// The site uses the CMP's API only and draws its own dialog (~8 %
    /// of CMP sites overall).
    CustomApiOnly,
}

/// Wording class of the affirmative button (Quantcast §4.1: 87 % use an
/// "I agree/consent/accept" variant; 13 % free-form like "Whatever").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AcceptWording {
    /// Conventional affirmative wording.
    AgreeVariant,
    /// Free-form text that may not qualify as affirmative consent.
    FreeForm,
}

/// Full behavioural configuration of one CMP-embedding site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteBehavior {
    /// Geo gating of the embed.
    pub geo: GeoBehavior,
    /// Site sits behind an anti-bot CDN that serves interstitials to
    /// cloud-datacenter IPs (§3.5: hides ~10 % of CMPs from cloud crawls).
    pub anti_bot_cdn: bool,
    /// CMP resources load late; missed under the crawler's aggressive
    /// timeouts (§3.5: ~2 %).
    pub slow_load: bool,
    /// Publisher's dialog customization.
    pub dialog: DialogStyle,
    /// Accept-button wording.
    pub wording: AcceptWording,
    /// Site embeds a *second* CMP (0.01 % of captures, §3.5).
    pub second_cmp: Option<Cmp>,
    /// The privacy-policy subsite carries no external scripts at all
    /// (true for a minority of sites; exercises the ≥⅓-captures
    /// heuristic, §3.5).
    pub bare_privacy_page: bool,
    /// For [`GeoBehavior::EmbedOnlyEu`] sites: the day the publisher
    /// reconfigured the embed for US visitors too (CCPA compliance).
    /// `None` = never. Drives the US-coverage growth between the paper's
    /// January and May 2020 snapshots (Table A.3 → Table 1).
    pub ccpa_adapted: Option<Day>,
}

/// Draw the behaviour for a site embedding `cmp`, adopted on `adopted`.
///
/// Geo gating depends on the adoption era: GDPR-era adopters often embed
/// only for EU visitors, while CCPA-era adopters target US visitors too —
/// which is why US-vantage coverage grows between the paper's January and
/// May 2020 snapshots (Table A.3 vs Table 1).
pub fn behavior_for(cmp: Cmp, adopted: Day, site_seed: SeedTree) -> SiteBehavior {
    let s = site_seed.child("behavior");
    let geo = {
        let u = s.child("geo").unit_f64();
        let p_451 = 0.001;
        let era_mult = if adopted < known::ccpa_effective() {
            1.8
        } else {
            0.25
        };
        let p_only_eu = (cmp.embed_only_eu_share() * era_mult).min(0.6);
        let p_hide_eu = cmp.hide_from_eu_share();
        if u < p_451 {
            GeoBehavior::Block451Eu
        } else if u < p_451 + p_only_eu {
            GeoBehavior::EmbedOnlyEu
        } else if u < p_451 + p_only_eu + p_hide_eu {
            GeoBehavior::HideFromEu
        } else {
            GeoBehavior::EmbedAlways
        }
    };
    let anti_bot_cdn = s.child("antibot").unit_f64() < 0.10;
    let slow_load = s.child("slow").unit_f64() < 0.023;
    let api_only = s.child("api-only").unit_f64() < 0.08;
    let dialog = if api_only {
        DialogStyle::CustomApiOnly
    } else {
        dialog_for(cmp, s.child("dialog"))
    };
    let wording = if s.child("wording").unit_f64() < wording_freeform_share(cmp) {
        AcceptWording::FreeForm
    } else {
        AcceptWording::AgreeVariant
    };
    let second_cmp = if s.child("second").unit_f64() < 0.0001 {
        Some(if cmp == Cmp::OneTrust {
            Cmp::Quantcast
        } else {
            Cmp::OneTrust
        })
    } else {
        None
    };
    let bare_privacy_page = s.child("bare-privacy").unit_f64() < 0.3;
    // 65 % of EU-only embeds get reconfigured for CCPA at some point
    // between December 2019 and July 2020.
    let ccpa_adapted = if geo == GeoBehavior::EmbedOnlyEu && s.child("ccpa-adapt").unit_f64() < 0.65
    {
        let lo = Day::from_ymd(2019, 12, 1);
        let hi = Day::from_ymd(2020, 7, 31);
        let frac = s.child("ccpa-date").unit_f64();
        Some(lo + ((hi - lo) as f64 * frac) as i32)
    } else {
        None
    };
    SiteBehavior {
        geo,
        anti_bot_cdn,
        slow_load,
        dialog,
        wording,
        second_cmp,
        bare_privacy_page,
        ccpa_adapted,
    }
}

/// Per-CMP dialog-style distributions from §4.1.
fn dialog_for(cmp: Cmp, seed: SeedTree) -> DialogStyle {
    let u = seed.unit_f64();
    match cmp {
        Cmp::OneTrust => {
            // 61 % banner, 2.4 % opt-out button (40 % needing confirm),
            // 5.5 % script banner, 7.5 % footer link, rest conventional-ish
            // variants we fold into ConventionalBanner.
            if u < 0.61 {
                DialogStyle::ConventionalBanner
            } else if u < 0.61 + 0.024 {
                DialogStyle::OptOutButtonBanner {
                    needs_confirm: seed.child("confirm").unit_f64() < 0.40,
                }
            } else if u < 0.61 + 0.024 + 0.055 {
                DialogStyle::ScriptBanner
            } else if u < 0.61 + 0.024 + 0.055 + 0.075 {
                DialogStyle::FooterLinkOnly
            } else {
                DialogStyle::ConventionalBanner
            }
        }
        Cmp::Quantcast => {
            // 55 % direct reject, 45 % "More Options".
            if u < 0.55 {
                DialogStyle::DirectReject
            } else {
                DialogStyle::MoreOptions
            }
        }
        Cmp::TrustArc => {
            // 7 % instant opt-out, 12 % multi-partner opt-out, 44 %
            // autonomy-implying button, 31 % no-control link; the small
            // remainder behaves like a conventional banner. (The 4.4 %
            // hidden-from-EU class is modelled as geo behaviour.)
            if u < 0.07 {
                DialogStyle::InstantOptOut
            } else if u < 0.07 + 0.12 {
                DialogStyle::MultiPartnerOptOut
            } else if u < 0.07 + 0.12 + 0.44 {
                DialogStyle::AutonomyButton
            } else if u < 0.07 + 0.12 + 0.44 + 0.31 {
                DialogStyle::NoControlLink
            } else {
                DialogStyle::ConventionalBanner
            }
        }
        Cmp::Cookiebot | Cmp::Crownpeak => {
            if u < 0.7 {
                DialogStyle::ConventionalBanner
            } else if u < 0.85 {
                DialogStyle::DirectReject
            } else {
                DialogStyle::MoreOptions
            }
        }
        Cmp::LiveRamp => {
            if u < 0.5 {
                DialogStyle::DirectReject
            } else {
                DialogStyle::MoreOptions
            }
        }
    }
}

/// Share of sites with free-form accept wording; the paper reports 13 %
/// for Quantcast (whose buttons are openly customizable).
fn wording_freeform_share(cmp: Cmp) -> f64 {
    match cmp {
        Cmp::Quantcast => 0.13,
        Cmp::OneTrust => 0.05,
        Cmp::TrustArc => 0.02, // wording barely customizable (§4.1)
        _ => 0.06,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cmp: Cmp, n: u64) -> Vec<SiteBehavior> {
        // Mixed adoption eras, weighted like the real population
        // (~85 % pre-CCPA adopters by May 2020).
        (0..n)
            .map(|i| {
                let adopted = if i % 20 < 17 {
                    Day::from_ymd(2018, 7, 1)
                } else {
                    Day::from_ymd(2020, 2, 1)
                };
                behavior_for(cmp, adopted, SeedTree::new(77).child_idx(i))
            })
            .collect()
    }

    fn frac(xs: &[SiteBehavior], f: impl Fn(&SiteBehavior) -> bool) -> f64 {
        xs.iter().filter(|b| f(b)).count() as f64 / xs.len() as f64
    }

    #[test]
    fn deterministic() {
        let d = Day::from_ymd(2019, 1, 1);
        let a = behavior_for(Cmp::OneTrust, d, SeedTree::new(1).child_idx(5));
        let b = behavior_for(Cmp::OneTrust, d, SeedTree::new(1).child_idx(5));
        assert_eq!(a, b);
    }

    #[test]
    fn ccpa_era_adopters_rarely_gate_to_eu() {
        let pre: Vec<SiteBehavior> = (0..20_000)
            .map(|i| {
                behavior_for(
                    Cmp::Quantcast,
                    Day::from_ymd(2018, 7, 1),
                    SeedTree::new(5).child_idx(i),
                )
            })
            .collect();
        let post: Vec<SiteBehavior> = (0..20_000)
            .map(|i| {
                behavior_for(
                    Cmp::Quantcast,
                    Day::from_ymd(2020, 2, 1),
                    SeedTree::new(5).child_idx(i),
                )
            })
            .collect();
        let pre_eu = frac(&pre, |b| b.geo == GeoBehavior::EmbedOnlyEu);
        let post_eu = frac(&post, |b| b.geo == GeoBehavior::EmbedOnlyEu);
        assert!(
            pre_eu > 3.0 * post_eu,
            "pre-CCPA {pre_eu} should dwarf post-CCPA {post_eu}"
        );
    }

    #[test]
    fn quantcast_split_55_45() {
        let xs = sample(Cmp::Quantcast, 10_000);
        let direct = frac(&xs, |b| b.dialog == DialogStyle::DirectReject);
        // 8 % API-only eats into both classes proportionally.
        assert!((direct - 0.55 * 0.92).abs() < 0.03, "direct {direct}");
        let more = frac(&xs, |b| b.dialog == DialogStyle::MoreOptions);
        assert!((more - 0.45 * 0.92).abs() < 0.03, "more {more}");
        let freeform = frac(&xs, |b| b.wording == AcceptWording::FreeForm);
        assert!((freeform - 0.13).abs() < 0.02, "freeform {freeform}");
    }

    #[test]
    fn onetrust_customization_shares() {
        let xs = sample(Cmp::OneTrust, 20_000);
        let optout = frac(&xs, |b| {
            matches!(b.dialog, DialogStyle::OptOutButtonBanner { .. })
        });
        assert!((optout - 0.024 * 0.92).abs() < 0.01, "optout {optout}");
        let script = frac(&xs, |b| b.dialog == DialogStyle::ScriptBanner);
        assert!((script - 0.055 * 0.92).abs() < 0.01, "script {script}");
        let footer = frac(&xs, |b| b.dialog == DialogStyle::FooterLinkOnly);
        assert!((footer - 0.075 * 0.92).abs() < 0.01, "footer {footer}");
        // Among opt-out banners, ~40 % need a confirmation click.
        let optouts: Vec<&SiteBehavior> = xs
            .iter()
            .filter(|b| matches!(b.dialog, DialogStyle::OptOutButtonBanner { .. }))
            .collect();
        let confirm = optouts
            .iter()
            .filter(|b| {
                matches!(
                    b.dialog,
                    DialogStyle::OptOutButtonBanner {
                        needs_confirm: true
                    }
                )
            })
            .count() as f64
            / optouts.len().max(1) as f64;
        assert!((confirm - 0.40).abs() < 0.1, "confirm {confirm}");
    }

    #[test]
    fn trustarc_customization_shares() {
        let xs = sample(Cmp::TrustArc, 20_000);
        let instant = frac(&xs, |b| b.dialog == DialogStyle::InstantOptOut);
        assert!((instant - 0.07 * 0.92).abs() < 0.01, "instant {instant}");
        let multi = frac(&xs, |b| b.dialog == DialogStyle::MultiPartnerOptOut);
        assert!((multi - 0.12 * 0.92).abs() < 0.012, "multi {multi}");
        let hide_eu = frac(&xs, |b| b.geo == GeoBehavior::HideFromEu);
        assert!((hide_eu - 0.044).abs() < 0.008, "hide_eu {hide_eu}");
    }

    #[test]
    fn api_only_share_near_eight_percent() {
        for cmp in [Cmp::OneTrust, Cmp::Quantcast, Cmp::TrustArc] {
            let xs = sample(cmp, 10_000);
            let api = frac(&xs, |b| b.dialog == DialogStyle::CustomApiOnly);
            assert!((api - 0.08).abs() < 0.015, "{cmp}: api-only {api}");
        }
    }

    #[test]
    fn measurement_distortion_rates() {
        let xs = sample(Cmp::OneTrust, 20_000);
        let antibot = frac(&xs, |b| b.anti_bot_cdn);
        assert!((antibot - 0.10).abs() < 0.01, "antibot {antibot}");
        let slow = frac(&xs, |b| b.slow_load);
        assert!((slow - 0.023).abs() < 0.006, "slow {slow}");
        let second = frac(&xs, |b| b.second_cmp.is_some());
        assert!(second < 0.001, "second CMP too common: {second}");
        let blocked = frac(&xs, |b| b.geo == GeoBehavior::Block451Eu);
        assert!(blocked < 0.004, "451 too common: {blocked}");
    }

    #[test]
    fn quantcast_embeds_eu_only_more_than_cookiebot() {
        let q = sample(Cmp::Quantcast, 20_000);
        let c = sample(Cmp::Cookiebot, 20_000);
        let q_eu = frac(&q, |b| b.geo == GeoBehavior::EmbedOnlyEu);
        let c_eu = frac(&c, |b| b.geo == GeoBehavior::EmbedOnlyEu);
        assert!(q_eu > c_eu, "quantcast {q_eu} vs cookiebot {c_eu}");
    }
}
