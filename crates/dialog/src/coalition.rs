//! Consent coalitions: global consent shared across a CMP's customers.
//!
//! Figure 2 of the paper shows CMPs "forward consent decisions to ad-tech
//! vendors and also share it globally across websites"; §3.2 probes
//! Quantcast's global-consent cookie (`CookieAccess`), and §5.2/§6 discuss
//! the Woods–Böhme prediction that consent sharing creates
//! winner-takes-all coalition dynamics. This module simulates that
//! mechanism: users browse across sites; within a coalition, the first
//! consent decision travels with them, so larger coalitions show fewer
//! prompts per visit — the "commodification of consent".

use consent_stats::Zipf;
use consent_util::SeedTree;
use consent_webgraph::{Cmp, ALL_CMPS};
use rand::Rng;
use std::collections::{BTreeMap, HashSet};

/// Configuration of the coalition simulation.
#[derive(Clone, Debug)]
pub struct CoalitionConfig {
    /// Simulated users.
    pub users: usize,
    /// Site visits per user.
    pub visits_per_user: usize,
    /// Coalition size (member sites) per CMP. Defaults mirror the
    /// paper's May 2020 market shares (Table 1), scaled ×10 beyond the
    /// toplist sample.
    pub coalition_sizes: BTreeMap<Cmp, u32>,
    /// Probability a user accepts when prompted.
    pub accept_rate: f64,
    /// Whether consent (and rejection) is shared across the coalition
    /// (`true` = global scope, the TCF v1 default the paper studies;
    /// `false` = per-site consent, the service-specific v2 mode).
    pub global_scope: bool,
}

impl Default for CoalitionConfig {
    fn default() -> CoalitionConfig {
        let coalition_sizes = [
            (Cmp::OneTrust, 4_140),
            (Cmp::Quantcast, 2_330),
            (Cmp::TrustArc, 1_560),
            (Cmp::Cookiebot, 990),
            (Cmp::LiveRamp, 140),
            (Cmp::Crownpeak, 90),
        ]
        .into();
        CoalitionConfig {
            users: 2_000,
            visits_per_user: 50,
            coalition_sizes,
            accept_rate: 0.83,
            global_scope: true,
        }
    }
}

/// Per-CMP outcome of the simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoalitionStats {
    /// Visits landing on this coalition's sites.
    pub visits: u64,
    /// Visits where a dialog had to be shown.
    pub prompts: u64,
    /// Visits where a global consent already existed (the paper's
    /// `CookieAccess` probe would return a cookie).
    pub preexisting_consent: u64,
}

impl CoalitionStats {
    /// Prompts per visit — the user-facing nuisance rate.
    pub fn prompt_rate(&self) -> f64 {
        if self.visits == 0 {
            0.0
        } else {
            self.prompts as f64 / self.visits as f64
        }
    }

    /// Share of visits arriving with consent already granted.
    pub fn preexisting_rate(&self) -> f64 {
        if self.visits == 0 {
            0.0
        } else {
            self.preexisting_consent as f64 / self.visits as f64
        }
    }
}

/// Simulation output.
#[derive(Clone, Debug, Default)]
pub struct CoalitionResult {
    /// Per-CMP statistics.
    pub per_cmp: BTreeMap<Cmp, CoalitionStats>,
}

impl CoalitionResult {
    /// Overall prompts per visit across all coalitions.
    pub fn overall_prompt_rate(&self) -> f64 {
        let visits: u64 = self.per_cmp.values().map(|s| s.visits).sum();
        let prompts: u64 = self.per_cmp.values().map(|s| s.prompts).sum();
        if visits == 0 {
            0.0
        } else {
            prompts as f64 / visits as f64
        }
    }
}

/// Run the simulation. Users pick sites Zipf-distributed within the
/// union of all coalitions; a user's decision for a coalition persists
/// across that coalition's sites when `global_scope` is set.
pub fn simulate(config: &CoalitionConfig, seed: SeedTree) -> CoalitionResult {
    // Assign sites to coalitions, then shuffle so coalition membership is
    // independent of a site's popularity rank (otherwise the first
    // coalition in the layout would absorb the whole Zipf head).
    let mut site_cmp: Vec<Cmp> = Vec::new();
    for &cmp in &ALL_CMPS {
        let size = config.coalition_sizes.get(&cmp).copied().unwrap_or(0);
        site_cmp.extend(std::iter::repeat_n(cmp, size as usize));
    }
    assert!(
        !site_cmp.is_empty(),
        "at least one coalition must have members"
    );
    {
        use rand::seq::SliceRandom;
        let mut shuffle_rng = seed.child("layout").rng();
        site_cmp.shuffle(&mut shuffle_rng);
    }
    let total = site_cmp.len() as u32;
    let zipf = Zipf::new(u64::from(total), 1.0);

    let mut result = CoalitionResult::default();
    for user in 0..config.users {
        let mut rng = seed.child("coalition").child_idx(user as u64).rng();
        // Per-coalition decision state (None = never prompted).
        let mut decided: BTreeMap<Cmp, bool> = BTreeMap::new();
        // Per-site memory for service-specific mode.
        let mut decided_sites: HashSet<u32> = HashSet::new();
        for _ in 0..config.visits_per_user {
            let site = zipf.sample(&mut rng) as u32 - 1; // 0-based index
            let cmp = site_cmp[site as usize];
            let stats = result.per_cmp.entry(cmp).or_default();
            stats.visits += 1;
            let already = if config.global_scope {
                decided.get(&cmp).copied()
            } else {
                decided_sites.contains(&site).then_some(true)
            };
            match already {
                Some(consented) => {
                    if consented {
                        stats.preexisting_consent += 1;
                    }
                }
                None => {
                    stats.prompts += 1;
                    let consents = rng.gen::<f64>() < config.accept_rate;
                    if config.global_scope {
                        decided.insert(cmp, consents);
                    } else {
                        decided_sites.insert(site);
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = CoalitionConfig::default();
        let a = simulate(&c, SeedTree::new(1));
        let b = simulate(&c, SeedTree::new(1));
        assert_eq!(a.per_cmp, b.per_cmp);
    }

    #[test]
    fn larger_coalitions_prompt_less() {
        let r = simulate(&CoalitionConfig::default(), SeedTree::new(7));
        let onetrust = r.per_cmp[&Cmp::OneTrust];
        let crownpeak = r.per_cmp[&Cmp::Crownpeak];
        assert!(
            onetrust.prompt_rate() < crownpeak.prompt_rate(),
            "OneTrust {} !< Crownpeak {}",
            onetrust.prompt_rate(),
            crownpeak.prompt_rate()
        );
        // And consent pre-exists more often in the big coalition.
        assert!(onetrust.preexisting_rate() > crownpeak.preexisting_rate());
    }

    #[test]
    fn global_scope_beats_service_specific() {
        // The commodification-of-consent benefit: global sharing cuts the
        // number of prompts users see.
        let global = CoalitionConfig {
            global_scope: true,
            ..CoalitionConfig::default()
        };
        let per_site = CoalitionConfig {
            global_scope: false,
            ..CoalitionConfig::default()
        };
        let g = simulate(&global, SeedTree::new(3));
        let s = simulate(&per_site, SeedTree::new(3));
        assert!(
            g.overall_prompt_rate() < s.overall_prompt_rate() * 0.8,
            "global {} vs per-site {}",
            g.overall_prompt_rate(),
            s.overall_prompt_rate()
        );
    }

    #[test]
    fn prompt_rate_bounded_by_one_per_coalition_per_user() {
        let config = CoalitionConfig {
            users: 500,
            visits_per_user: 100,
            ..CoalitionConfig::default()
        };
        let r = simulate(&config, SeedTree::new(9));
        for (cmp, stats) in &r.per_cmp {
            assert!(
                stats.prompts <= config.users as u64,
                "{cmp}: more prompts ({}) than users",
                stats.prompts
            );
            assert!(stats.prompts <= stats.visits);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_empty_coalitions() {
        let config = CoalitionConfig {
            coalition_sizes: BTreeMap::new(),
            ..CoalitionConfig::default()
        };
        simulate(&config, SeedTree::new(1));
    }
}
