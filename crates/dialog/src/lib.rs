//! # consent-dialog
//!
//! Consent-dialog mechanics and the paper's two timing experiments:
//! the randomized Quantcast field experiment on interaction times and
//! consent rates ([`quantcast`], [`experiment`]; Figure 10), the TrustArc
//! multi-partner opt-out flow with its 7-click / ~34-second cost
//! ([`trustarc`]; Figure 9), and the behavioural visitor model behind
//! them ([`user_model`]) — plus the consent-coalition simulation behind
//! the paper's §5.2 "commodification of consent" discussion
//! ([`coalition`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalition;
pub mod experiment;
pub mod quantcast;
pub mod trustarc;
pub mod user_model;

pub use coalition::{
    simulate as simulate_coalitions, CoalitionConfig, CoalitionResult, CoalitionStats,
};
pub use experiment::{run_experiment, ArmResult, ExperimentConfig, ExperimentResult};
pub use quantcast::{visit, Decision, QuantcastConfig, VisitRecord};
pub use trustarc::{accept, hourly_probes, opt_out, AcceptRun, OptOutRun, Phase, Probe};
pub use user_model::{Intent, UserModel, Visitor};
