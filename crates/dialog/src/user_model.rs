//! Behavioural model of dialog visitors.
//!
//! The paper's Figure 10 experiment ran Quantcast's real dialog on
//! mitmproxy.org for ~2 910 EU visitors. We model a visitor as a
//! preference (accept / want-to-reject / abandon) plus log-normally
//! distributed interaction times — the standard model for human response
//! times, and consistent with the skew the paper handles by reporting
//! medians and using a rank test.

use consent_stats::LogNormal;
use consent_util::SeedTree;
use rand::rngs::StdRng;
use rand::Rng;

/// What the visitor intends to do when a consent dialog appears.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Intent {
    /// Clicks the affirmative button.
    Accept,
    /// Wants to refuse data processing.
    Reject,
    /// Leaves without deciding (excluded after 3 minutes, §4.3).
    Abandon,
}

/// Population parameters for visitor behaviour.
#[derive(Clone, Debug, PartialEq)]
pub struct UserModel {
    /// Probability a visitor wants to reject. The mitmproxy.org audience
    /// is "very technical and privacy-conscious" (§3.4), so this is much
    /// higher than for an average site.
    pub reject_propensity: f64,
    /// Probability a visitor abandons without deciding.
    pub abandon_propensity: f64,
    /// Base time to read the prompt and click the first button (applies
    /// to accepting, and to rejecting when a direct button exists).
    pub first_click: LogNormal,
    /// Extra multiplicative time cost per additional navigation step a
    /// rejecting user must take (scanning the second page, more clicks).
    pub per_extra_step: LogNormal,
    /// Share of would-be rejectors who give up and accept instead when
    /// rejection takes extra steps (the consent rate rises from 83 % to
    /// 90 % in the paper when the direct button is removed).
    pub reject_fatigue: f64,
}

impl Default for UserModel {
    fn default() -> UserModel {
        UserModel {
            reject_propensity: 0.175,
            abandon_propensity: 0.06,
            // Median first decision ≈ 3.2 s (paper's accept median).
            first_click: LogNormal::from_median(3.2, 0.5),
            // Each extra step roughly doubles the median reject time
            // (3.6 s direct → 6.7 s via "More Options").
            per_extra_step: LogNormal::from_median(2.1, 0.55),
            reject_fatigue: 0.40,
        }
    }
}

/// One sampled visitor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Visitor {
    /// The visitor's intent on arrival.
    pub intent: Intent,
    /// Time to the first button press, seconds.
    pub first_click_s: f64,
    /// Time for each additional required step, seconds.
    pub extra_step_s: f64,
    /// Whether this visitor converts to accepting under friction.
    pub fatigues: bool,
}

impl UserModel {
    /// Draw one visitor.
    pub fn sample(&self, rng: &mut StdRng) -> Visitor {
        let u: f64 = rng.gen();
        let intent = if u < self.abandon_propensity {
            Intent::Abandon
        } else if u < self.abandon_propensity + self.reject_propensity {
            Intent::Reject
        } else {
            Intent::Accept
        };
        Visitor {
            intent,
            first_click_s: self.first_click.sample(rng),
            extra_step_s: self.per_extra_step.sample(rng),
            fatigues: rng.gen::<f64>() < self.reject_fatigue,
        }
    }

    /// Draw `n` visitors deterministically from a seed.
    pub fn population(&self, n: usize, seed: SeedTree) -> Vec<Visitor> {
        let mut rng = seed.child("visitors").rng();
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_deterministic() {
        let m = UserModel::default();
        let a = m.population(50, SeedTree::new(1));
        let b = m.population(50, SeedTree::new(1));
        assert_eq!(a, b);
        let c = m.population(50, SeedTree::new(2));
        assert_ne!(a, c);
    }

    #[test]
    fn intent_mix_matches_parameters() {
        let m = UserModel::default();
        let pop = m.population(20_000, SeedTree::new(3));
        let reject = pop.iter().filter(|v| v.intent == Intent::Reject).count() as f64;
        let abandon = pop.iter().filter(|v| v.intent == Intent::Abandon).count() as f64;
        let n = pop.len() as f64;
        assert!((reject / n - m.reject_propensity).abs() < 0.01);
        assert!((abandon / n - m.abandon_propensity).abs() < 0.006);
    }

    #[test]
    fn click_times_positive_and_skewed() {
        let m = UserModel::default();
        let pop = m.population(20_000, SeedTree::new(4));
        let mut times: Vec<f64> = pop.iter().map(|v| v.first_click_s).collect();
        assert!(times.iter().all(|&t| t > 0.0));
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        assert!((median - 3.2).abs() < 0.15, "median {median}");
        assert!(mean > median, "log-normal is right-skewed");
    }

    #[test]
    fn fatigue_rate() {
        let m = UserModel::default();
        let pop = m.population(20_000, SeedTree::new(5));
        let fat = pop.iter().filter(|v| v.fatigues).count() as f64 / pop.len() as f64;
        assert!((fat - m.reject_fatigue).abs() < 0.012, "fatigue {fat}");
    }
}
