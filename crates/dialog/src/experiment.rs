//! The mitmproxy.org field experiment (Figure 10).
//!
//! Visitors from the EU are randomized between the two Quantcast dialog
//! configurations; per visit we log the timing markers of §3.2 and the
//! decision, exclude visitors with no decision within three minutes, and
//! compare accept-vs-reject interaction times with the Mann–Whitney U
//! test — exactly the paper's analysis.

use crate::quantcast::{visit, Decision, QuantcastConfig, VisitRecord};
use crate::user_model::UserModel;
use consent_stats::mann_whitney::{mann_whitney_u, MannWhitney};
use consent_stats::Summary;
use consent_util::SeedTree;

/// Results for one dialog configuration.
#[derive(Clone, Debug)]
pub struct ArmResult {
    /// The configuration.
    pub config: QuantcastConfig,
    /// All visit records (including excluded ones).
    pub visits: Vec<VisitRecord>,
    /// Interaction times of accepting visitors, seconds.
    pub accept_times: Vec<f64>,
    /// Interaction times of rejecting visitors, seconds.
    pub reject_times: Vec<f64>,
    /// Mann–Whitney comparison of the two time samples.
    pub test: Option<MannWhitney>,
}

impl ArmResult {
    /// Consent rate among deciding visitors.
    pub fn consent_rate(&self) -> f64 {
        let decided = self.accept_times.len() + self.reject_times.len();
        if decided == 0 {
            0.0
        } else {
            self.accept_times.len() as f64 / decided as f64
        }
    }

    /// Median accept time, seconds.
    pub fn median_accept(&self) -> Option<f64> {
        consent_stats::median(&self.accept_times)
    }

    /// Median reject time, seconds.
    pub fn median_reject(&self) -> Option<f64> {
        consent_stats::median(&self.reject_times)
    }

    /// Distribution summary of reject times.
    pub fn reject_summary(&self) -> Option<Summary> {
        Summary::of(&self.reject_times)
    }
}

/// Full experiment output.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// The direct-reject arm.
    pub direct: ArmResult,
    /// The "More Options" arm.
    pub more_options: ArmResult,
    /// Total visitors shown a dialog (paper: 2 910).
    pub visitors: usize,
}

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// EU visitors shown a dialog across both arms.
    pub visitors: usize,
    /// Visitor behaviour model.
    pub user_model: UserModel,
}

impl Default for ExperimentConfig {
    fn default() -> ExperimentConfig {
        ExperimentConfig {
            visitors: 2_910,
            user_model: UserModel::default(),
        }
    }
}

/// Run the randomized experiment.
pub fn run_experiment(config: &ExperimentConfig, seed: SeedTree) -> ExperimentResult {
    let population = config
        .user_model
        .population(config.visitors, seed.child("population"));
    let mut rng = seed.child("assignment").rng();
    let mut direct_visits = Vec::new();
    let mut more_visits = Vec::new();
    for (i, visitor) in population.iter().enumerate() {
        // Alternating assignment with a random phase — balanced arms,
        // like the paper's roughly even split.
        let arm_direct = (i + usize::from(seed.child("phase").unit_f64() < 0.5)) % 2 == 0;
        let record = if arm_direct {
            visit(QuantcastConfig::DirectReject, visitor, &mut rng)
        } else {
            visit(QuantcastConfig::MoreOptions, visitor, &mut rng)
        };
        if arm_direct {
            direct_visits.push(record);
        } else {
            more_visits.push(record);
        }
    }
    ExperimentResult {
        visitors: config.visitors,
        direct: summarize(QuantcastConfig::DirectReject, direct_visits),
        more_options: summarize(QuantcastConfig::MoreOptions, more_visits),
    }
}

fn summarize(config: QuantcastConfig, visits: Vec<VisitRecord>) -> ArmResult {
    let mut accept_times = Vec::new();
    let mut reject_times = Vec::new();
    for v in &visits {
        match (v.decision, v.interaction_secs()) {
            (Decision::Accepted, Some(t)) => accept_times.push(t),
            (Decision::Rejected, Some(t)) => reject_times.push(t),
            _ => {}
        }
    }
    let test = mann_whitney_u(&accept_times, &reject_times).ok();
    ArmResult {
        config,
        visits,
        accept_times,
        reject_times,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> ExperimentResult {
        run_experiment(&ExperimentConfig::default(), SeedTree::new(2020))
    }

    #[test]
    fn arms_are_balanced() {
        let r = result();
        let a = r.direct.visits.len();
        let b = r.more_options.visits.len();
        assert_eq!(a + b, 2_910);
        assert!((a as i64 - b as i64).abs() <= 1);
    }

    #[test]
    fn medians_match_paper_shape() {
        let r = result();
        let acc = r.direct.median_accept().unwrap();
        let rej_direct = r.direct.median_reject().unwrap();
        let rej_more = r.more_options.median_reject().unwrap();
        // Paper: 3.2 s accept, 3.6 s direct reject, 6.7 s without a
        // direct button.
        assert!((acc - 3.2).abs() < 0.4, "accept median {acc}");
        assert!(rej_direct > acc, "reject should be slower than accept");
        assert!(
            (rej_direct - 3.6).abs() < 0.5,
            "direct reject median {rej_direct}"
        );
        assert!(
            rej_more > rej_direct * 1.5,
            "reject without direct button should roughly double: {rej_more} vs {rej_direct}"
        );
        assert!(
            (rej_more - 6.7).abs() < 1.5,
            "more-options reject median {rej_more}"
        );
    }

    #[test]
    fn consent_rate_rises_without_direct_reject() {
        let r = result();
        let direct = r.direct.consent_rate();
        let more = r.more_options.consent_rate();
        // Paper: 83 % → 90 %.
        assert!((direct - 0.83).abs() < 0.04, "direct arm rate {direct}");
        assert!((more - 0.90).abs() < 0.04, "more-options arm rate {more}");
        assert!(more > direct);
    }

    #[test]
    fn tests_are_significant_like_the_paper() {
        let r = result();
        let t1 = r.direct.test.expect("enough data");
        let t2 = r.more_options.test.expect("enough data");
        // Paper: p < 0.01 for the direct arm, p < 0.001 for the other.
        assert!(t1.p_two_sided < 0.05, "direct arm p {}", t1.p_two_sided);
        assert!(
            t2.p_two_sided < 0.001,
            "more-options arm p {}",
            t2.p_two_sided
        );
        assert!(
            t1.z < 0.0 && t2.z < 0.0,
            "accept times stochastically smaller"
        );
        assert!(t2.z.abs() > t1.z.abs());
    }

    #[test]
    fn deterministic() {
        let a = run_experiment(&ExperimentConfig::default(), SeedTree::new(1));
        let b = run_experiment(&ExperimentConfig::default(), SeedTree::new(1));
        assert_eq!(a.direct.accept_times, b.direct.accept_times);
        assert_eq!(a.more_options.reject_times, b.more_options.reject_times);
    }

    #[test]
    fn some_visitors_excluded() {
        let r = result();
        let decided = r.direct.accept_times.len()
            + r.direct.reject_times.len()
            + r.more_options.accept_times.len()
            + r.more_options.reject_times.len();
        assert!(decided < r.visitors, "nobody was excluded");
        // But the overwhelming majority decide.
        assert!(decided as f64 / r.visitors as f64 > 0.85);
        assert!(r.direct.reject_summary().is_some());
    }
}
