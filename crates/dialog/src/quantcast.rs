//! Quantcast consent-dialog state machine (the Figure 10 experiment).
//!
//! §3.2: the dialog was embedded in two configurations — one with an
//! explicit "Reject" button (Figure A.1) and one with "More Options" at
//! the same position leading to a second page with a reject control
//! (Figures A.2/A.3). The instrumentation logged page load
//! (`DOMContentLoaded`), dialog appearance (`__cmp('ping')`), closure
//! time, and the decision (`__cmp('getConsentData')`).

use crate::user_model::{Intent, Visitor};
use consent_tcf::cmp_api::CmpApi;
use consent_tcf::consent_string::ConsentString;
use consent_tcf::purposes::all_purpose_ids;
use consent_util::SimInstant;
use consent_webgraph::Cmp;
use rand::rngs::StdRng;
use rand::Rng;

/// The two experimental dialog configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantcastConfig {
    /// First button accepts, second button rejects directly (Fig A.1).
    DirectReject,
    /// Second button opens "More Options"; rejecting requires navigating
    /// the purposes page and clicking "Save & Exit" (Figs A.2/A.3).
    MoreOptions,
}

/// The outcome of one visit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Consent granted (possibly out of fatigue).
    Accepted,
    /// Consent denied.
    Rejected,
    /// No decision within the 3-minute cutoff (§4.3 exclusion).
    None,
}

/// Timeline of one instrumented visit.
#[derive(Clone, Debug, PartialEq)]
pub struct VisitRecord {
    /// `DOMContentLoaded`.
    pub page_loaded: SimInstant,
    /// Dialog became visible (`__cmp('ping')` turns true).
    pub dialog_shown: SimInstant,
    /// Dialog closed, if a decision was made.
    pub dialog_closed: Option<SimInstant>,
    /// The decision.
    pub decision: Decision,
    /// Number of clicks the visitor performed.
    pub clicks: u8,
    /// The consent string stored by the CMP, if any.
    pub consent_string: Option<String>,
}

impl VisitRecord {
    /// Interaction time (dialog shown → closed), seconds.
    pub fn interaction_secs(&self) -> Option<f64> {
        self.dialog_closed
            .map(|c| c.since(self.dialog_shown) as f64 / 1000.0)
    }
}

/// Cutoff after which undecided visitors are excluded (§4.3).
pub const DECISION_CUTOFF_MS: u64 = 180_000;

/// Number of vendors on the GVL version used in the experiment (May
/// 2020-era list; consent is requested for all of them, §3.2).
pub const GVL_VENDOR_COUNT: u16 = 600;

/// Simulate one visit to a page embedding the Quantcast dialog.
pub fn visit(config: QuantcastConfig, visitor: &Visitor, rng: &mut StdRng) -> VisitRecord {
    // Page and CMP script load.
    let page_loaded = SimInstant::from_millis(rng.gen_range(350..1_400));
    let script_loaded = page_loaded + rng.gen_range(150..600);
    let mut cmp = CmpApi::new(true);
    cmp.script_loaded(script_loaded);
    let dialog_shown = script_loaded + rng.gen_range(50..250);
    assert!(cmp.show_dialog(dialog_shown));

    let to_ms = |s: f64| (s * 1000.0) as u64;
    let (decision, closed, clicks) = match (visitor.intent, config) {
        (Intent::Abandon, _) => (Decision::None, None, 0),
        (Intent::Accept, _) => {
            // One click on the prominent accept button.
            let t = dialog_shown + to_ms(visitor.first_click_s);
            (Decision::Accepted, Some(t), 1)
        }
        (Intent::Reject, QuantcastConfig::DirectReject) => {
            // The reject button is less prominent ("I DO NOT ACCEPT" is
            // not colored, Fig A.1): scanning both buttons costs a beat
            // more than accepting — the paper measures 3.6 s vs 3.2 s.
            let t = dialog_shown + to_ms(visitor.first_click_s * 1.15);
            (Decision::Rejected, Some(t), 1)
        }
        (Intent::Reject, QuantcastConfig::MoreOptions) => {
            if visitor.fatigues {
                // Gives up and accepts: slightly slower than a genuine
                // accepter (they hesitated first).
                let t = dialog_shown + to_ms(visitor.first_click_s * 1.25);
                (Decision::Accepted, Some(t), 1)
            } else {
                // Click "More Options", wait for the purposes page,
                // click "Reject all" / toggle, then "Save & Exit".
                let t = dialog_shown
                    + to_ms(visitor.first_click_s)
                    + rng.gen_range(300..900) // purposes page render
                    + to_ms(visitor.extra_step_s);
                (Decision::Rejected, Some(t), 3)
            }
        }
    };

    // Enforce the experiment's 3-minute exclusion window.
    let (decision, closed) = match closed {
        Some(t) if t.since(dialog_shown) > DECISION_CUTOFF_MS => (Decision::None, None),
        other => (decision, other),
    };

    let consent_string = closed.map(|t| {
        let base = ConsentString::new(Cmp::Quantcast.iab_cmp_id(), 215, GVL_VENDOR_COUNT);
        let consent = match decision {
            Decision::Accepted => base.accept_all(all_purpose_ids()),
            _ => base.reject_all(),
        };
        cmp.store_decision(consent, t);
        cmp.get_consent_data()
            .consent_data
            .expect("stored decision")
    });

    VisitRecord {
        page_loaded,
        dialog_shown,
        dialog_closed: closed,
        decision,
        clicks,
        consent_string,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user_model::UserModel;
    use consent_util::SeedTree;

    fn rng() -> StdRng {
        use rand::SeedableRng;
        StdRng::seed_from_u64(99)
    }

    fn visitor(intent: Intent) -> Visitor {
        Visitor {
            intent,
            first_click_s: 3.0,
            extra_step_s: 3.5,
            fatigues: false,
        }
    }

    #[test]
    fn accepting_is_one_click() {
        let mut r = rng();
        let rec = visit(
            QuantcastConfig::DirectReject,
            &visitor(Intent::Accept),
            &mut r,
        );
        assert_eq!(rec.decision, Decision::Accepted);
        assert_eq!(rec.clicks, 1);
        let t = rec.interaction_secs().unwrap();
        assert!((2.5..4.0).contains(&t), "interaction {t}");
        // The stored consent string grants everything.
        let s = rec.consent_string.unwrap();
        let decoded = ConsentString::decode(&s).unwrap();
        assert_eq!(decoded.consent_count(), usize::from(GVL_VENDOR_COUNT));
        assert!(decoded.purpose_allowed(consent_tcf::PurposeId(1)));
    }

    #[test]
    fn direct_reject_is_one_click_and_slightly_slower() {
        let mut r = rng();
        let acc = visit(
            QuantcastConfig::DirectReject,
            &visitor(Intent::Accept),
            &mut r,
        );
        let rej = visit(
            QuantcastConfig::DirectReject,
            &visitor(Intent::Reject),
            &mut r,
        );
        assert_eq!(rej.decision, Decision::Rejected);
        assert_eq!(rej.clicks, 1);
        assert!(rej.interaction_secs().unwrap() > acc.interaction_secs().unwrap() * 0.95);
        let decoded = ConsentString::decode(&rej.consent_string.unwrap()).unwrap();
        assert_eq!(decoded.consent_count(), 0);
    }

    #[test]
    fn more_options_reject_needs_three_clicks_and_doubles_time() {
        let mut r = rng();
        let rec = visit(
            QuantcastConfig::MoreOptions,
            &visitor(Intent::Reject),
            &mut r,
        );
        assert_eq!(rec.decision, Decision::Rejected);
        assert_eq!(rec.clicks, 3);
        let t = rec.interaction_secs().unwrap();
        assert!(t > 6.0, "reject via More Options took only {t}");
    }

    #[test]
    fn fatigued_rejector_accepts() {
        let mut r = rng();
        let mut v = visitor(Intent::Reject);
        v.fatigues = true;
        let rec = visit(QuantcastConfig::MoreOptions, &v, &mut r);
        assert_eq!(rec.decision, Decision::Accepted);
        assert_eq!(rec.clicks, 1);
        // Under the direct-reject config the same visitor rejects.
        let rec2 = visit(QuantcastConfig::DirectReject, &v, &mut r);
        assert_eq!(rec2.decision, Decision::Rejected);
    }

    #[test]
    fn abandoner_excluded() {
        let mut r = rng();
        let rec = visit(
            QuantcastConfig::DirectReject,
            &visitor(Intent::Abandon),
            &mut r,
        );
        assert_eq!(rec.decision, Decision::None);
        assert_eq!(rec.dialog_closed, None);
        assert_eq!(rec.interaction_secs(), None);
        assert!(rec.consent_string.is_none());
    }

    #[test]
    fn cutoff_excludes_very_slow_users() {
        let mut r = rng();
        let v = Visitor {
            intent: Intent::Reject,
            first_click_s: 200.0, // beyond the 3-minute window
            extra_step_s: 3.0,
            fatigues: false,
        };
        let rec = visit(QuantcastConfig::DirectReject, &v, &mut r);
        assert_eq!(rec.decision, Decision::None);
    }

    #[test]
    fn timeline_is_ordered() {
        let m = UserModel::default();
        let pop = m.population(200, SeedTree::new(8));
        let mut r = rng();
        for v in &pop {
            let rec = visit(QuantcastConfig::MoreOptions, v, &mut r);
            assert!(rec.page_loaded <= rec.dialog_shown);
            if let Some(c) = rec.dialog_closed {
                assert!(rec.dialog_shown <= c);
            }
        }
    }
}
