//! TrustArc opt-out state machine (the Figure 9 measurement).
//!
//! §3.2/§4.3: on forbes.com's TrustArc dialog, accepting closes the
//! prompt immediately, but opting out takes *at least 7 clicks and 34
//! seconds* (excluding user thinking time): the preference center loads
//! in an iframe, per-category toggles must be flipped, and submitting
//! triggers opt-out requests to a "hodgepodge" of third parties — an
//! additional 279 HTTP(S) requests to 25 domains and 1.2 MB / 5.8 MB of
//! compressed/uncompressed transfer, padded by JavaScript timeouts. The
//! paper probed this hourly for two weeks from an EU university.

use consent_util::{SeedTree, SimInstant};
use rand::rngs::StdRng;
use rand::Rng;

/// One phase of the opt-out flow with its (machine) duration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Human-readable phase name.
    pub name: &'static str,
    /// Clicks the user must perform in this phase.
    pub clicks: u8,
    /// Wall-clock duration attributable to the machine (network + JS),
    /// not to user thinking time.
    pub wait_ms: u64,
}

/// Result of one full opt-out run.
#[derive(Clone, Debug, PartialEq)]
pub struct OptOutRun {
    /// Ordered phases.
    pub phases: Vec<Phase>,
    /// Opt-out requests sent to third parties.
    pub extra_requests: u32,
    /// Distinct third-party domains contacted.
    pub extra_domains: u32,
    /// Extra compressed bytes transferred.
    pub extra_bytes_compressed: u64,
    /// Extra uncompressed bytes.
    pub extra_bytes_uncompressed: u64,
}

impl OptOutRun {
    /// Total clicks across all phases.
    pub fn total_clicks(&self) -> u8 {
        self.phases.iter().map(|p| p.clicks).sum()
    }

    /// Total machine waiting time.
    pub fn total_wait(&self) -> SimInstant {
        SimInstant::from_millis(self.phases.iter().map(|p| p.wait_ms).sum())
    }
}

/// Result of accepting instead: the dialog just closes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AcceptRun {
    /// Clicks (always 1).
    pub clicks: u8,
    /// Time until the dialog is gone.
    pub wait_ms: u64,
}

/// Simulate accepting cookies on the TrustArc dialog.
pub fn accept(rng: &mut StdRng) -> AcceptRun {
    AcceptRun {
        clicks: 1,
        wait_ms: rng.gen_range(120..400),
    }
}

/// Simulate one complete opt-out, as the paper's Chrome extension
/// automated it. Deterministic given the RNG state.
pub fn opt_out(rng: &mut StdRng) -> OptOutRun {
    // Third-party opt-out fan-out: ~25 domains, ~279 requests. Each
    // domain gets a burst of requests; stragglers and fixed JS timeouts
    // dominate the wall clock.
    let extra_domains = rng.gen_range(23..=27);
    let extra_requests: u32 = (0..extra_domains)
        .map(|_| rng.gen_range(8..=14))
        .sum::<u32>();
    let per_request_bytes = 4_300u64; // ≈1.2 MB over ~279 requests
    let extra_bytes_compressed = u64::from(extra_requests) * per_request_bytes;
    let extra_bytes_uncompressed = extra_bytes_compressed * 48 / 10; // 5.8/1.2

    // The partner fan-out runs in batches with fixed JS timeouts between
    // them; ~20 s of the 34 s total.
    let fanout_ms =
        14_000 + u64::from(extra_requests) * rng.gen_range(18u64..26) + rng.gen_range(0..1_500);

    let phases = vec![
        Phase {
            name: "open preference center",
            clicks: 1,
            wait_ms: rng.gen_range(2_500..4_000), // iframe + config load
        },
        Phase {
            name: "switch to required-only / per-category toggles",
            clicks: 4,
            wait_ms: rng.gen_range(2_000..3_500), // per-toggle re-renders
        },
        Phase {
            name: "submit preferences",
            clicks: 1,
            wait_ms: rng.gen_range(1_200..2_200),
        },
        Phase {
            name: "partner opt-out fan-out",
            clicks: 0,
            wait_ms: fanout_ms,
        },
        Phase {
            name: "confirm and close",
            clicks: 1,
            wait_ms: rng.gen_range(7_500..9_500), // final JS timeout + banner
        },
    ];
    OptOutRun {
        phases,
        extra_requests,
        extra_domains,
        extra_bytes_compressed,
        extra_bytes_uncompressed,
    }
}

/// One probe of the Figure 9 experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct Probe {
    /// Hour index since the start of the measurement window.
    pub hour: u32,
    /// The opt-out run.
    pub run: OptOutRun,
}

/// The paper's harness: hourly probes for two weeks (336 runs).
pub fn hourly_probes(hours: u32, seed: SeedTree) -> Vec<Probe> {
    let mut rng = seed.child("trustarc-probes").rng();
    (0..hours)
        .map(|hour| Probe {
            hour,
            run: opt_out(&mut rng),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn accepting_is_instant() {
        let a = accept(&mut rng());
        assert_eq!(a.clicks, 1);
        assert!(a.wait_ms < 500);
    }

    #[test]
    fn opt_out_takes_at_least_seven_clicks_and_34s() {
        let mut r = rng();
        for _ in 0..50 {
            let run = opt_out(&mut r);
            assert!(run.total_clicks() >= 7, "clicks {}", run.total_clicks());
            assert!(
                run.total_wait().as_millis() >= 30_000,
                "wait {}",
                run.total_wait()
            );
            assert!(run.total_wait().as_millis() < 60_000);
        }
    }

    #[test]
    fn network_cost_matches_paper_magnitudes() {
        let probes = hourly_probes(336, SeedTree::new(1));
        assert_eq!(probes.len(), 336);
        let mut reqs: Vec<f64> = probes
            .iter()
            .map(|p| f64::from(p.run.extra_requests))
            .collect();
        reqs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_reqs = reqs[reqs.len() / 2];
        assert!(
            (230.0..330.0).contains(&median_reqs),
            "median requests {median_reqs} (paper: 279)"
        );
        let p0 = &probes[0].run;
        assert!(
            (20..=30).contains(&p0.extra_domains),
            "{}",
            p0.extra_domains
        );
        let mb = p0.extra_bytes_compressed as f64 / 1e6;
        assert!((0.8..1.6).contains(&mb), "compressed {mb} MB (paper: 1.2)");
        let ratio = p0.extra_bytes_uncompressed as f64 / p0.extra_bytes_compressed as f64;
        assert!((4.5..5.1).contains(&ratio), "ratio {ratio} (paper: ~4.8)");
    }

    #[test]
    fn probes_deterministic() {
        assert_eq!(
            hourly_probes(24, SeedTree::new(5)),
            hourly_probes(24, SeedTree::new(5))
        );
        assert_ne!(
            hourly_probes(24, SeedTree::new(5)),
            hourly_probes(24, SeedTree::new(6))
        );
    }

    #[test]
    fn phases_are_ordered_and_named() {
        let run = opt_out(&mut rng());
        assert_eq!(run.phases.len(), 5);
        assert_eq!(run.phases[0].name, "open preference center");
        assert!(
            run.phases[3].wait_ms > run.phases[0].wait_ms,
            "fan-out dominates"
        );
        // The fan-out phase needs no user clicks.
        assert_eq!(run.phases[3].clicks, 0);
    }
}
