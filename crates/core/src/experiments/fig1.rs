//! Figure 1 — how this study's window and sample compare to prior work.
//!
//! The paper's Figure 1 contrasts point-in-time snapshots of small
//! samples in related work against its own 2.5-year, 4.2M-domain window.
//! The underlying data is a small static table; we reproduce it as one.

use consent_util::table::{thousands, Table};
use consent_util::Day;

/// One related-work entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelatedStudy {
    /// Citation label.
    pub label: &'static str,
    /// Venue and year.
    pub venue: &'static str,
    /// Number of domains sampled.
    pub domains: u64,
    /// Measurement window start.
    pub start: Day,
    /// Measurement window end (same as start for snapshots).
    pub end: Day,
}

impl RelatedStudy {
    /// Window length in days (0 = snapshot).
    pub fn window_days(&self) -> i32 {
        self.end - self.start
    }
}

/// The comparison dataset underlying Figure 1.
pub fn related_work() -> Vec<RelatedStudy> {
    vec![
        RelatedStudy {
            label: "Degeling et al.",
            venue: "NDSS '19",
            domains: 6_357,
            start: Day::from_ymd(2018, 1, 1),
            end: Day::from_ymd(2018, 5, 31),
        },
        RelatedStudy {
            label: "Sanchez-Rola et al.",
            venue: "AsiaCCS '19",
            domains: 2_000,
            start: Day::from_ymd(2018, 9, 1),
            end: Day::from_ymd(2018, 9, 30),
        },
        RelatedStudy {
            label: "Utz et al.",
            venue: "CCS '19",
            domains: 1_000,
            start: Day::from_ymd(2018, 6, 1),
            end: Day::from_ymd(2018, 6, 30),
        },
        RelatedStudy {
            label: "van Eijk et al.",
            venue: "ConPro '19",
            domains: 1_500,
            start: Day::from_ymd(2018, 12, 1),
            end: Day::from_ymd(2018, 12, 31),
        },
        RelatedStudy {
            label: "Nouwens et al.",
            venue: "CHI '20",
            domains: 10_000,
            start: Day::from_ymd(2020, 1, 1),
            end: Day::from_ymd(2020, 1, 31),
        },
        RelatedStudy {
            label: "Matte et al.",
            venue: "S&P '20",
            domains: 28_257,
            start: Day::from_ymd(2019, 9, 1),
            end: Day::from_ymd(2020, 1, 31),
        },
        RelatedStudy {
            label: "This study (social feed)",
            venue: "IMC '20",
            domains: 4_200_000,
            start: Day::from_ymd(2018, 3, 1),
            end: Day::from_ymd(2020, 9, 30),
        },
        RelatedStudy {
            label: "This study (toplist)",
            venue: "IMC '20",
            domains: 10_000,
            start: Day::from_ymd(2020, 1, 15),
            end: Day::from_ymd(2020, 5, 15),
        },
    ]
}

/// Render Figure 1 as a table.
pub fn render() -> String {
    let mut t = Table::with_columns(&["Study", "Venue", "Domains", "Window", "Days"]);
    t.numeric()
        .title("Figure 1: Sample sizes and windows of consent measurements");
    for s in related_work() {
        t.row(vec![
            s.label.into(),
            s.venue.into(),
            thousands(s.domains),
            format!("{} – {}", s.start, s.end),
            s.window_days().to_string(),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_study_dominates_in_both_axes() {
        let studies = related_work();
        let ours = studies
            .iter()
            .find(|s| s.label.contains("social feed"))
            .unwrap();
        for other in studies.iter().filter(|s| !s.label.contains("This study")) {
            assert!(ours.domains > other.domains);
            assert!(ours.window_days() > other.window_days());
        }
    }

    #[test]
    fn windows_are_well_formed() {
        for s in related_work() {
            assert!(s.end >= s.start, "{}", s.label);
            assert!(s.domains > 0);
        }
    }

    #[test]
    fn renders() {
        let s = render();
        assert!(s.contains("Nouwens"));
        assert!(s.contains("4,200,000"));
        // title + header + separator + 8 data rows
        assert_eq!(s.lines().count(), 3 + 8);
    }
}

/// [`related_work`] with telemetry: records a run report named `fig1`.
pub fn related_work_reported(study: &crate::Study) -> Vec<RelatedStudy> {
    super::run_reported(study, "fig1", related_work)
}
