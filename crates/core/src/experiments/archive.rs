//! Archival round-trip — pack a campaign into a content-addressed
//! bundle, fsck it, and replay the analyses from the archive alone.
//!
//! This is the reproducibility experiment behind the paper's
//! "measurements must be auditable later" posture (and the Web
//! Execution Bundle idea from related work): a completed Table-1-style
//! campaign is packed by the durable driver into a `consent-bundle`
//! archive together with its [`standard_exports`] analysis documents,
//! then [`replay_campaign_bundle`] re-imports the state *from the
//! bundle* and recomputes every export, byte-comparing against the
//! archived copies. The result names the dedup ratio the
//! content-addressed store achieved and whether replay reproduced the
//! analyses exactly.

use std::io;
use std::path::Path;
use std::sync::Arc;

use crate::Study;
use consent_analysis::standard_exports;
use consent_crawler::archive::{replay_campaign_bundle, ExportFn, ReplayReport};
use consent_crawler::{
    build_toplist, open_chaos_store, run_durable_campaign, BundleSpec, DurableOpts, DurableOutcome,
};
use consent_httpsim::Vantage;
use consent_util::table::Table;
use consent_util::Day;

/// Output of the archival round-trip experiment.
pub struct ArchiveResult {
    /// How the durable campaign ended.
    pub outcome: DurableOutcome,
    /// One-line pack summary (blob counts, dedup ratio).
    pub pack_summary: String,
    /// Blob-level dedup ratio achieved by the content-addressed store.
    pub dedup_ratio: f64,
    /// The replay verdict: pairs, documents compared, first divergence.
    pub replay: ReplayReport,
}

impl ArchiveResult {
    /// True when the campaign finished, the pack verified clean, and
    /// replay reproduced every analysis document byte-for-byte.
    pub fn reproducible(&self) -> bool {
        self.outcome.finished() && self.replay.ok()
    }

    /// Render as a small report table.
    pub fn render(&self) -> String {
        let mut t = Table::with_columns(&["Check", "Result"]);
        t.title("Archive: content-addressed bundle round-trip");
        t.row(vec!["campaign".into(), format!("{:?}", self.outcome)]);
        t.row(vec!["pack".into(), self.pack_summary.clone()]);
        t.row(vec![
            "dedup ratio".into(),
            format!("{:.3}", self.dedup_ratio),
        ]);
        t.row(vec!["replay".into(), self.replay.summary()]);
        t.to_string()
    }
}

/// Run a reduced campaign, pack it into `bundle_dir` (checkpointing
/// into `store_dir`), and replay the analyses from the bundle.
///
/// Scale is bounded independently of the study's toplist size: the
/// point is the round-trip property, not campaign throughput.
pub fn archive_roundtrip(
    study: &Study,
    store_dir: &Path,
    bundle_dir: &Path,
) -> io::Result<ArchiveResult> {
    let domains = study.config().toplist_size.min(40);
    let list = build_toplist(
        study.world(),
        domains,
        study.seed().child("archive-toplist"),
    );
    let day = Day::from_ymd(2020, 5, 15);
    let vantages = [Vantage::us_cloud(), Vantage::eu_cloud()];
    let provider: Arc<ExportFn> = Arc::new(standard_exports);
    let store = open_chaos_store(store_dir)?;
    let run = run_durable_campaign(
        study.world(),
        &list,
        day,
        &vantages,
        study.seed().child("archive-campaign"),
        &store,
        &DurableOpts {
            bundle: Some(BundleSpec {
                dir: bundle_dir.to_path_buf(),
                provider: Some(Arc::clone(&provider)),
                gvl_json: None,
            }),
            ..DurableOpts::default()
        },
    )?;
    let (pack_summary, dedup_ratio) = match &run.bundle {
        Some(report) => (report.summary(), report.dedup_ratio()),
        None => ("no bundle packed".to_string(), 0.0),
    };
    let replay = replay_campaign_bundle(bundle_dir, Some(&*provider))?;
    Ok(ArchiveResult {
        outcome: run.outcome,
        pack_summary,
        dedup_ratio,
        replay,
    })
}

/// [`archive_roundtrip`] wrapped in [`run_reported`](super::run_reported).
pub fn archive_roundtrip_reported(
    study: &Study,
    store_dir: &Path,
    bundle_dir: &Path,
) -> io::Result<ArchiveResult> {
    super::run_reported(study, "archive", || {
        archive_roundtrip(study, store_dir, bundle_dir)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "consent-core-archive-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn quick_study_round_trips_through_the_archive() {
        let study = Study::quick();
        let store_dir = tmp_dir();
        let bundle_dir = tmp_dir();
        let result = archive_roundtrip(&study, &store_dir, &bundle_dir).unwrap();
        assert!(result.reproducible(), "{}", result.render());
        assert!(result.dedup_ratio >= 1.0, "{}", result.render());
        assert!(result.render().contains("replay ok"));
        std::fs::remove_dir_all(store_dir).unwrap();
        std::fs::remove_dir_all(bundle_dir).unwrap();
    }
}
