//! §3.4–§3.5 methodology statistics: feed composition, dedup rate,
//! redirect rate, multi-CMP rate, daily-share bimodality, and the
//! missing-data breakdown over the toplist.

use crate::experiments::fig6::Fig6Result;
use crate::study::Study;
use consent_analysis::{bimodal_share, build_timelines, missing_data_report, MissingDataReport};
use consent_util::table::{pct, Table};

/// Collected methodology statistics.
pub struct MethodologyResult {
    /// Twitter's share of feed items (paper: ~80 %).
    pub twitter_share: f64,
    /// Dedup skip rate (paper: ~40 %).
    pub skip_rate: f64,
    /// Captures with a cross-domain redirect (paper: ~11 %).
    pub redirect_rate: f64,
    /// Captures with more than one CMP (paper: 0.01 %).
    pub multi_cmp_rate: f64,
    /// Domains whose daily CMP share is always <5 % or >95 %
    /// (paper: 99.8 %).
    pub bimodal_share: f64,
    /// Missing-data breakdown over the toplist (§3.5).
    pub missing: MissingDataReport,
}

impl MethodologyResult {
    /// Render as a two-column table with the paper's reference values.
    pub fn render(&self) -> String {
        let mut t = Table::with_columns(&["Statistic", "Measured", "Paper"]);
        t.numeric().title("Methodology statistics (§3.4–§3.5)");
        t.row(vec![
            "Twitter share of feed".into(),
            pct(self.twitter_share),
            "80%".into(),
        ]);
        t.row(vec![
            "Dedup skip rate".into(),
            pct(self.skip_rate),
            "~40%".into(),
        ]);
        t.row(vec![
            "Cross-domain redirects".into(),
            pct(self.redirect_rate),
            "~11%".into(),
        ]);
        t.row(vec![
            "Multi-CMP captures".into(),
            format!("{:.3}%", self.multi_cmp_rate * 100.0),
            "0.01%".into(),
        ]);
        t.row(vec![
            "Bimodal daily CMP share".into(),
            pct(self.bimodal_share),
            "99.8%".into(),
        ]);
        let m = &self.missing;
        t.row(vec![
            "Toplist domains never shared".into(),
            m.never_shared.to_string(),
            "1076 / 10k".into(),
        ]);
        t.row(vec![
            "  of which unreachable".into(),
            m.unreachable.to_string(),
            "315".into(),
        ]);
        t.row(vec![
            "  of which HTTP error".into(),
            m.http_error.to_string(),
            "70".into(),
        ]);
        t.row(vec![
            "  of which redirect elsewhere".into(),
            m.redirects_elsewhere.to_string(),
            "192".into(),
        ]);
        t.row(vec![
            "  of which infrastructure".into(),
            m.infrastructure.to_string(),
            ">90% of rest".into(),
        ]);
        t.to_string()
    }
}

/// Compute the statistics from an existing Figure 6 run (which already
/// holds the capture DB and toplist).
pub fn methodology(study: &Study, fig6: &Fig6Result) -> MethodologyResult {
    let timelines = build_timelines(&fig6.db, None);
    let refs: Vec<&consent_analysis::Timeline> = timelines.values().collect();
    MethodologyResult {
        twitter_share: fig6.stats.twitter_share(),
        skip_rate: fig6.stats.skip_rate(),
        redirect_rate: fig6.db.redirect_rate(),
        multi_cmp_rate: fig6.db.multi_cmp_rate(),
        bimodal_share: bimodal_share(&refs),
        missing: missing_data_report(study.world(), &fig6.toplist, &fig6.db),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig6::fig6;

    #[test]
    fn statistics_in_paper_bands() {
        let study = Study::quick();
        let f6 = fig6(&study);
        let m = methodology(&study, &f6);
        assert!(
            (m.twitter_share - 0.8).abs() < 0.05,
            "twitter {}",
            m.twitter_share
        );
        assert!((0.2..0.6).contains(&m.skip_rate), "skip {}", m.skip_rate);
        assert!(
            (0.05..0.2).contains(&m.redirect_rate),
            "redirect {}",
            m.redirect_rate
        );
        assert!(m.multi_cmp_rate < 0.005, "multi {}", m.multi_cmp_rate);
        assert!(m.bimodal_share > 0.95, "bimodal {}", m.bimodal_share);
        assert!(m.missing.never_shared > 0);
        let rendered = m.render();
        assert!(rendered.contains("Dedup skip rate"));
        assert!(rendered.contains("99.8%"));
    }
}

/// [`methodology`] with telemetry: records a run report named
/// `methodology`.
pub fn methodology_reported(study: &Study, fig6: &Fig6Result) -> MethodologyResult {
    super::run_reported(study, "methodology", || methodology(study, fig6))
}
