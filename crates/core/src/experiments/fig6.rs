//! Figure 6 — CMP adoption in the Tranco 10k over time — and
//! Figure 4 — inter-CMP switching flows.
//!
//! Both come from the same social-feed run: the platform crawls the
//! reshare-skewed URL stream over the full observation window, per-domain
//! timelines are reconstructed (interpolation + 30-day fade-out), and the
//! daily counts are restricted to the toplist membership set.

use crate::study::Study;
use consent_analysis::{
    adoption_series, build_timelines, switch_matrix, AdoptionPoint, SwitchMatrix,
};
use consent_crawler::{build_toplist, CaptureDb, FeedConfig, Platform, RunStats};
use consent_util::table::Table;
use consent_util::Day;
use consent_webgraph::ALL_CMPS;
use std::collections::HashSet;

/// Output of the social-feed longitudinal run.
pub struct Fig6Result {
    /// Monthly (default) sample points.
    pub series: Vec<AdoptionPoint>,
    /// The Figure 4 switching matrix from the same timelines.
    pub switching: SwitchMatrix,
    /// Feed/pipeline statistics (§3.4 numbers).
    pub stats: RunStats,
    /// The capture database (kept for the methodology experiment).
    pub db: CaptureDb,
    /// Toplist membership used for the restriction.
    pub toplist: Vec<String>,
}

impl Fig6Result {
    /// Render the adoption series as a table.
    pub fn render(&self) -> String {
        let mut header = vec!["Date".to_owned(), "Total".to_owned()];
        header.extend(ALL_CMPS.iter().map(|c| c.name().to_owned()));
        let mut t = Table::new(header);
        t.numeric()
            .title("Figure 6: Websites in the toplist embedding a CMP, over time");
        for p in &self.series {
            let mut row = vec![p.day.to_string(), p.total().to_string()];
            row.extend(ALL_CMPS.iter().map(|&c| p.count(c).to_string()));
            t.row(row);
        }
        t.to_string()
    }

    /// Render the switching flows (Figure 4).
    pub fn render_switching(&self) -> String {
        let mut t = Table::with_columns(&["From", "To", "Sites"]);
        t.numeric()
            .title("Figure 4: Websites switching between CMPs");
        for ((from, to), n) in &self.switching.flows {
            t.row(vec![from.name().into(), to.name().into(), n.to_string()]);
        }
        let mut net = Table::with_columns(&["CMP", "Gained", "Lost", "Net"]);
        net.numeric();
        for cmp in ALL_CMPS {
            net.row(vec![
                cmp.name().into(),
                self.switching.gained_by(cmp).to_string(),
                self.switching.lost_by(cmp).to_string(),
                self.switching.net(cmp).to_string(),
            ]);
        }
        format!("{t}\n{net}")
    }
}

/// Run the full longitudinal pipeline with monthly sampling.
pub fn fig6(study: &Study) -> Fig6Result {
    fig6_with_step(study, 30)
}

/// Run with a custom sampling step in days.
pub fn fig6_with_step(study: &Study, step_days: i32) -> Fig6Result {
    let config = study.config();
    let platform = Platform::new(
        study.world(),
        FeedConfig {
            urls_per_day: config.feed_urls_per_day,
            ..FeedConfig::default()
        },
        study.seed().child("fig6-platform"),
    );
    let (db, stats) = platform.run(config.window_start, config.window_end);

    let toplist = build_toplist(
        study.world(),
        config.toplist_size,
        study.seed().child("toplist"),
    );
    let membership: HashSet<String> = toplist.iter().cloned().collect();
    let timelines = build_timelines(&db, Some(&membership));
    let series = adoption_series(
        &timelines,
        config.window_start,
        config.window_end - 1,
        step_days,
    );
    // Switching is computed over *all* observed domains (the paper's
    // Figure 4 is not toplist-restricted).
    let all_timelines = build_timelines(&db, None);
    let switching = switch_matrix(&all_timelines);
    Fig6Result {
        series,
        switching,
        stats,
        db,
        toplist,
    }
}

/// The adoption count interpolated at a given day (nearest sample at or
/// before `day`).
pub fn count_at(series: &[AdoptionPoint], day: Day) -> usize {
    series
        .iter()
        .rev()
        .find(|p| p.day <= day)
        .map_or(0, AdoptionPoint::total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_webgraph::Cmp;

    #[test]
    fn quick_series_grows() {
        let study = Study::quick();
        let r = fig6(&study);
        assert!(!r.series.is_empty());
        let first = r.series.first().unwrap().total();
        let last = r.series.last().unwrap().total();
        assert!(
            last > first,
            "adoption should grow across the window: {first} -> {last}"
        );
        assert!(r.stats.captured > 10_000);
        assert!((r.stats.twitter_share() - 0.8).abs() < 0.05);
        let rendered = r.render();
        assert!(rendered.contains("Total"));
    }

    #[test]
    fn switching_flows_present_and_cookiebot_loses() {
        let study = Study::quick();
        let r = fig6(&study);
        assert!(r.switching.total() > 0, "no switches observed");
        let lost = r.switching.lost_by(Cmp::Cookiebot);
        let gained = r.switching.gained_by(Cmp::Cookiebot);
        assert!(
            lost > gained,
            "Cookiebot should lose more than it gains: {lost} vs {gained}"
        );
        let rendered = r.render_switching();
        assert!(rendered.contains("Cookiebot"));
        assert!(rendered.contains("Net"));
    }

    #[test]
    fn count_at_lookup() {
        let study = Study::quick();
        let r = fig6(&study);
        let w = study.config().window_start;
        assert_eq!(count_at(&r.series, w - 10), 0);
        let early = count_at(&r.series, w + 40);
        let mid = count_at(&r.series, w + 150);
        assert!(mid >= early, "mid {mid} < early {early}");
        // The final sample sits at the right-censor boundary, where the
        // 30-day fade-out legitimately thins coverage; it should still be
        // in the same ballpark as mid-window.
        let end = count_at(&r.series, study.config().window_end);
        assert!(end * 2 >= mid, "end {end} collapsed vs mid {mid}");
    }
}

/// [`fig6`] with telemetry: records a run report named `fig6`.
pub fn fig6_reported(study: &Study) -> Fig6Result {
    super::run_reported(study, "fig6", || fig6(study))
}
