//! Figures 7 and 8 — Global Vendor List dynamics.
//!
//! Figure 7 plots the number of vendors and per-purpose claims across all
//! published GVL versions; Figure 8 buckets the lawful-basis transitions
//! of existing vendors by month. Both run the longitudinal diff engine
//! over the replayed version history.

use crate::study::Study;
use consent_tcf::{
    diff_history, fig7_series, fig8_series, generate_history, gvl_diff::Fig7Point,
    gvl_diff::Fig8Month, HistoryConfig, VendorList,
};
use consent_util::table::Table;

/// Output of the GVL experiments.
pub struct GvlResult {
    /// The replayed version history.
    pub history: Vec<VendorList>,
    /// Figure 7 series (one point per version).
    pub fig7: Vec<Fig7Point>,
    /// Figure 8 monthly transition buckets.
    pub fig8: Vec<Fig8Month>,
}

impl GvlResult {
    /// Net shift toward consent over the whole window (Figure 8's
    /// headline: positive).
    pub fn net_toward_consent(&self) -> i64 {
        self.fig8.iter().map(Fig8Month::net_toward_consent).sum()
    }

    /// Render Figure 7 at a monthly cadence.
    pub fn render_fig7(&self) -> String {
        let mut t = Table::with_columns(&[
            "Date", "Version", "Vendors", "P1", "P2", "P3", "P4", "P5", "LI1", "LI2", "LI3", "LI4",
            "LI5",
        ]);
        t.numeric()
            .title("Figure 7: Vendors and purposes in the IAB Global Vendor List");
        let mut last_month = None;
        for p in &self.fig7 {
            let month = p.date.first_of_month();
            if last_month == Some(month) {
                continue;
            }
            last_month = Some(month);
            let mut row = vec![
                p.date.to_string(),
                p.version.to_string(),
                p.vendors.to_string(),
            ];
            row.extend(p.consent.iter().map(usize::to_string));
            row.extend(p.leg_int.iter().map(usize::to_string));
            t.row(row);
        }
        t.to_string()
    }

    /// Render Figure 8.
    pub fn render_fig8(&self) -> String {
        let mut t = Table::with_columns(&[
            "Month",
            "LI→Consent",
            "Consent→LI",
            "New consent",
            "New LI",
            "Dropped",
            "Net→Consent",
        ]);
        t.numeric()
            .title("Figure 8: Lawful-basis changes among existing GVL vendors");
        for m in &self.fig8 {
            t.row(vec![
                m.month.to_string(),
                m.li_to_consent.to_string(),
                m.consent_to_li.to_string(),
                m.new_consent.to_string(),
                m.new_leg_int.to_string(),
                m.dropped.to_string(),
                m.net_toward_consent().to_string(),
            ]);
        }
        t.to_string()
    }
}

/// Run the GVL experiments with the default (paper-calibrated) history.
pub fn gvl_figures(study: &Study) -> GvlResult {
    gvl_figures_with(study, &HistoryConfig::default())
}

/// Run with a custom history configuration (used by the ablations).
pub fn gvl_figures_with(study: &Study, config: &HistoryConfig) -> GvlResult {
    let history = generate_history(config, study.seed().child("gvl"));
    let fig7 = fig7_series(&history);
    let events = diff_history(&history);
    let fig8 = fig8_series(&events);
    GvlResult {
        history,
        fig7,
        fig8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_tcf::PurposeId;
    use consent_util::Day;

    #[test]
    fn figures_have_paper_shape() {
        let study = Study::quick();
        let r = gvl_figures(&study);
        assert!(r.history.len() > 100);
        // Fig 7: growth with a GDPR spike; purpose 1 most popular.
        let first = r.fig7.first().unwrap();
        let last = r.fig7.last().unwrap();
        assert!(last.vendors > first.vendors * 5);
        for p in r.fig7.iter().step_by(25) {
            let p1 = p.consent[0] + p.leg_int[0];
            for i in 1..5 {
                assert!(p1 >= p.consent[i] + p.leg_int[i]);
            }
        }
        // Fig 8: net shift toward consent.
        assert!(r.net_toward_consent() > 0);
        // Activity concentrates in the burst months.
        let may18: usize = r
            .fig8
            .iter()
            .filter(|m| {
                m.month == Day::from_ymd(2018, 5, 1) || m.month == Day::from_ymd(2018, 6, 1)
            })
            .map(Fig8Month::total)
            .sum();
        let quiet: usize = r
            .fig8
            .iter()
            .filter(|m| m.month == Day::from_ymd(2019, 9, 1))
            .map(Fig8Month::total)
            .sum();
        assert!(may18 >= quiet, "burst {may18} < quiet {quiet}");
        // At least a fifth of vendors claim LI per purpose at the end.
        let final_list = r.history.last().unwrap();
        for p in 1..=5u8 {
            let total = final_list
                .vendors
                .iter()
                .filter(|v| v.uses_purpose(PurposeId(p)))
                .count();
            assert!(final_list.leg_int_count(PurposeId(p)) * 5 >= total.saturating_sub(total / 4));
        }
    }

    #[test]
    fn renders() {
        let study = Study::quick();
        let r = gvl_figures(&study);
        let f7 = r.render_fig7();
        assert!(f7.contains("Vendors"));
        assert!(f7.lines().count() > 20);
        let f8 = r.render_fig8();
        assert!(f8.contains("LI→Consent"));
    }
}

/// [`gvl_figures`] with telemetry: records a run report named `fig7_8`.
pub fn gvl_figures_reported(study: &Study) -> GvlResult {
    super::run_reported(study, "fig7_8", || gvl_figures(study))
}
