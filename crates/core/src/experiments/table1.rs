//! Table 1 / Table A.3 — CMP occurrence by vantage point.

use crate::study::Study;
use consent_analysis::{vantage_table, VantageTable};
use consent_crawler::{
    build_toplist, run_campaign, run_campaign_parallel, CampaignResult, ParallelOpts,
};
use consent_fingerprint::Detector;
use consent_httpsim::Vantage;
use consent_util::{date::known, Day};

/// Output of the Table 1 experiment.
pub struct Table1Result {
    /// Snapshot day the campaign ran on.
    pub snapshot: Day,
    /// The computed table.
    pub table: VantageTable,
    /// Raw campaign output (kept for the I3 analysis, which reuses the
    /// EU-university captures).
    pub campaign: CampaignResult,
}

impl Table1Result {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let title = format!(
            "Table 1: Occurrence of CMPs on websites in the Tranco toplist ({})",
            self.snapshot
        );
        self.table.render(&title)
    }
}

/// Run the toplist campaign for the May 2020 snapshot (Table 1).
pub fn table1(study: &Study) -> Table1Result {
    run_at(study, known::may_2020_snapshot())
}

/// Run the January 2020 variant (Table A.3).
pub fn table_a3(study: &Study) -> Table1Result {
    run_at(study, known::jan_2020_snapshot())
}

/// Run the campaign at an arbitrary snapshot day.
pub fn run_at(study: &Study, snapshot: Day) -> Table1Result {
    let list = build_toplist(
        study.world(),
        study.config().toplist_size,
        study.seed().child("toplist"),
    );
    let campaign = run_campaign(
        study.world(),
        &list,
        snapshot,
        &Vantage::table1_columns(),
        study.seed().child("campaign").child_idx(snapshot.0 as u64),
    );
    let table = vantage_table(&campaign, &Detector::hostname_only());
    Table1Result {
        snapshot,
        table,
        campaign,
    }
}

/// [`run_at`] on the worker-pool executor. Returns the same result as
/// the sequential entry point at any `threads` — the parallel merge is
/// byte-deterministic — just faster on multicore hardware. `threads <= 1`
/// runs the sequential code path unchanged.
pub fn run_at_parallel(study: &Study, snapshot: Day, threads: usize) -> Table1Result {
    let list = build_toplist(
        study.world(),
        study.config().toplist_size,
        study.seed().child("toplist"),
    );
    let run = run_campaign_parallel(
        study.world(),
        &list,
        snapshot,
        &Vantage::table1_columns(),
        study.seed().child("campaign").child_idx(snapshot.0 as u64),
        &ParallelOpts::with_threads(threads),
    );
    let table = vantage_table(&run.result, &Detector::hostname_only());
    Table1Result {
        snapshot,
        table,
        campaign: run.result,
    }
}

/// [`table1`] on the worker-pool executor ([`run_at_parallel`]).
pub fn table1_parallel(study: &Study, threads: usize) -> Table1Result {
    run_at_parallel(study, known::may_2020_snapshot(), threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_has_paper_shape() {
        let study = Study::quick();
        let r = table1(&study);
        // Monotone coverage: US cloud < EU university extended.
        assert!(r.table.total(0) < r.table.total(3));
        // Coverage row ends at 100 % for the best column.
        let best: f64 = (0..6).map(|i| r.table.coverage(i)).fold(0.0, f64::max);
        assert!((best - 1.0).abs() < 1e-9);
        let rendered = r.render();
        assert!(rendered.contains("Quantcast"));
        assert!(rendered.contains("Coverage"));
    }

    #[test]
    fn parallel_variant_renders_the_same_table() {
        let study = Study::quick();
        let seq = table1(&study);
        let par = table1_parallel(&study, 3);
        assert_eq!(seq.render(), par.render());
        assert_eq!(seq.campaign.columns.len(), par.campaign.columns.len());
    }

    #[test]
    fn january_snapshot_smaller_than_may() {
        let study = Study::quick();
        let may = table1(&study);
        let jan = table_a3(&study);
        // Adoption grows: the best column in January is below May's.
        let may_best = (0..6).map(|i| may.table.total(i)).max().unwrap();
        let jan_best = (0..6).map(|i| jan.table.total(i)).max().unwrap();
        assert!(jan_best < may_best, "jan {jan_best} !< may {may_best}");
        // §3.5: US coverage grows markedly between the snapshots as CCPA
        // adoption ramps (70 % → 79 % in the paper).
        assert!(jan.table.coverage(0) <= may.table.coverage(0) + 0.05);
    }
}

/// [`table1`] with telemetry: records a [`consent_telemetry::RunReport`]
/// named `table1` on the study.
pub fn table1_reported(study: &Study) -> Table1Result {
    super::run_reported(study, "table1", || table1(study))
}

/// [`table_a3`] with telemetry: records a run report named `table_a3`.
pub fn table_a3_reported(study: &Study) -> Table1Result {
    super::run_reported(study, "table_a3", || table_a3(study))
}
