//! One module per paper table/figure; see DESIGN.md's experiment index.
//!
//! Every experiment has a plain entry point plus a `*_reported` variant
//! that wraps it in [`run_reported`]: the run is timed, the global
//! telemetry registry is snapshotted before and after, and the resulting
//! [`consent_telemetry::RunReport`] — capture counts per vantage and
//! `CaptureStatus`, retries, dedup skips — is recorded on the
//! [`Study`]. With telemetry disabled (the default) the
//! wrappers cost two empty snapshots and a clock read. For causal
//! per-capture tracing, [`run_traced`] additionally turns on the global
//! `consent_trace` log around a closure and hands back the byte-stable
//! JSONL export (see `examples/trace_explain.rs`).
//!
//! Campaign-shaped experiments also have a `*_parallel` variant (e.g.
//! [`table1::table1_parallel`]) that runs the same crawl on the
//! worker-pool executor (`consent_crawler::run_campaign_parallel`).
//! Because the parallel merge is byte-deterministic, the variant returns
//! exactly the same result at any thread count — it exists purely for
//! wall-clock speed on multicore hardware.

use crate::Study;

pub mod archive;
pub mod fig1;
pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7_8;
pub mod fig9;
pub mod i3;
pub mod methodology;
pub mod table1;
pub mod tables_a;

/// Run `f` against the global telemetry registry and record the
/// resulting run report on `study`. Returns `f`'s value unchanged.
pub fn run_reported<T>(study: &Study, name: &str, f: impl FnOnce() -> T) -> T {
    let (value, report) =
        consent_telemetry::RunReport::collect(consent_telemetry::global(), name, f);
    study.record_report(report);
    value
}

/// Run `f` with the global trace log recording and return `f`'s value
/// together with the byte-stable JSONL export of every trace it
/// recorded. The log is cleared before the run (so the export contains
/// only this run's traces) and recording is restored to its previous
/// state afterward, making the helper safe to compose with
/// [`run_reported`] and with runs that leave tracing off.
pub fn run_traced<T>(f: impl FnOnce() -> T) -> (T, String) {
    let was_enabled = consent_trace::enabled();
    consent_trace::clear();
    consent_trace::enable();
    let value = f();
    let jsonl = consent_trace::global().export_jsonl();
    consent_trace::global().set_enabled(was_enabled);
    (value, jsonl)
}
