//! One module per paper table/figure; see DESIGN.md's experiment index.

pub mod fig1;
pub mod fig10;
pub mod fig5;
pub mod fig6;
pub mod fig7_8;
pub mod fig9;
pub mod i3;
pub mod methodology;
pub mod table1;
pub mod tables_a;
