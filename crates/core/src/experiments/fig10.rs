//! Figure 10 — the randomized time-to-consent experiment.
//!
//! Runs the mitmproxy.org field experiment against the simulated visitor
//! population and reports the paper's quantities: median accept/reject
//! times per dialog configuration, consent rates, and the Mann–Whitney
//! statistics.

use crate::study::Study;
use consent_dialog::{run_experiment, ExperimentConfig, ExperimentResult};
use consent_stats::proportion::{two_proportion_z, TwoProportion};
use consent_util::table::Table;

/// Output of the Figure 10 experiment.
pub struct Fig10Result {
    /// Raw experiment output.
    pub experiment: ExperimentResult,
}

impl Fig10Result {
    /// Two-proportion z-test on the consent-rate difference between the
    /// arms (the paper reports the 83 % → 90 % increase descriptively;
    /// this quantifies its significance).
    pub fn consent_rate_test(&self) -> Option<TwoProportion> {
        let d = &self.experiment.direct;
        let m = &self.experiment.more_options;
        two_proportion_z(
            d.accept_times.len() as u64,
            (d.accept_times.len() + d.reject_times.len()) as u64,
            m.accept_times.len() as u64,
            (m.accept_times.len() + m.reject_times.len()) as u64,
        )
        .ok()
    }

    /// Render the paper's summary: per-arm medians, consent rates, and
    /// test statistics.
    pub fn render(&self) -> String {
        let mut t = Table::with_columns(&[
            "Configuration",
            "N accept",
            "N reject",
            "Median accept",
            "Median reject",
            "Consent rate",
            "U",
            "z",
            "p",
        ]);
        t.numeric()
            .title("Figure 10: Interaction time by dialog design (Quantcast field experiment)");
        for arm in [&self.experiment.direct, &self.experiment.more_options] {
            let name = match arm.config {
                consent_dialog::QuantcastConfig::DirectReject => "Direct reject button",
                consent_dialog::QuantcastConfig::MoreOptions => "\"More Options\" button",
            };
            let (u, z, p) = arm
                .test
                .map(|t| {
                    (
                        format!("{:.0}", t.u1),
                        format!("{:.2}", t.z),
                        format!("{:.2e}{}", t.p_two_sided, t.stars()),
                    )
                })
                .unwrap_or_default();
            t.row(vec![
                name.into(),
                arm.accept_times.len().to_string(),
                arm.reject_times.len().to_string(),
                format!("{:.1}s", arm.median_accept().unwrap_or(0.0)),
                format!("{:.1}s", arm.median_reject().unwrap_or(0.0)),
                consent_util::table::pct(arm.consent_rate()),
                u,
                z,
                p,
            ]);
        }
        let rate_line = match self.consent_rate_test() {
            Some(tp) => format!(
                "Consent-rate difference: {:.1}% vs {:.1}% (z = {:.2}, p = {:.2e})\n",
                tp.p1 * 100.0,
                tp.p2 * 100.0,
                tp.z,
                tp.p_two_sided
            ),
            None => String::new(),
        };
        format!(
            "{t}{rate_line}Total visitors shown a dialog: {}\n",
            self.experiment.visitors
        )
    }
}

/// Run the experiment with the paper's 2 910 visitors.
pub fn fig10(study: &Study) -> Fig10Result {
    fig10_with(study, &ExperimentConfig::default())
}

/// Run with a custom configuration (used for scale ablations).
pub fn fig10_with(study: &Study, config: &ExperimentConfig) -> Fig10Result {
    Fig10Result {
        experiment: run_experiment(config, study.seed().child("fig10")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_statistics() {
        let study = Study::quick();
        let r = fig10(&study);
        let e = &r.experiment;
        assert_eq!(e.visitors, 2_910);
        // Medians: 3.2 / 3.6 / 6.7 seconds.
        assert!((e.direct.median_accept().unwrap() - 3.2).abs() < 0.4);
        assert!((e.direct.median_reject().unwrap() - 3.6).abs() < 0.5);
        assert!((e.more_options.median_reject().unwrap() - 6.7).abs() < 1.5);
        // Consent rates 83 % → 90 %.
        assert!(e.more_options.consent_rate() > e.direct.consent_rate());
        // Both tests significant, direction negative.
        assert!(e.direct.test.unwrap().p_two_sided < 0.05);
        assert!(e.more_options.test.unwrap().p_two_sided < 0.001);
    }

    #[test]
    fn consent_rate_difference_significant() {
        let study = Study::quick();
        let r = fig10(&study);
        let tp = r.consent_rate_test().expect("both arms have deciders");
        assert!(tp.p1 < tp.p2, "direct arm must have the lower rate");
        assert!(tp.z < 0.0);
        assert!(tp.p_two_sided < 0.01, "p = {}", tp.p_two_sided);
    }

    #[test]
    fn render_contains_statistics() {
        let study = Study::quick();
        let s = fig10(&study).render();
        assert!(s.contains("Direct reject"));
        assert!(s.contains("More Options"));
        assert!(s.contains("Consent rate"));
        assert!(s.contains("2910"));
    }
}

/// [`fig10`] with telemetry: records a run report named `fig10`.
pub fn fig10_reported(study: &Study) -> Fig10Result {
    super::run_reported(study, "fig10", || fig10(study))
}
