//! Figure 9 — the TrustArc opt-out cost on forbes.com.
//!
//! Hourly probes for two weeks; the paper reports the medians: ≥7 clicks
//! and ~34 s to opt out, +279 requests to 25 domains, +1.2 MB / 5.8 MB
//! transferred — while accepting closes the dialog immediately.

use crate::study::Study;
use consent_dialog::{accept, hourly_probes, Probe};
use consent_stats::median;
use consent_util::table::Table;

/// Output of the Figure 9 measurement.
pub struct Fig9Result {
    /// All probes (default: 336 = hourly for two weeks).
    pub probes: Vec<Probe>,
    /// Median total opt-out waiting time, seconds.
    pub median_wait_s: f64,
    /// Minimum clicks across probes.
    pub min_clicks: u8,
    /// Median extra requests.
    pub median_extra_requests: f64,
    /// Median distinct opt-out domains.
    pub median_extra_domains: f64,
    /// Median extra compressed megabytes.
    pub median_extra_mb: f64,
    /// Median extra uncompressed megabytes.
    pub median_extra_mb_uncompressed: f64,
    /// Time to *accept* instead, seconds (median).
    pub accept_wait_s: f64,
}

impl Fig9Result {
    /// Render the phase breakdown of the median-duration probe plus the
    /// summary line.
    pub fn render(&self) -> String {
        // Pick the probe whose total wait is closest to the median.
        let target = self.median_wait_s;
        let probe = self
            .probes
            .iter()
            .min_by(|a, b| {
                let da = (a.run.total_wait().as_secs_f64() - target).abs();
                let db = (b.run.total_wait().as_secs_f64() - target).abs();
                da.partial_cmp(&db).expect("finite")
            })
            .expect("non-empty probes");
        let mut t = Table::with_columns(&["Phase", "Clicks", "Wait"]);
        t.numeric()
            .title("Figure 9: Opting out on a TrustArc multi-partner dialog");
        for phase in &probe.run.phases {
            t.row(vec![
                phase.name.to_owned(),
                phase.clicks.to_string(),
                format!("{:.1}s", phase.wait_ms as f64 / 1000.0),
            ]);
        }
        format!(
            "{t}\nTotal: {} clicks, {:.1}s median wait | accepting instead: 1 click, {:.2}s\n\
             Extra cost of opting out: {:.0} requests to {:.0} domains, \
             {:.1} MB / {:.1} MB (compressed/uncompressed)\n",
            probe.run.total_clicks(),
            self.median_wait_s,
            self.accept_wait_s,
            self.median_extra_requests,
            self.median_extra_domains,
            self.median_extra_mb,
            self.median_extra_mb_uncompressed,
        )
    }
}

/// Run the two-week hourly probe schedule.
pub fn fig9(study: &Study) -> Fig9Result {
    fig9_with_hours(study, 336)
}

/// Run with a custom number of hourly probes.
pub fn fig9_with_hours(study: &Study, hours: u32) -> Fig9Result {
    let probes = hourly_probes(hours, study.seed().child("fig9"));
    let waits: Vec<f64> = probes
        .iter()
        .map(|p| p.run.total_wait().as_secs_f64())
        .collect();
    let reqs: Vec<f64> = probes
        .iter()
        .map(|p| f64::from(p.run.extra_requests))
        .collect();
    let domains: Vec<f64> = probes
        .iter()
        .map(|p| f64::from(p.run.extra_domains))
        .collect();
    let mb: Vec<f64> = probes
        .iter()
        .map(|p| p.run.extra_bytes_compressed as f64 / 1e6)
        .collect();
    let mbu: Vec<f64> = probes
        .iter()
        .map(|p| p.run.extra_bytes_uncompressed as f64 / 1e6)
        .collect();
    let min_clicks = probes
        .iter()
        .map(|p| p.run.total_clicks())
        .min()
        .unwrap_or(0);
    let mut accept_rng = study.seed().child("fig9-accept").rng();
    let accepts: Vec<f64> = (0..hours)
        .map(|_| accept(&mut accept_rng).wait_ms as f64 / 1000.0)
        .collect();
    Fig9Result {
        median_wait_s: median(&waits).unwrap_or(0.0),
        min_clicks,
        median_extra_requests: median(&reqs).unwrap_or(0.0),
        median_extra_domains: median(&domains).unwrap_or(0.0),
        median_extra_mb: median(&mb).unwrap_or(0.0),
        median_extra_mb_uncompressed: median(&mbu).unwrap_or(0.0),
        accept_wait_s: median(&accepts).unwrap_or(0.0),
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_magnitudes() {
        let study = Study::quick();
        let r = fig9(&study);
        assert_eq!(r.probes.len(), 336);
        assert!(r.min_clicks >= 7, "min clicks {}", r.min_clicks);
        assert!(
            (30.0..42.0).contains(&r.median_wait_s),
            "median wait {} (paper: ≥34 s)",
            r.median_wait_s
        );
        assert!(
            (240.0..320.0).contains(&r.median_extra_requests),
            "requests {} (paper: 279)",
            r.median_extra_requests
        );
        assert!(
            (22.0..28.0).contains(&r.median_extra_domains),
            "domains {} (paper: 25)",
            r.median_extra_domains
        );
        assert!(
            (0.9..1.5).contains(&r.median_extra_mb),
            "{} MB",
            r.median_extra_mb
        );
        assert!(
            (4.5..7.0).contains(&r.median_extra_mb_uncompressed),
            "{} MB",
            r.median_extra_mb_uncompressed
        );
        // Accepting is orders of magnitude faster.
        assert!(r.accept_wait_s < 0.5);
        assert!(r.median_wait_s / r.accept_wait_s > 50.0);
    }

    #[test]
    fn renders_phase_breakdown() {
        let study = Study::quick();
        let r = fig9_with_hours(&study, 48);
        let s = r.render();
        assert!(s.contains("partner opt-out fan-out"));
        assert!(s.contains("Total:"));
        assert!(s.contains("compressed"));
    }
}

/// [`fig9`] with telemetry: records a run report named `fig9`.
pub fn fig9_reported(study: &Study) -> Fig9Result {
    super::run_reported(study, "fig9", || fig9(study))
}
