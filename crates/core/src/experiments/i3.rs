//! Item I3 — publisher customization of embedded CMPs (§4.1).
//!
//! Reuses the EU-university column of the Table 1 campaign (the only
//! vantage with DOM snapshots, as in the paper) and runs the
//! customization classifier over it.

use crate::experiments::table1::Table1Result;
use consent_analysis::{
    customization_report, jurisdiction_report, CustomizationReport, JurisdictionReport,
    ObservedStyle,
};
use consent_fingerprint::Detector;
use consent_httpsim::Vantage;
use consent_psl::PublicSuffixList;
use consent_util::table::{pct, Table};
use consent_webgraph::Cmp;

/// Output of the customization analysis.
pub struct I3Result {
    /// The per-CMP report.
    pub report: CustomizationReport,
}

impl I3Result {
    /// Render the §4.1 shares for the three largest CMPs.
    pub fn render(&self) -> String {
        let r = &self.report;
        let mut t = Table::with_columns(&["CMP", "Sites", "Customization shares"]);
        t.title("I3: Publisher customization of consent dialogs (EU university vantage)");
        t.row(vec![
            "OneTrust".into(),
            r.sites
                .get(&Cmp::OneTrust)
                .copied()
                .unwrap_or(0)
                .to_string(),
            format!(
                "banner {} | opt-out button {} | script banner {} | footer link {}",
                pct(r.style_share(Cmp::OneTrust, ObservedStyle::ConventionalBanner)),
                pct(r.style_share(Cmp::OneTrust, ObservedStyle::OptOutButton)),
                pct(r.style_share(Cmp::OneTrust, ObservedStyle::ScriptBanner)),
                pct(r.style_share(Cmp::OneTrust, ObservedStyle::FooterLinkOnly)),
            ),
        ]);
        t.row(vec![
            "Quantcast".into(),
            r.sites
                .get(&Cmp::Quantcast)
                .copied()
                .unwrap_or(0)
                .to_string(),
            format!(
                "direct reject {} | more-options {} | free-form wording {}",
                pct(r.style_share(Cmp::Quantcast, ObservedStyle::DirectReject)),
                pct(r.style_share(Cmp::Quantcast, ObservedStyle::MoreOptions)),
                pct(r.freeform_share(Cmp::Quantcast)),
            ),
        ]);
        t.row(vec![
            "TrustArc".into(),
            r.sites
                .get(&Cmp::TrustArc)
                .copied()
                .unwrap_or(0)
                .to_string(),
            format!(
                "instant opt-out {} | multi-partner {} | autonomy {} | no-control {}",
                pct(r.style_share(Cmp::TrustArc, ObservedStyle::InstantOptOut)),
                pct(r.style_share(Cmp::TrustArc, ObservedStyle::MultiPartnerOptOut)),
                pct(r.style_share(Cmp::TrustArc, ObservedStyle::AutonomyButton)),
                pct(r.style_share(Cmp::TrustArc, ObservedStyle::NoControlLink)),
            ),
        ]);
        format!(
            "{t}API-only custom dialogs across CMPs: {}\n",
            pct(self.report.api_only_share())
        )
    }
}

/// Run the analysis on an existing Table 1 campaign result.
pub fn i3_customization(table1: &Table1Result) -> I3Result {
    let vantage = Vantage::table1_columns()[3]; // EU university, extended
    let captures = table1
        .campaign
        .column(vantage)
        .expect("campaign includes the EU university column");
    I3Result {
        report: customization_report(captures, &Detector::hostname_only()),
    }
}

/// Measure the §4.1 EU+UK TLD shares from the same campaign captures
/// (the paper's Quantcast 38.3 % vs OneTrust 16.3 % comparison).
pub fn jurisdiction(table1: &Table1Result) -> JurisdictionReport {
    let vantage = Vantage::table1_columns()[3];
    let captures = table1
        .campaign
        .column(vantage)
        .expect("campaign includes the EU university column");
    jurisdiction_report(
        captures,
        &Detector::hostname_only(),
        &PublicSuffixList::embedded(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table1::table1;
    use crate::study::Study;

    #[test]
    fn report_covers_major_cmps() {
        let study = Study::quick();
        let t1 = table1(&study);
        let r = i3_customization(&t1);
        assert!(r.report.sites.get(&Cmp::OneTrust).copied().unwrap_or(0) > 10);
        assert!(r.report.sites.get(&Cmp::Quantcast).copied().unwrap_or(0) > 5);
        // Quantcast splits between the two modal styles.
        let d = r
            .report
            .style_share(Cmp::Quantcast, ObservedStyle::DirectReject);
        let m = r
            .report
            .style_share(Cmp::Quantcast, ObservedStyle::MoreOptions);
        assert!(d > 0.2 && m > 0.2, "direct {d} more {m}");
        let rendered = r.render();
        assert!(rendered.contains("direct reject"));
        assert!(rendered.contains("API-only"));
    }

    #[test]
    fn jurisdiction_shares_ordered() {
        use consent_webgraph::Cmp;
        let study = Study::quick();
        let t1 = table1(&study);
        let j = jurisdiction(&t1);
        // Quantcast's customer base is more EU-skewed than OneTrust's.
        assert!(
            j.eu_share(Cmp::Quantcast) > j.eu_share(Cmp::OneTrust),
            "Quantcast {} !> OneTrust {}",
            j.eu_share(Cmp::Quantcast),
            j.eu_share(Cmp::OneTrust)
        );
        assert!(j.render().contains("EU+UK"));
    }
}

/// [`i3_customization`] with telemetry: records a run report named `i3`.
pub fn i3_customization_reported(study: &crate::Study, table1: &Table1Result) -> I3Result {
    super::run_reported(study, "i3", || i3_customization(table1))
}

/// [`jurisdiction`] with telemetry: records a run report named
/// `jurisdiction`.
pub fn jurisdiction_reported(study: &crate::Study, table1: &Table1Result) -> JurisdictionReport {
    super::run_reported(study, "jurisdiction", || jurisdiction(table1))
}
