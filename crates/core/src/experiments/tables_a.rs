//! Appendix tables A.1 (purposes & features) and A.2 (CMP indicators).

use consent_tcf::{FEATURES, PURPOSES};
use consent_util::table::Table;
use consent_webgraph::ALL_CMPS;

/// Render Table A.1: the TCF v1 purposes and features.
pub fn table_a1() -> String {
    let mut t = Table::with_columns(&["Id", "Purpose", "Definition"]);
    t.title("Table A.1: Purposes and features (TCF v1)");
    for p in &PURPOSES {
        let mut def = p.description.to_owned();
        def.truncate(70);
        t.row(vec![p.id.0.to_string(), p.name.into(), format!("{def}…")]);
    }
    let mut f = Table::with_columns(&["Id", "Feature", "Definition"]);
    for feat in &FEATURES {
        let mut def = feat.description.to_owned();
        def.truncate(70);
        f.row(vec![
            feat.id.0.to_string(),
            feat.name.into(),
            format!("{def}…"),
        ]);
    }
    format!("{t}\n{f}")
}

/// Render Table A.2: the indicator hostnames.
pub fn table_a2() -> String {
    let mut t = Table::with_columns(&["CMP", "Unique Hostname"]);
    t.title("Table A.2: Hostnames used as CMP presence indicators");
    for cmp in ALL_CMPS {
        t.row(vec![cmp.name().into(), cmp.indicator_hostname().into()]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_a1_lists_all_purposes_and_features() {
        let s = table_a1();
        assert!(s.contains("Information storage and access"));
        assert!(s.contains("Measurement"));
        assert!(s.contains("Device linking"));
        assert!(s.contains("Precise geographic location data"));
    }

    #[test]
    fn table_a2_lists_all_indicators() {
        let s = table_a2();
        for cmp in ALL_CMPS {
            assert!(s.contains(cmp.indicator_hostname()));
            assert!(s.contains(cmp.name()));
        }
    }
}

/// [`table_a1`] with telemetry: records a run report named `table_a1`.
pub fn table_a1_reported(study: &crate::Study) -> String {
    super::run_reported(study, "table_a1", table_a1)
}

/// [`table_a2`] with telemetry: records a run report named `table_a2`.
pub fn table_a2_reported(study: &crate::Study) -> String {
    super::run_reported(study, "table_a2", table_a2)
}
