//! Figure 5 / A.4–A.6 — cumulative CMP market share vs toplist size.
//!
//! The paper computes this from 161M social-media captures over the
//! Tranco 1M. We run a *stratified census sweep* instead: every site in
//! the head strata and a fixed random sample per tail stratum is crawled
//! through the full capture pipeline (EU cloud vantage, the production
//! configuration), detections are weighted by the inverse sampling
//! fraction, and the cumulative curve is assembled. Statistically this
//! matches the paper's estimator; it just spends samples where they
//! matter.

use crate::study::Study;
use consent_analysis::{marketshare_curve, standard_sizes, MarketshareCurve, RankObservation};
use consent_fingerprint::Detector;
use consent_httpsim::{CaptureOptions, Engine, Vantage};
use consent_util::table::{pct, Table};
use consent_util::{date::known, Day};
use consent_webgraph::{Cmp, ALL_CMPS};
use rand::seq::SliceRandom;

/// Output of the Figure 5 sweep.
pub struct Fig5Result {
    /// Snapshot day.
    pub snapshot: Day,
    /// The cumulative curve over [`standard_sizes`].
    pub curve: MarketshareCurve,
    /// Number of sites actually crawled.
    pub crawled: usize,
}

impl Fig5Result {
    /// Render the curve as a table (one row per toplist size).
    pub fn render(&self) -> String {
        let mut header = vec!["Toplist size".to_owned(), "Total".to_owned()];
        header.extend(ALL_CMPS.iter().map(|c| c.name().to_owned()));
        let mut t = Table::new(header);
        t.numeric().title(format!(
            "Figure 5: Cumulative CMP marketshare by toplist size ({})",
            self.snapshot
        ));
        for (i, &size) in self.curve.sizes.iter().enumerate() {
            let mut row = vec![
                consent_util::table::thousands(u64::from(size)),
                pct(self.curve.total_share(i)),
            ];
            row.extend(ALL_CMPS.iter().map(|&c| pct(self.curve.share_of(i, c))));
            t.row(row);
        }
        t.to_string()
    }
}

/// Run the sweep at the May 2020 snapshot.
pub fn fig5(study: &Study) -> Fig5Result {
    fig5_at(study, known::may_2020_snapshot())
}

/// Run the sweep at an arbitrary snapshot (Figures A.4/A.5 use January
/// 2019 / January 2020).
pub fn fig5_at(study: &Study, snapshot: Day) -> Fig5Result {
    let world = study.world();
    let engine = Engine::new(world, study.seed().child("fig5-engine"));
    let detector = Detector::hostname_only();
    let per_stratum = study.config().fig5_stratum_sample;
    let n = world.n_sites();

    // Strata: census up to the stratum-sample size, then sampled.
    let sizes = standard_sizes();
    let mut strata: Vec<(u32, u32)> = Vec::new(); // (lo, hi] rank ranges
    let mut lo = 0u32;
    for &hi in &sizes {
        let hi = hi.min(n);
        if hi > lo {
            strata.push((lo, hi));
            lo = hi;
        }
    }

    let mut rng = study.seed().child("fig5-sample").rng();
    let mut observations = Vec::new();
    let mut crawled = 0usize;
    for (lo, hi) in strata {
        let width = hi - lo;
        let (ranks, weight): (Vec<u32>, f64) = if width <= per_stratum {
            ((lo + 1..=hi).collect(), 1.0)
        } else {
            let mut all: Vec<u32> = (lo + 1..=hi).collect();
            all.shuffle(&mut rng);
            all.truncate(per_stratum as usize);
            (all, f64::from(width) / f64::from(per_stratum))
        };
        for rank in ranks {
            let profile = world.profile(rank);
            let url = format!("https://{}/", profile.domain);
            let capture = engine.capture(
                &url,
                snapshot,
                Vantage::eu_cloud(),
                CaptureOptions::default(),
            );
            crawled += 1;
            let cmp: Option<Cmp> = detector.detect(&capture).into_iter().next();
            observations.push(RankObservation { rank, weight, cmp });
        }
    }
    let curve = marketshare_curve(&observations, &sizes);
    Fig5Result {
        snapshot,
        curve,
        crawled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_curve_has_paper_shape() {
        let study = Study::quick();
        let r = fig5(&study);
        assert!(r.crawled > 1_000);
        let sizes = &r.curve.sizes;
        // The curve covers the world size even when < 1M.
        assert!(*sizes.last().unwrap() >= study.world().n_sites());
        // Mid-market hump: share at 1k-5k exceeds share at 100 and the
        // deep tail.
        let at = |s: u32| {
            let i = sizes.iter().position(|&x| x == s).unwrap();
            r.curve.total_share(i)
        };
        assert!(at(2_000) > at(100), "{} vs {}", at(2_000), at(100));
        assert!(at(2_000) > at(50_000), "{} vs {}", at(2_000), at(50_000));
        // Head share is small but present (~4 % at 100 in the paper; the
        // EU-cloud vantage sees a bit less).
        assert!(at(100) < 0.12);
        let render = r.render();
        assert!(render.contains("Toplist size"));
        assert!(render.contains('%'));
    }

    #[test]
    fn earlier_snapshot_has_lower_share() {
        let study = Study::quick();
        let may20 = fig5_at(&study, Day::from_ymd(2020, 5, 15));
        let jan19 = fig5_at(&study, Day::from_ymd(2019, 1, 15));
        let idx = may20.curve.sizes.iter().position(|&s| s == 10_000).unwrap();
        assert!(
            jan19.curve.total_share(idx) < may20.curve.total_share(idx),
            "{} !< {}",
            jan19.curve.total_share(idx),
            may20.curve.total_share(idx)
        );
    }
}

/// [`fig5`] with telemetry: records a run report named `fig5`.
pub fn fig5_reported(study: &Study) -> Fig5Result {
    super::run_reported(study, "fig5", || fig5(study))
}
