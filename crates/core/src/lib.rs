//! # consent-core
//!
//! The public facade of the consent-observatory: a reproduction of
//! "Measuring the Emergence of Consent Management on the Web" (Hils,
//! Woods & Böhme, IMC 2020) over a deterministic synthetic web.
//!
//! Create a [`Study`] (scale + seed), then call the experiment harnesses
//! in [`experiments`] — one per paper table/figure:
//!
//! ```
//! use consent_core::{Study, experiments};
//! let study = Study::quick();
//! let fig9 = experiments::fig9::fig9_with_hours(&study, 48);
//! assert!(fig9.min_clicks >= 7); // the paper's "7 clicks to opt out"
//! println!("{}", fig9.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod study;

pub use study::{Study, StudyConfig};
