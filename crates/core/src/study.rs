//! The `Study`: one configured reproduction of the paper.
//!
//! A `Study` owns a synthetic [`World`] and exposes one method per paper
//! table/figure (see [`crate::experiments`]). Everything is deterministic
//! in the root seed; `Study::quick()` shrinks the scale parameters for
//! tests and examples while `StudyConfig::default()` is the full
//! paper-scale configuration used by the benches.

use consent_telemetry::RunReport;
use consent_util::{date::known, Day, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::sync::Mutex;

/// Scale and seed parameters of a study.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Root seed; all randomness derives from it.
    pub seed: u64,
    /// Ranked sites in the synthetic web (paper: Tranco 1M).
    pub n_sites: u32,
    /// Toplist size for the Table 1 campaign (paper: 10 000).
    pub toplist_size: usize,
    /// Social-feed volume per day (the paper's 161M captures over 2.5
    /// years average far higher; this trades runtime for statistical
    /// resolution).
    pub feed_urls_per_day: usize,
    /// First day of the social-feed window.
    pub window_start: Day,
    /// Last day (exclusive) of the social-feed window.
    pub window_end: Day,
    /// Sites sampled per rank stratum for the Figure 5 census sweep.
    pub fig5_stratum_sample: u32,
}

impl Default for StudyConfig {
    fn default() -> StudyConfig {
        StudyConfig {
            seed: 2020,
            n_sites: 1_000_000,
            toplist_size: 10_000,
            feed_urls_per_day: 1_000,
            window_start: known::observation_start(),
            window_end: known::observation_end(),
            fig5_stratum_sample: 2_000,
        }
    }
}

impl StudyConfig {
    /// A reduced configuration for fast tests and the quickstart example.
    pub fn quick() -> StudyConfig {
        StudyConfig {
            seed: 2020,
            n_sites: 50_000,
            toplist_size: 1_500,
            feed_urls_per_day: 400,
            window_start: Day::from_ymd(2019, 10, 1),
            window_end: Day::from_ymd(2020, 6, 1),
            fig5_stratum_sample: 400,
        }
    }
}

/// A configured study over one synthetic world.
pub struct Study {
    config: StudyConfig,
    world: World,
    seed: SeedTree,
    reports: Mutex<Vec<RunReport>>,
}

impl Study {
    /// Create a study.
    pub fn new(config: StudyConfig) -> Study {
        let world = World::new(WorldConfig {
            n_sites: config.n_sites,
            seed: config.seed,
            adoption: AdoptionConfig::default(),
        });
        let seed = SeedTree::new(config.seed).child("study");
        Study {
            config,
            world,
            seed,
            reports: Mutex::new(Vec::new()),
        }
    }

    /// A reduced-scale study for tests and examples.
    pub fn quick() -> Study {
        Study::new(StudyConfig::quick())
    }

    /// The configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The synthetic web under measurement.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The study-level seed node.
    pub fn seed(&self) -> SeedTree {
        self.seed
    }

    /// Record a telemetry run report (the `*_reported` experiment
    /// wrappers call this).
    pub fn record_report(&self, report: RunReport) {
        self.reports
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(report);
    }

    /// All run reports recorded so far, in execution order.
    pub fn reports(&self) -> Vec<RunReport> {
        self.reports
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Aggregate table over every recorded run report — the study's
    /// analogue of the paper's Table 1 quality columns.
    pub fn report_summary(&self) -> String {
        consent_telemetry::summary_table(&self.reports())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_builds() {
        let s = Study::quick();
        assert_eq!(s.world().n_sites(), 50_000);
        assert_eq!(s.config().toplist_size, 1_500);
        assert!(s.config().window_start < s.config().window_end);
    }

    #[test]
    fn default_config_is_paper_scale() {
        let c = StudyConfig::default();
        assert_eq!(c.n_sites, 1_000_000);
        assert_eq!(c.toplist_size, 10_000);
        assert_eq!(c.window_start, Day::from_ymd(2018, 3, 1));
        assert_eq!(c.window_end, Day::from_ymd(2020, 9, 30));
    }

    #[test]
    fn same_seed_same_world() {
        let a = Study::new(StudyConfig::quick());
        let b = Study::new(StudyConfig::quick());
        assert_eq!(a.world().profile(42).domain, b.world().profile(42).domain);
        assert_eq!(a.seed(), b.seed());
    }
}
