//! Minimal JSON document model, parser, and serializer.
//!
//! The IAB Global Vendor List is published as JSON
//! (`https://vendorlist.consensu.org/vXXX/vendor-list.json`), and the paper
//! downloads all 215 published versions. To model that wire format without
//! pulling a JSON crate outside the approved dependency set, this module
//! implements the subset of RFC 8259 we need: all value types, string
//! escapes (including `\uXXXX` with surrogate pairs), and both compact and
//! pretty serialization. Numbers are stored as `f64`, which is lossless for
//! every integer appearing in GVL documents (vendor ids < 2^53).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Objects use a [`BTreeMap`] so serialization is deterministic — important
/// because the integration tests assert byte-identical output for identical
/// seeds.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with deterministically-ordered keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from an iterator of key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Object(pairs.into_iter().collect())
    }

    /// Build an array from an iterator of values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Integer constructor (exact for |n| < 2^53).
    pub fn int(n: i64) -> Json {
        Json::Number(n as f64)
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// Member lookup on objects; `None` for other value types.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Index into arrays; `None` for other value types.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Array(v) => v.get(idx),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u32`, if it is a non-negative integral number.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a map, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Serialize without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }

    /// Parse a JSON document. The entire input must be consumed (modulo
    /// trailing whitespace).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Error produced by [`Json::parse`], with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
        self.depth -= 1;
        Ok(Json::Object(map))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
        self.depth -= 1;
        Ok(Json::Array(items))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require \uXXXX low surrogate.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("expected low surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy the full sequence verbatim.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 start byte")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, level: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Number(n) => write_number(out, *n),
        Json::String(s) => write_string(out, s),
        Json::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; serialize as null like most lenient encoders.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Number(-50.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parse_containers() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("d"));
        assert_eq!(v.get("a").unwrap().at(1).unwrap().as_u32(), Some(2));
        assert_eq!(
            v.get("a").unwrap().at(2).unwrap().get("b"),
            Some(&Json::Null)
        );
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::object([]));
    }

    #[test]
    fn parse_escapes() {
        let v = Json::parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
        // Surrogate pair for U+1F600.
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        // Raw UTF-8 passes through.
        let v = Json::parse("\"köln 😀\"").unwrap();
        assert_eq!(v.as_str(), Some("köln 😀"));
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "01",
            "1.",
            "\"\\x\"",
            "\"\u{1}\"",
            "[1]2",
            "nulll",
            r#""\ud83d""#,
            r#"{"a" 1}"#,
        ] {
            assert!(Json::parse(bad).is_err(), "should fail: {bad:?}");
        }
    }

    #[test]
    fn serialize_compact_and_pretty() {
        let v = Json::object([
            ("b".into(), Json::int(2)),
            ("a".into(), Json::array([Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.to_compact(), r#"{"a":[true,null],"b":2}"#);
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n  \"a\": ["));
        // Pretty output reparses to the same value.
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(Json::Number(3.0).to_compact(), "3");
        assert_eq!(Json::Number(3.5).to_compact(), "3.5");
        assert_eq!(Json::Number(-0.25).to_compact(), "-0.25");
        assert_eq!(Json::Number(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn roundtrip_deep() {
        let src = r#"{"vendors":[{"id":1,"name":"Vendor \"One\"","purposeIds":[1,2,3],"legIntPurposeIds":[],"featureIds":[2],"policyUrl":"https://example.com/p"}],"vendorListVersion":215}"#;
        let v = Json::parse(src).unwrap();
        let again = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(300) + &"]".repeat(300);
        assert!(Json::parse(&deep).is_err());
    }
}
