//! # consent-util
//!
//! Foundation utilities for the consent-observatory workspace: civil-date
//! arithmetic ([`date`]), a minimal JSON codec ([`json`]) for the IAB
//! Global Vendor List wire format, deterministic seed derivation ([`rng`]),
//! CRC-32 checksums for durable checkpoints ([`crc32()`]), and plain-text
//! table rendering ([`table`]).
//!
//! These exist in-repo (rather than as external crates) to keep the
//! workspace within its approved dependency set; see DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod date;
pub mod json;
pub mod rng;
pub mod table;

pub use crc32::crc32;
pub use date::{Day, SimInstant};
pub use json::Json;
pub use rng::SeedTree;
