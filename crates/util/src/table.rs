//! Plain-text table rendering for experiment output.
//!
//! Every experiment harness in `consent-core` prints its result in the same
//! row/column layout the paper uses. This module provides a small,
//! dependency-free text-table builder with column alignment, so benches and
//! examples produce readable, diffable output.

use std::fmt;

/// Column alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left (for numbers).
    Right,
}

/// A text table with a header row and aligned columns.
///
/// ```
/// use consent_util::table::{Table, Align};
/// let mut t = Table::new(vec!["CMP".into(), "Count".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["OneTrust".into(), "414".into()]);
/// t.row(vec!["Quantcast".into(), "233".into()]);
/// let s = t.to_string();
/// assert!(s.contains("OneTrust"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
    title: Option<String>,
}

impl Table {
    /// Create a table with the given header.
    pub fn new(header: Vec<String>) -> Table {
        let n = header.len();
        Table {
            header,
            rows: Vec::new(),
            aligns: vec![Align::Left; n],
            title: None,
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(cols: &[&str]) -> Table {
        Table::new(cols.iter().map(|c| (*c).to_owned()).collect())
    }

    /// Set a title printed above the table.
    pub fn title(&mut self, t: impl Into<String>) -> &mut Table {
        self.title = Some(t.into());
        self
    }

    /// Set the alignment of column `idx`.
    pub fn align(&mut self, idx: usize, a: Align) -> &mut Table {
        if idx < self.aligns.len() {
            self.aligns[idx] = a;
        }
        self
    }

    /// Right-align every column except the first (the common layout for
    /// label + numbers tables).
    pub fn numeric(&mut self) -> &mut Table {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Append a data row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Table {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Append a row built from `Display` values.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) -> &mut Table {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        if let Some(t) = &self.title {
            writeln!(f, "{t}")?;
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate().take(ncols) {
                if i > 0 {
                    write!(f, "  ")?;
                }
                let pad = widths[i].saturating_sub(cell.chars().count());
                match self.aligns[i] {
                    Align::Left => {
                        write!(f, "{cell}")?;
                        if i + 1 < ncols {
                            write!(f, "{}", " ".repeat(pad))?;
                        }
                    }
                    Align::Right => write!(f, "{}{cell}", " ".repeat(pad))?,
                }
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Format a fraction as a percentage with one decimal, e.g. `0.123 -> "12.3%"`.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Format a count with thousands separators, e.g. `1234567 -> "1,234,567"`.
pub fn thousands(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::with_columns(&["CMP", "US", "EU"]);
        t.numeric();
        t.row_display(&["OneTrust", "341", "368"]);
        t.row_display(&["Quantcast", "173", "207"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("CMP"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers are right-aligned in their columns.
        assert!(lines[2].ends_with("368"));
        assert!(lines[3].ends_with("207"));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::with_columns(&["a", "b"]);
        t.row(vec!["only-one".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.len(), 2);
        let s = t.to_string();
        assert!(!s.contains('3'));
    }

    #[test]
    fn title_is_printed() {
        let mut t = Table::with_columns(&["x"]);
        t.title("Table 1: CMP occurrence");
        t.row(vec!["y".into()]);
        assert!(t.to_string().starts_with("Table 1: CMP occurrence\n"));
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(pct(1.0), "100.0%");
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1,000");
        assert_eq!(thousands(161_214_215), "161,214,215");
    }
}
