//! Civil-date arithmetic on a compact day number.
//!
//! The longitudinal analyses in the paper (CMP adoption over time, GVL
//! version history, interpolation with a 30-day fade-out) all operate at
//! day granularity. We represent a date as the number of days since the
//! Unix epoch (1970-01-01), wrapped in the [`Day`] newtype, and convert
//! to and from civil dates using Howard Hinnant's algorithms, which are
//! exact over the entire `i32` year range relevant to us.
//!
//! No external date crate is used; see DESIGN.md ("Dependencies").

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::str::FromStr;

/// A civil date, stored as days since 1970-01-01 (can be negative).
///
/// `Day` is `Copy`, totally ordered, and supports integer-like arithmetic
/// with day counts, which makes it convenient as a key in time series.
///
/// ```
/// use consent_util::date::Day;
/// let gdpr = Day::from_ymd(2018, 5, 25);
/// let ccpa = Day::from_ymd(2020, 1, 1);
/// assert!(gdpr < ccpa);
/// assert_eq!(ccpa - gdpr, 586);
/// assert_eq!(gdpr.to_string(), "2018-05-25");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Day(pub i32);

/// A civil (year, month, day) triple produced by [`Day::ymd`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CivilDate {
    /// Gregorian year.
    pub year: i32,
    /// 1-based month (1 = January).
    pub month: u8,
    /// 1-based day of month.
    pub day: u8,
}

impl Day {
    /// The Unix epoch, 1970-01-01.
    pub const EPOCH: Day = Day(0);

    /// Construct from a civil date. Panics on out-of-range month/day in
    /// debug builds; values are otherwise normalized arithmetically.
    pub fn from_ymd(year: i32, month: u8, day: u8) -> Day {
        debug_assert!((1..=12).contains(&month), "month out of range: {month}");
        debug_assert!((1..=31).contains(&day), "day of month out of range: {day}");
        // Hinnant's days_from_civil.
        let y = i64::from(year) - i64::from(month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = i64::from(month);
        let d = i64::from(day);
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        Day((era * 146097 + doe - 719468) as i32)
    }

    /// Decompose into a civil date (inverse of [`Day::from_ymd`]).
    pub fn ymd(self) -> CivilDate {
        // Hinnant's civil_from_days.
        let z = i64::from(self.0) + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
        CivilDate {
            year: (y + i64::from(m <= 2)) as i32,
            month: m as u8,
            day: d as u8,
        }
    }

    /// Year component of the civil date.
    pub fn year(self) -> i32 {
        self.ymd().year
    }

    /// Month component (1-based) of the civil date.
    pub fn month(self) -> u8 {
        self.ymd().month
    }

    /// Day-of-month component (1-based) of the civil date.
    pub fn day_of_month(self) -> u8 {
        self.ymd().day
    }

    /// Day of week, with 0 = Monday … 6 = Sunday (ISO numbering minus one).
    pub fn weekday(self) -> u8 {
        // 1970-01-01 was a Thursday (ISO weekday 4, i.e. index 3).
        (self.0 + 3).rem_euclid(7) as u8
    }

    /// The first day of this date's month.
    pub fn first_of_month(self) -> Day {
        let c = self.ymd();
        Day::from_ymd(c.year, c.month, 1)
    }

    /// The first day of the *next* month.
    pub fn first_of_next_month(self) -> Day {
        let c = self.ymd();
        if c.month == 12 {
            Day::from_ymd(c.year + 1, 1, 1)
        } else {
            Day::from_ymd(c.year, c.month + 1, 1)
        }
    }

    /// Number of days in this date's month.
    pub fn days_in_month(self) -> u8 {
        (self.first_of_next_month() - self.first_of_month()) as u8
    }

    /// True if this date's year is a leap year.
    pub fn is_leap_year(self) -> bool {
        let y = self.year();
        (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
    }

    /// Saturating addition of a day count.
    pub fn saturating_add(self, days: i32) -> Day {
        Day(self.0.saturating_add(days))
    }

    /// Iterate every day in `[self, end)` (empty if `end <= self`).
    pub fn days_until(self, end: Day) -> DayRange {
        DayRange {
            next: self,
            end: end.max(self),
        }
    }

    /// Midpoint between two days (rounds toward the earlier day).
    pub fn midpoint(self, other: Day) -> Day {
        Day(self.0 + (other.0 - self.0) / 2)
    }
}

/// Iterator over a half-open day interval; see [`Day::days_until`].
#[derive(Clone, Debug)]
pub struct DayRange {
    next: Day,
    end: Day,
}

impl Iterator for DayRange {
    type Item = Day;

    fn next(&mut self) -> Option<Day> {
        if self.next < self.end {
            let d = self.next;
            self.next.0 += 1;
            Some(d)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end.0 - self.next.0) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for DayRange {}

impl Add<i32> for Day {
    type Output = Day;
    fn add(self, rhs: i32) -> Day {
        Day(self.0 + rhs)
    }
}

impl AddAssign<i32> for Day {
    fn add_assign(&mut self, rhs: i32) {
        self.0 += rhs;
    }
}

impl Sub<i32> for Day {
    type Output = Day;
    fn sub(self, rhs: i32) -> Day {
        Day(self.0 - rhs)
    }
}

impl SubAssign<i32> for Day {
    fn sub_assign(&mut self, rhs: i32) {
        self.0 -= rhs;
    }
}

impl Sub<Day> for Day {
    type Output = i32;
    fn sub(self, rhs: Day) -> i32 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = self.ymd();
        write!(f, "{:04}-{:02}-{:02}", c.year, c.month, c.day)
    }
}

impl fmt::Debug for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Day({self})")
    }
}

/// Error returned when parsing an ISO `YYYY-MM-DD` string fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDayError {
    input: String,
}

impl fmt::Display for ParseDayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ISO date {:?}, expected YYYY-MM-DD", self.input)
    }
}

impl std::error::Error for ParseDayError {}

impl FromStr for Day {
    type Err = ParseDayError;

    fn from_str(s: &str) -> Result<Day, ParseDayError> {
        let err = || ParseDayError {
            input: s.to_owned(),
        };
        let mut parts = s.splitn(3, '-');
        let year: i32 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let month: u8 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u8 = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if !(1..=12).contains(&month) || day < 1 {
            return Err(err());
        }
        let d = Day::from_ymd(year, month, day);
        if d.day_of_month() != day {
            // e.g. 2020-02-31 normalizes to a different day-of-month.
            return Err(err());
        }
        Ok(d)
    }
}

/// Milliseconds of simulated time inside a single page load or dialog
/// interaction. `SimInstant` is unrelated to wall-clock time; instant 0 is
/// whatever event the owning simulation defines as its origin (typically
/// navigation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct SimInstant(pub u64);

impl SimInstant {
    /// Origin of the owning simulation's timeline.
    pub const ZERO: SimInstant = SimInstant(0);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> SimInstant {
        SimInstant(secs * 1000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> SimInstant {
        SimInstant(ms)
    }

    /// Milliseconds since the origin.
    pub fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the origin.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration elapsed since `earlier`; saturates at zero.
    pub fn since(self, earlier: SimInstant) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimInstant {
    type Output = SimInstant;
    fn add(self, ms: u64) -> SimInstant {
        SimInstant(self.0 + ms)
    }
}

impl AddAssign<u64> for SimInstant {
    fn add_assign(&mut self, ms: u64) {
        self.0 += ms;
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// Key dates from the paper's observation window, used across the
/// experiment harnesses and the synthetic-web generator.
pub mod known {
    use super::Day;

    /// Start of the Netograph record used in the paper (March 2018).
    pub fn observation_start() -> Day {
        Day::from_ymd(2018, 3, 1)
    }

    /// End of the observation window (September 2020).
    pub fn observation_end() -> Day {
        Day::from_ymd(2020, 9, 30)
    }

    /// GDPR came into effect.
    pub fn gdpr_effective() -> Day {
        Day::from_ymd(2018, 5, 25)
    }

    /// CCPA came into effect.
    pub fn ccpa_effective() -> Day {
        Day::from_ymd(2020, 1, 1)
    }

    /// CCPA enforcement began.
    pub fn ccpa_enforcement() -> Day {
        Day::from_ymd(2020, 7, 1)
    }

    /// Snapshot date for Table 1 / Figure 5 (May 2020).
    pub fn may_2020_snapshot() -> Day {
        Day::from_ymd(2020, 5, 15)
    }

    /// Snapshot date for Table A.3 (January 2020).
    pub fn jan_2020_snapshot() -> Day {
        Day::from_ymd(2020, 1, 15)
    }

    /// Snapshot date for Figure A.4 (January 2019).
    pub fn jan_2019_snapshot() -> Day {
        Day::from_ymd(2019, 1, 15)
    }

    /// Snapshot date for Figure A.6 companion (September 2020).
    pub fn sep_2020_snapshot() -> Day {
        Day::from_ymd(2020, 9, 15)
    }

    /// LiveRamp's CMP launch (December 2019).
    pub fn liveramp_launch() -> Day {
        Day::from_ymd(2019, 12, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(
            Day::EPOCH.ymd(),
            CivilDate {
                year: 1970,
                month: 1,
                day: 1
            }
        );
    }

    #[test]
    fn roundtrip_sample_dates() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2000, 2, 29),
            (2018, 5, 25),
            (2020, 1, 1),
            (2020, 12, 31),
            (1999, 12, 31),
            (2400, 2, 29),
            (1900, 3, 1),
        ] {
            let day = Day::from_ymd(y, m, d);
            let c = day.ymd();
            assert_eq!((c.year, c.month, c.day), (y, m, d));
        }
    }

    #[test]
    fn known_day_numbers() {
        // Verified against `date -d @0` style references.
        assert_eq!(Day::from_ymd(1970, 1, 2).0, 1);
        assert_eq!(Day::from_ymd(1969, 12, 31).0, -1);
        assert_eq!(Day::from_ymd(2000, 1, 1).0, 10957);
        assert_eq!(Day::from_ymd(2020, 1, 1).0, 18262);
    }

    #[test]
    fn weekday_known_values() {
        // 2018-05-25 (GDPR day) was a Friday => index 4.
        assert_eq!(known::gdpr_effective().weekday(), 4);
        // 1970-01-01 was a Thursday => index 3.
        assert_eq!(Day::EPOCH.weekday(), 3);
        // 2020-01-01 was a Wednesday => index 2.
        assert_eq!(known::ccpa_effective().weekday(), 2);
    }

    #[test]
    fn month_boundaries() {
        let d = Day::from_ymd(2020, 2, 14);
        assert_eq!(d.first_of_month(), Day::from_ymd(2020, 2, 1));
        assert_eq!(d.first_of_next_month(), Day::from_ymd(2020, 3, 1));
        assert_eq!(d.days_in_month(), 29);
        assert!(d.is_leap_year());
        let d = Day::from_ymd(2019, 12, 14);
        assert_eq!(d.first_of_next_month(), Day::from_ymd(2020, 1, 1));
        assert_eq!(d.days_in_month(), 31);
        assert!(!d.is_leap_year());
    }

    #[test]
    fn display_and_parse() {
        let d = Day::from_ymd(2018, 5, 25);
        assert_eq!(d.to_string(), "2018-05-25");
        assert_eq!("2018-05-25".parse::<Day>().unwrap(), d);
        assert!("2018-13-01".parse::<Day>().is_err());
        assert!("2018-02-30".parse::<Day>().is_err());
        assert!("oops".parse::<Day>().is_err());
        assert!("2018-05".parse::<Day>().is_err());
    }

    #[test]
    fn range_iteration() {
        let a = Day::from_ymd(2020, 1, 30);
        let b = Day::from_ymd(2020, 2, 2);
        let days: Vec<String> = a.days_until(b).map(|d| d.to_string()).collect();
        assert_eq!(days, ["2020-01-30", "2020-01-31", "2020-02-01"]);
        assert_eq!(b.days_until(a).count(), 0);
        assert_eq!(a.days_until(b).len(), 3);
    }

    #[test]
    fn arithmetic() {
        let d = Day::from_ymd(2020, 2, 28);
        assert_eq!((d + 1).to_string(), "2020-02-29");
        assert_eq!((d + 2).to_string(), "2020-03-01");
        assert_eq!((d - 28).to_string(), "2020-01-31");
        assert_eq!(Day::from_ymd(2020, 3, 1) - d, 2);
        let mut m = d;
        m += 2;
        m -= 1;
        assert_eq!(m.to_string(), "2020-02-29");
        assert_eq!(d.midpoint(d + 10), d + 5);
    }

    #[test]
    fn sim_instant_basics() {
        let t = SimInstant::from_secs(3) + 250;
        assert_eq!(t.as_millis(), 3250);
        assert_eq!(t.as_secs_f64(), 3.25);
        assert_eq!(t.since(SimInstant::from_millis(3000)), 250);
        assert_eq!(SimInstant::from_millis(10).since(t), 0);
        assert_eq!(t.to_string(), "3.250s");
    }
}
