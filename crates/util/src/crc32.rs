//! CRC-32 (IEEE 802.3 polynomial, reflected) checksums.
//!
//! Used by `consent-checkpoint` to validate per-section payload integrity
//! in durable campaign checkpoints. Implemented in-repo (table-driven,
//! std-only) to keep the workspace within its approved dependency set.

/// Reflected IEEE 802.3 polynomial (the one used by zip, gzip, PNG).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table computed at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 hasher.
///
/// ```
/// use consent_util::crc32::Crc32;
/// let mut h = Crc32::new();
/// h.update(b"123456789");
/// assert_eq!(h.finish(), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Finalize and return the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_vector() {
        // The canonical CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = b"#consent-campaign-state v3\npairs_done=12\n".to_vec();
        let base_crc = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base_crc, "flip at byte {i} bit {bit}");
            }
        }
    }
}
