//! Deterministic seed derivation.
//!
//! Every stochastic subsystem in the simulator (web generator, crawler
//! feed, user model, …) must be independently reproducible: re-running one
//! subsystem with the same top-level seed must not perturb another. We
//! achieve this by deriving child seeds from a `(seed, label)` pair with a
//! splittable hash, rather than sharing one RNG stream.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent child seeds from a root seed and string labels.
///
/// ```
/// use consent_util::rng::SeedTree;
/// let root = SeedTree::new(42);
/// let a = root.child("crawler").rng();
/// let b = root.child("webgraph").child("domain:1234").rng();
/// // a and b are statistically independent and fully reproducible.
/// # let _ = (a, b);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedTree {
    state: u64,
}

impl SeedTree {
    /// Root of the tree.
    pub fn new(seed: u64) -> SeedTree {
        SeedTree {
            state: splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derive a child node labelled by an arbitrary string.
    pub fn child(&self, label: &str) -> SeedTree {
        let mut h = self.state;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b).wrapping_mul(0x100_0000_01B3));
        }
        SeedTree {
            state: splitmix64(h),
        }
    }

    /// Derive a child node labelled by an integer index (cheaper than
    /// formatting the index into a string).
    pub fn child_idx(&self, idx: u64) -> SeedTree {
        SeedTree {
            state: splitmix64(self.state ^ splitmix64(idx.wrapping_add(0xA5A5_A5A5))),
        }
    }

    /// The 64-bit seed value at this node.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// A fresh [`StdRng`] seeded from this node.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.state)
    }

    /// A uniformly-distributed `f64` in `[0, 1)` derived from this node
    /// without constructing an RNG — useful for per-entity static draws.
    pub fn unit_f64(&self) -> f64 {
        // 53 high bits => uniform in [0, 1).
        (self.state >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// SplitMix64 step — the standard avalanche mixer used to seed PRNGs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn children_are_distinct() {
        let root = SeedTree::new(1);
        let a = root.child("a").seed();
        let b = root.child("b").seed();
        let ab = root.child("ab").seed();
        assert_ne!(a, b);
        assert_ne!(a, ab);
        assert_ne!(b, ab);
        // Label concatenation is not associative with child chaining.
        assert_ne!(root.child("a").child("b").seed(), ab);
    }

    #[test]
    fn deterministic() {
        let x = SeedTree::new(7).child("feed").child_idx(33).seed();
        let y = SeedTree::new(7).child("feed").child_idx(33).seed();
        assert_eq!(x, y);
        let mut r1 = SeedTree::new(7).child("feed").rng();
        let mut r2 = SeedTree::new(7).child("feed").rng();
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn roots_differ() {
        assert_ne!(SeedTree::new(1).seed(), SeedTree::new(2).seed());
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..1000 {
            let u = SeedTree::new(3).child_idx(i).unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_f64_roughly_uniform() {
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|i| SeedTree::new(9).child_idx(i).unit_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }
}
