//! Table 1 / Table A.3 regenerator: prints the reproduced tables once,
//! then benchmarks the toplist campaign.

use consent_core::{experiments, Study};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let study = Study::quick();

    // Print the reproduced rows (the deliverable the paper reports).
    let may = experiments::table1::table1(&study);
    println!("\n{}", may.render());
    let jan = experiments::table1::table_a3(&study);
    println!("{}", jan.render());
    println!(
        "Paper reference (May 2020, top 10k): OneTrust 341/368/403/412/412/414, \
         Quantcast 173/207/225/229/230/233, coverage 79%→100%\n"
    );

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("campaign_6_vantages", |b| {
        b.iter(|| experiments::table1::table1(&study))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
