//! Figure 6 (adoption over time) and Figure 4 (switching) regenerator,
//! plus the interpolation ablation from DESIGN.md: the paper's
//! interpolate+fade-out reconstruction vs naive last-observation-carried-
//! forward, which overcounts near the right censor boundary.

use consent_core::{experiments, Study};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let study = Study::quick();
    let r = experiments::fig6::fig6(&study);
    println!("\n{}", r.render());
    println!("{}", r.render_switching());
    println!(
        "Paper reference: <1% of the 10k in Feb 2018 rising to ~10% by Sep 2020, \
         doubling Jun18→Jun19→Jun20; Cookiebot loses ~10x what it gains.\n"
    );

    // Ablation: LOCF (no fade-out) vs the paper's estimator at the
    // right-censored window end.
    let end = study.config().window_end - 1;
    let timelines = consent_analysis::build_timelines(&r.db, None);
    let faded = timelines
        .values()
        .filter(|t| t.cmp_on(end).is_some())
        .count();
    let locf = timelines
        .values()
        .filter(|t| {
            t.observations
                .iter()
                .rev()
                .find(|o| o.day <= end)
                .is_some_and(|o| o.cmp.is_some())
        })
        .count();
    println!(
        "Ablation (right-censor handling at {end}): fade-out estimator = {faded} domains, \
         naive LOCF = {locf} domains (LOCF overcounts by {:.1}%)\n",
        (locf as f64 / faded.max(1) as f64 - 1.0) * 100.0
    );

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("timeline_reconstruction", |b| {
        b.iter(|| consent_analysis::build_timelines(&r.db, None))
    });
    g.bench_function("adoption_series_monthly", |b| {
        b.iter(|| {
            consent_analysis::adoption_series(
                &timelines,
                study.config().window_start,
                study.config().window_end - 1,
                30,
            )
        })
    });
    g.bench_function("switch_matrix", |b| {
        b.iter(|| consent_analysis::switch_matrix(&timelines))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
