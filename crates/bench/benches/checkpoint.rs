//! Checkpoint write / open / salvage latency.
//!
//! Times the crash-safe store's three operations over a small but
//! realistic campaign state. The authoritative trajectory numbers come
//! from the JSON entry point (`cargo run -p consent-bench --release`,
//! see BENCHMARKS.md); this bench exists so `cargo bench -p
//! consent-bench` shows the same shape interactively. The salvage case
//! times the full corrupt-and-recover cycle (the vendored criterion has
//! no batched setup), so read it relative to `write`, not in isolation.

use consent_bench::CheckpointBench;
use consent_checkpoint::CheckpointStore;
use consent_crawler::{recover_state, state_sections};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "consent-criterion-ckpt-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn corrupt_meta_byte(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).expect("read checkpoint");
    let marker = b"#end-header\n";
    let start = bytes
        .windows(marker.len())
        .position(|w| w == marker)
        .expect("checkpoint has a header terminator")
        + marker.len();
    bytes[start + 1] ^= 0x01;
    std::fs::write(path, &bytes).expect("write corrupted checkpoint");
}

fn checkpoint_durability(c: &mut Criterion) {
    let state = CheckpointBench {
        n_sites: 1_000,
        domains: 40,
        ..CheckpointBench::default()
    }
    .build_state();
    let sections = state_sections(&state, "");

    let mut group = c.benchmark_group("checkpoint");
    group.sample_size(20);

    let write_dir = tmp_dir();
    let write_store = CheckpointStore::open(&write_dir).expect("open store");
    group.bench_function("write", |b| {
        b.iter(|| write_store.save(black_box(&sections)).expect("save"))
    });

    let open_dir = tmp_dir();
    let open_store = CheckpointStore::open(&open_dir).expect("open store");
    open_store.save(&sections).expect("save");
    group.bench_function("open", |b| {
        b.iter(|| recover_state(black_box(&open_store)).expect("recover"))
    });

    let salvage_dir = tmp_dir();
    let salvage_store = CheckpointStore::open(&salvage_dir).expect("open store");
    salvage_store.save(&sections).expect("save");
    group.bench_function("salvage_cycle", |b| {
        b.iter(|| {
            let g = salvage_store.save(&sections).expect("save");
            corrupt_meta_byte(&salvage_store.path_for(g));
            recover_state(black_box(&salvage_store)).expect("salvage")
        })
    });

    group.finish();
    for dir in [write_dir, open_dir, salvage_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

criterion_group!(benches, checkpoint_durability);
criterion_main!(benches);
