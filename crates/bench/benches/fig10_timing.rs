//! Figure 10 regenerator: the randomized time-to-consent experiment,
//! then benchmarks the full 2 910-visitor simulation + Mann–Whitney.

use consent_core::{experiments, Study};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let study = Study::quick();
    let r = experiments::fig10::fig10(&study);
    println!("\n{}", r.render());
    println!(
        "Paper reference: accept 3.2 s / reject 3.6 s with a direct button \
         (U(1344,279)=166582, z=-2.93, p<0.01); reject 6.7 s without one \
         (z=-11.57, p<0.001); consent rate 83% → 90%.\n"
    );

    let mut g = c.benchmark_group("fig10");
    g.bench_function("field_experiment_2910_visitors", |b| {
        b.iter(|| experiments::fig10::fig10(&study))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
