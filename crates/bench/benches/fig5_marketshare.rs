//! Figure 5 / A.4–A.6 regenerator: cumulative market share by toplist
//! size at three snapshots, then benchmarks the stratified census sweep.

use consent_core::{experiments, Study};
use consent_util::Day;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let study = Study::quick();
    for (label, day) in [
        ("Figure A.4 (January 2019)", Day::from_ymd(2019, 1, 15)),
        ("Figure A.5 (January 2020)", Day::from_ymd(2020, 1, 15)),
        ("Figure 5 (May 2020)", Day::from_ymd(2020, 5, 15)),
    ] {
        let r = experiments::fig5::fig5_at(&study, day);
        println!("\n=== {label} ===\n{}", r.render());
    }
    println!(
        "Paper reference (May 2020): ~4% at top 100, ~13% at top 1k, \
         1.51% cumulative over the top 1M; Quantcast leads the head, \
         OneTrust the 500–50k band.\n"
    );

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("stratified_census_sweep", |b| {
        b.iter(|| experiments::fig5::fig5(&study))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
