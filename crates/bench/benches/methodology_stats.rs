//! §3.4–§3.5 methodology statistics regenerator, then benchmarks the
//! capture-pipeline throughput (the platform's core loop).

use consent_core::{experiments, Study};
use consent_crawler::{FeedConfig, Platform};
use consent_util::Day;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let study = Study::quick();
    let f6 = experiments::fig6::fig6(&study);
    let m = experiments::methodology::methodology(&study, &f6);
    println!("\n{}", m.render());

    let mut g = c.benchmark_group("methodology");
    g.sample_size(10);
    g.bench_function("platform_one_day_2000_urls", |b| {
        let platform = Platform::new(
            study.world(),
            FeedConfig {
                urls_per_day: 2_000,
                ..FeedConfig::default()
            },
            study.seed().child("bench-platform"),
        );
        let day = Day::from_ymd(2020, 5, 10);
        b.iter(|| platform.run(day, day + 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
