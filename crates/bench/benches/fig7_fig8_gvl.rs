//! Figures 7 and 8 regenerator: GVL vendor growth and lawful-basis
//! transitions, then benchmarks history generation and diffing.

use consent_core::{experiments, Study};
use consent_tcf::{diff_history, fig7_series, fig8_series};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let study = Study::quick();
    let r = experiments::fig7_8::gvl_figures(&study);
    println!("\n{}", r.render_fig7());
    println!("{}", r.render_fig8());
    println!(
        "Net toward consent: {:+} (paper: positive — vendors obtain more consent over time)\n",
        r.net_toward_consent()
    );
    println!(
        "Paper reference: sharp vendor-count spike at GDPR, purpose 1 always most \
         popular, ≥1/5 of vendors claim legitimate interest per purpose, \
         activity bursts around GDPR and Mar/Apr 2020.\n"
    );

    let mut g = c.benchmark_group("gvl");
    g.sample_size(10);
    g.bench_function("generate_history", |b| {
        b.iter(|| {
            consent_tcf::generate_history(
                &consent_tcf::HistoryConfig::default(),
                study.seed().child("bench"),
            )
        })
    });
    g.bench_function("diff_history", |b| b.iter(|| diff_history(&r.history)));
    g.bench_function("fig7_series", |b| b.iter(|| fig7_series(&r.history)));
    g.bench_function("fig8_series", |b| {
        let events = diff_history(&r.history);
        b.iter(|| fig8_series(&events))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
