//! Design-choice ablations called out in DESIGN.md:
//!
//! 1. eTLD+1 normalization vs raw-hostname counting (the 11% redirect
//!    rate makes seed-domain counting imprecise, §3.2).
//! 2. Hostname-only fingerprints vs the full rule ladder (§3.5's
//!    robustness/precision trade-off).
//! 3. Consent-string range vs bitfield encoding (the TCF's own size
//!    trade-off).
//! 4. Tranco Dowdall vs Borda aggregation.

use consent_fingerprint::{Detector, Screening};
use consent_httpsim::{CaptureOptions, Engine, Vantage};
use consent_psl::PublicSuffixList;
use consent_tcf::{ConsentString, VendorEncoding};
use consent_toplist::{default_providers, AggregationRule, Toplist};
use consent_util::{Day, SeedTree};
use consent_webgraph::{Reachability, World, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn world() -> World {
    World::new(WorldConfig {
        n_sites: 20_000,
        seed: 42,
        ..WorldConfig::default()
    })
}

fn ablation_psl(c: &mut Criterion) {
    let psl = PublicSuffixList::embedded();
    let hosts: Vec<String> = (1..=5_000u32)
        .map(|i| format!("www.sub{i}.example{}.co.uk", i % 97))
        .collect();
    let mut g = c.benchmark_group("ablation_psl");
    g.bench_function("etld1_normalization", |b| {
        b.iter(|| {
            hosts
                .iter()
                .filter_map(|h| psl.registrable_domain(h))
                .count()
        })
    });
    g.bench_function("raw_hostname_counting", |b| {
        b.iter(|| hosts.iter().map(String::len).sum::<usize>())
    });
    g.finish();
}

fn ablation_detector(c: &mut Criterion) {
    let w = world();
    let engine = Engine::new(&w, SeedTree::new(1));
    let day = Day::from_ymd(2020, 5, 15);
    let vantage = Vantage::table1_columns()[3];
    let captures: Vec<_> = (1..=1_500u32)
        .filter_map(|r| {
            let p = w.profile(r);
            (p.reachability == Reachability::Ok).then(|| {
                (
                    p.cmp_on(day),
                    engine.capture(
                        &format!("https://{}/", p.domain),
                        day,
                        vantage,
                        CaptureOptions { collect_dom: true },
                    ),
                )
            })
        })
        .collect();

    // Report precision/recall per rule tier before timing.
    for (label, det) in [
        ("hostname-only (tier 3)", Detector::hostname_only()),
        ("hostname+url (tier 2+)", Detector::with_min_specificity(2)),
        (
            "all rules incl. text (tier 0+)",
            Detector::with_min_specificity(0),
        ),
    ] {
        let mut s = Screening::default();
        for (truth, cap) in &captures {
            s.record(*truth, &det.detect(cap));
        }
        println!(
            "{label}: {} rules, precision {:.3}, recall {:.3}",
            det.active_rules(),
            s.precision(),
            s.recall()
        );
    }
    println!();

    let mut g = c.benchmark_group("ablation_detector");
    for (name, det) in [
        ("hostname_only", Detector::hostname_only()),
        ("full_ruleset", Detector::with_min_specificity(0)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                captures
                    .iter()
                    .map(|(_, cap)| det.detect(cap).len())
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

fn ablation_consent_encoding(c: &mut Criterion) {
    // Sparse (reject-most) and dense (accept-all) consent sets: the
    // range encoding wins on both extremes, the bitfield in between.
    let sparse = {
        let mut s = ConsentString::new(10, 215, 600);
        s.vendor_consents = (1..=600).filter(|i| i % 50 == 0).collect();
        s
    };
    let dense =
        ConsentString::new(10, 215, 600).accept_all(consent_tcf::purposes::all_purpose_ids());
    let alternating = {
        let mut s = ConsentString::new(10, 215, 600);
        s.vendor_consents = (1..=600).filter(|i| i % 2 == 0).collect();
        s
    };
    for (label, cs) in [
        ("sparse", &sparse),
        ("accept_all", &dense),
        ("alternating", &alternating),
    ] {
        println!(
            "{label}: bitfield {} chars, range {} chars, auto {} chars",
            cs.encode(VendorEncoding::BitField).len(),
            cs.encode(VendorEncoding::Range).len(),
            cs.encode(VendorEncoding::Auto).len()
        );
    }
    println!();

    let mut g = c.benchmark_group("ablation_consent_encoding");
    g.bench_function("encode_bitfield", |b| {
        b.iter(|| alternating.encode(VendorEncoding::BitField))
    });
    g.bench_function("encode_range", |b| {
        b.iter(|| sparse.encode(VendorEncoding::Range))
    });
    g.bench_function("decode", |b| {
        let s = dense.encode(VendorEncoding::Auto);
        b.iter(|| ConsentString::decode(&s).unwrap())
    });
    g.finish();
}

fn ablation_toplist_rule(c: &mut Criterion) {
    let ground_truth: Vec<String> = (0..5_000).map(|i| format!("site{i:05}.com")).collect();
    let providers = default_providers(&ground_truth, SeedTree::new(9));
    for rule in [AggregationRule::Dowdall, AggregationRule::Borda] {
        let t = Toplist::aggregate(&providers, rule);
        let recovered = ground_truth[..100]
            .iter()
            .filter(|d| t.rank_of(d).is_some_and(|r| r <= 200))
            .count();
        println!("{rule:?}: true top-100 recovered in aggregated top-200: {recovered}/100");
    }
    println!();

    let mut g = c.benchmark_group("ablation_toplist");
    g.sample_size(10);
    g.bench_function("dowdall", |b| {
        b.iter(|| Toplist::aggregate(&providers, AggregationRule::Dowdall))
    });
    g.bench_function("borda", |b| {
        b.iter(|| Toplist::aggregate(&providers, AggregationRule::Borda))
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_psl,
    ablation_detector,
    ablation_consent_encoding,
    ablation_toplist_rule
);
criterion_main!(benches);
