//! Figure 9 regenerator: the TrustArc opt-out cost, then benchmarks the
//! probe harness.

use consent_core::{experiments, Study};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let study = Study::quick();
    let r = experiments::fig9::fig9(&study);
    println!("\n{}", r.render());
    println!(
        "Paper reference: ≥7 clicks and ~34 s to opt out; +279 requests to 25 \
         domains; +1.2 MB / 5.8 MB compressed/uncompressed.\n"
    );

    let mut g = c.benchmark_group("fig9");
    g.bench_function("two_weeks_of_hourly_probes", |b| {
        b.iter(|| experiments::fig9::fig9(&study))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
