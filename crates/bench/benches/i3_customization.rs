//! Item I3 regenerator: publisher customization shares, then benchmarks
//! the DOM classification pass.

use consent_core::{experiments, Study};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let study = Study::quick();
    let t1 = experiments::table1::table1(&study);
    let r = experiments::i3::i3_customization(&t1);
    println!("\n{}", r.render());
    println!(
        "Paper reference: OneTrust 61% conventional banner / 2.4% opt-out button / \
         5.5% script banner / 7.5% footer link; Quantcast 55% direct reject, 13% \
         free-form wording; TrustArc 7% instant / 12% multi-partner opt-out; \
         ~8% of sites use CMP APIs with custom dialogs.\n"
    );

    let mut g = c.benchmark_group("i3");
    g.sample_size(10);
    g.bench_function("classify_campaign_dom", |b| {
        b.iter(|| experiments::i3::i3_customization(&t1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
