//! Sequential vs parallel campaign throughput.
//!
//! Times one full campaign (domains × vantages pairs) per thread count,
//! on a workload small enough for criterion's sampling loop. The
//! authoritative trajectory numbers come from the JSON entry point
//! (`cargo run -p consent-bench --release`, see BENCHMARKS.md); this
//! bench exists so `cargo bench -p consent-bench` shows the same shape
//! interactively.

use consent_crawler::{build_toplist, run_campaign_parallel, CampaignConfig, ParallelOpts};
use consent_faultsim::FaultProfile;
use consent_httpsim::Vantage;
use consent_util::{Day, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn campaign_throughput(c: &mut Criterion) {
    let world = World::new(WorldConfig {
        n_sites: 1_000,
        seed: 42,
        adoption: AdoptionConfig::default(),
    });
    let list = build_toplist(&world, 40, SeedTree::new(7));
    let day = Day::from_ymd(2020, 5, 15);
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let config = CampaignConfig {
        fault_profile: FaultProfile::none(),
        ..CampaignConfig::default()
    };

    let mut group = c.benchmark_group("campaign_throughput");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let opts = ParallelOpts {
            threads,
            config,
            max_pairs: None,
        };
        group.bench_function(&format!("threads={threads}"), |b| {
            b.iter(|| run_campaign_parallel(&world, &list, day, &vantages, SeedTree::new(9), &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, campaign_throughput);
criterion_main!(benches);
