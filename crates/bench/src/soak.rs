//! The storage-fault soak sweep: durable campaigns under increasing
//! background IO-fault rates, written to `BENCH_soak.json`.
//!
//! For each configured fault rate (per-mille of filesystem operations,
//! injected by a [`FaultyVfs`] with an [`IoFaultPlan::rate`] plan), the
//! sweep runs [`repeats`](SoakBench::repeats) durable campaigns against
//! fresh stores and records, per rate:
//!
//! * throughput (`pairs_per_sec`) and per-pair latency quantiles — the
//!   shared `BENCH_*.json` columns, so the `diff` gate can compare soak
//!   points across commits;
//! * **completion rate**: the fraction of campaigns that finished fully
//!   healthy (`Complete`) versus cleanly degraded (`Degraded`) — a
//!   crash or wedge fails the sweep outright;
//! * **MTTR** (mean time to repair): mean and p95 of the
//!   `supervisor.mttr_us` histogram, the wall time from a checkpoint
//!   save's first injected failure to its eventual success;
//! * the raw fault/retry/skip counters behind those outcomes.
//!
//! The sweep is a correctness check like the other benches: every
//! campaign, at every fault rate, must export byte-identical
//! [`CampaignState`](consent_crawler::CampaignState) bytes — storage
//! faults may cost durability and time, never measurement bytes.

use crate::{bench_document, bench_tmp_dir, BenchRecord};
use consent_checkpoint::{CheckpointStore, DEFAULT_KEEP};
use consent_crawler::{
    build_toplist, run_durable_campaign, BreakerConfig, CampaignConfig, DurableOpts,
    DurableOutcome, DurableRun, RetryPolicy,
};
use consent_faultsim::{CrashPlan, FaultProfile, FaultyVfs, IoFaultPlan};
use consent_httpsim::Vantage;
use consent_util::{Day, Json, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::sync::Arc;
use std::time::Instant;

/// One fault-rate row of the soak sweep: the shared bench columns plus
/// the soak-specific health columns.
#[derive(Clone, Debug, PartialEq)]
pub struct SoakRecord {
    /// The shared `BENCH_*.json` columns (`soak/io_rate=N‰`).
    pub record: BenchRecord,
    /// Injected IO-fault rate in per-mille of filesystem operations.
    pub rate_per_mille: u64,
    /// Campaigns that finished fully healthy.
    pub completed: u64,
    /// Campaigns that finished degraded (loud, never silent).
    pub degraded: u64,
    /// `completed / (completed + degraded)`.
    pub completion_rate: f64,
    /// Checkpoint IO faults observed across the row's campaigns.
    pub io_faults: u64,
    /// Supervised save retries across the row's campaigns.
    pub retries: u64,
    /// Checkpoint writes skipped in memory-only mode.
    pub writes_skipped: u64,
    /// Saves that needed repair (count of `supervisor.mttr_us`).
    pub repairs: u64,
    /// Mean time to repair a failing save, in microseconds.
    pub mttr_us_mean: f64,
    /// 95th-percentile time to repair, in microseconds.
    pub mttr_us_p95: u64,
}

impl SoakRecord {
    /// Serialize as one record object: the shared schema keys plus the
    /// soak columns.
    pub fn to_json(&self) -> Json {
        let Json::Object(mut fields) = self.record.to_json() else {
            unreachable!("BenchRecord::to_json returns an object");
        };
        fields.insert(
            "rate_per_mille".to_string(),
            Json::int(self.rate_per_mille as i64),
        );
        fields.insert("completed".to_string(), Json::int(self.completed as i64));
        fields.insert("degraded".to_string(), Json::int(self.degraded as i64));
        fields.insert(
            "completion_rate".to_string(),
            Json::Number(self.completion_rate),
        );
        fields.insert("io_faults".to_string(), Json::int(self.io_faults as i64));
        fields.insert("retries".to_string(), Json::int(self.retries as i64));
        fields.insert(
            "writes_skipped".to_string(),
            Json::int(self.writes_skipped as i64),
        );
        fields.insert("repairs".to_string(), Json::int(self.repairs as i64));
        fields.insert("mttr_us_mean".to_string(), Json::Number(self.mttr_us_mean));
        fields.insert(
            "mttr_us_p95".to_string(),
            Json::int(self.mttr_us_p95 as i64),
        );
        Json::Object(fields)
    }
}

/// The soak sweep configuration. See the module docs for what is
/// measured.
#[derive(Clone, Debug)]
pub struct SoakBench {
    /// Synthetic world size.
    pub n_sites: u32,
    /// Toplist entries to crawl per campaign.
    pub domains: usize,
    /// Vantage columns.
    pub vantages: Vec<Vantage>,
    /// Worker threads for every campaign.
    pub threads: usize,
    /// IO-fault rates to sweep, in per-mille of filesystem operations
    /// (0 = the fault-free control row).
    pub rates_per_mille: Vec<u64>,
    /// Campaigns per rate (outcome counts aggregate over all of them).
    pub repeats: usize,
    /// Checkpoint cadence of each campaign.
    pub checkpoint_every: u64,
    /// Root seed for world, toplist, campaign, and fault plans.
    pub seed: u64,
}

impl Default for SoakBench {
    /// The CI-sized workload: 120 domains × 2 vantages (240 pairs,
    /// enough for ~12 checkpoint writes per campaign), 4 threads,
    /// rates 0/5/10/50‰, 3 campaigns per rate.
    fn default() -> SoakBench {
        SoakBench {
            n_sites: 2_000,
            domains: 120,
            vantages: vec![Vantage::eu_cloud(), Vantage::us_cloud()],
            threads: 4,
            rates_per_mille: vec![0, 5, 10, 50],
            repeats: 3,
            checkpoint_every: 20,
            seed: 42,
        }
    }
}

impl SoakBench {
    /// Total `(domain, vantage)` pairs each campaign processes.
    pub fn pairs(&self) -> u64 {
        (self.domains * self.vantages.len()) as u64
    }

    /// Run the sweep and return one record per fault rate.
    ///
    /// Uses the **global** telemetry registry (reset + enabled per
    /// rate, reset on exit; not concurrency-safe) and panics if any
    /// campaign crashes, wedges, or exports different bytes than the
    /// fault-free control — a soak run that breaks the supervisor's
    /// guarantees must not produce a trajectory point.
    pub fn run(&self) -> Vec<SoakRecord> {
        let world = World::new(WorldConfig {
            n_sites: self.n_sites,
            seed: self.seed,
            adoption: AdoptionConfig::default(),
        });
        let root = SeedTree::new(self.seed);
        let list = build_toplist(&world, self.domains, root.child("toplist"));
        let campaign_seed = root.child("campaign");
        let repeats = self.repeats.max(1) as u64;

        let run_once = |dir: &std::path::Path, plan: IoFaultPlan| -> DurableRun {
            let store =
                CheckpointStore::with_vfs(dir, DEFAULT_KEEP, Arc::new(FaultyVfs::new(plan)))
                    .expect("open soak store");
            run_durable_campaign(
                &world,
                &list,
                Day::from_ymd(2020, 5, 15),
                &self.vantages,
                campaign_seed,
                &store,
                &DurableOpts {
                    threads: self.threads,
                    config: CampaignConfig {
                        fault_profile: FaultProfile::none(),
                        retry: RetryPolicy::paper(),
                        breaker: BreakerConfig::default(),
                    },
                    checkpoint_every: self.checkpoint_every,
                    crash: CrashPlan::none(),
                    sampler: None,
                    ..DurableOpts::default()
                },
            )
            .expect("durable campaign io")
        };

        // The fault-free control run pins the bytes every faulted
        // campaign must still produce (and warms caches).
        let control_dir = bench_tmp_dir();
        let control = run_once(&control_dir, IoFaultPlan::none());
        assert_eq!(control.outcome, DurableOutcome::Complete);
        let baseline = control.state.export();
        let _ = std::fs::remove_dir_all(&control_dir);

        let mut records = Vec::with_capacity(self.rates_per_mille.len());
        for &pm in &self.rates_per_mille {
            consent_telemetry::reset();
            consent_telemetry::enable();
            let start = Instant::now();
            let (mut pairs, mut completed, mut degraded) = (0u64, 0u64, 0u64);
            for rep in 0..repeats {
                let plan = if pm == 0 {
                    IoFaultPlan::none()
                } else {
                    // A distinct seed per repeat so the faults land on
                    // different operations, same rate.
                    IoFaultPlan::rate(self.seed.wrapping_add(rep), pm)
                };
                let dir = bench_tmp_dir();
                let run = run_once(&dir, plan);
                match &run.outcome {
                    DurableOutcome::Complete => completed += 1,
                    DurableOutcome::Degraded(_) => degraded += 1,
                    DurableOutcome::Crashed { .. } => {
                        panic!("soak campaign crashed at {pm}\u{2030} — refusing to record")
                    }
                }
                assert!(
                    run.state.export() == baseline,
                    "state diverged at {pm}\u{2030} (repeat {rep}) — refusing to record"
                );
                pairs += run.state.pairs_done;
                let _ = std::fs::remove_dir_all(&dir);
            }
            let elapsed = start.elapsed().as_secs_f64().max(1e-9);
            consent_telemetry::disable();
            let pair = consent_telemetry::global()
                .histogram("campaign.pair")
                .summary();
            let mttr = consent_telemetry::global()
                .histogram("supervisor.mttr_us")
                .summary();
            let snap = consent_telemetry::global().snapshot();

            records.push(SoakRecord {
                record: BenchRecord {
                    name: format!("soak/io_rate={pm}permille"),
                    threads: self.threads,
                    pairs,
                    elapsed_secs: elapsed,
                    pairs_per_sec: pairs as f64 / elapsed,
                    p50_us: pair.p50,
                    p95_us: pair.p95,
                },
                rate_per_mille: pm,
                completed,
                degraded,
                completion_rate: completed as f64 / (completed + degraded).max(1) as f64,
                io_faults: snap.counter("checkpoint.io_fault"),
                retries: snap.counter("checkpoint.retry"),
                writes_skipped: snap.counter("checkpoint.skipped"),
                repairs: mttr.count,
                mttr_us_mean: mttr.mean,
                mttr_us_p95: mttr.p95,
            });
        }
        consent_telemetry::reset();
        records
    }

    /// The workload object recorded next to the records.
    pub fn workload(&self) -> Json {
        Json::object([
            ("n_sites".to_string(), Json::int(i64::from(self.n_sites))),
            ("domains".to_string(), Json::int(self.domains as i64)),
            (
                "vantages".to_string(),
                Json::array(self.vantages.iter().map(|v| Json::str(v.label()))),
            ),
            ("pairs".to_string(), Json::int(self.pairs() as i64)),
            ("threads".to_string(), Json::int(self.threads as i64)),
            (
                "rates_per_mille".to_string(),
                Json::array(self.rates_per_mille.iter().map(|&r| Json::int(r as i64))),
            ),
            ("repeats".to_string(), Json::int(self.repeats.max(1) as i64)),
            (
                "checkpoint_every".to_string(),
                Json::int(self.checkpoint_every as i64),
            ),
            ("seed".to_string(), Json::int(self.seed as i64)),
        ])
    }

    /// The complete `BENCH_soak.json` document for `records`.
    pub fn document(&self, records: &[SoakRecord]) -> Json {
        let base: Vec<BenchRecord> = records.iter().map(|r| r.record.clone()).collect();
        let Json::Object(mut doc) = bench_document("storage_soak", self.workload(), &base) else {
            unreachable!("bench_document returns an object");
        };
        // Replace the plain records with the extended soak rows; the
        // shared keys stay, so `diff` keeps working on soak documents.
        doc.insert(
            "records".to_string(),
            Json::array(records.iter().map(SoakRecord::to_json)),
        );
        Json::Object(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SoakBench {
        SoakBench {
            n_sites: 400,
            domains: 8,
            vantages: vec![Vantage::eu_cloud()],
            threads: 2,
            rates_per_mille: vec![0, 200],
            repeats: 2,
            checkpoint_every: 4,
            ..SoakBench::default()
        }
    }

    #[test]
    fn soak_sweep_records_health_columns_per_rate() {
        let bench = small();
        let records = bench.run();
        assert_eq!(records.len(), 2);

        let control = &records[0];
        assert_eq!(control.record.name, "soak/io_rate=0permille");
        assert_eq!(control.completed, 2);
        assert_eq!(control.degraded, 0);
        assert_eq!(control.completion_rate, 1.0);
        assert_eq!(control.io_faults, 0);
        assert_eq!(control.repairs, 0);

        // 20% of filesystem operations failing must hurt (faults
        // observed, repairs attempted) but never crash or change bytes
        // (run() asserts both).
        let hot = &records[1];
        assert_eq!(hot.record.name, "soak/io_rate=200permille");
        assert_eq!(hot.completed + hot.degraded, 2);
        assert!(hot.io_faults > 0, "20% fault rate produced no faults");
        assert!(hot.completion_rate <= 1.0);
        for r in &records {
            assert_eq!(r.record.pairs, bench.pairs() * 2);
            assert!(r.record.pairs_per_sec > 0.0);
        }
    }

    #[test]
    fn soak_document_keeps_diff_compatible_keys() {
        let bench = small();
        let records = bench.run();
        let doc = bench.document(&records);
        let parsed = Json::parse(&doc.to_pretty()).expect("document parses");
        assert_eq!(
            parsed.get("bench").and_then(Json::as_str),
            Some("storage_soak")
        );
        assert_eq!(parsed.get("schema").and_then(Json::as_u32), Some(1));
        let recs = parsed.get("records").and_then(Json::as_array).unwrap();
        assert_eq!(recs.len(), 2);
        for rec in recs {
            // The shared columns the diff gate needs...
            for key in ["name", "pairs_per_sec", "p50_us", "p95_us"] {
                assert!(rec.get(key).is_some(), "missing shared key {key}");
            }
            // ...and the soak-specific health columns.
            for key in [
                "rate_per_mille",
                "completed",
                "degraded",
                "completion_rate",
                "io_faults",
                "retries",
                "writes_skipped",
                "repairs",
                "mttr_us_mean",
                "mttr_us_p95",
            ] {
                assert!(rec.get(key).is_some(), "missing soak key {key}");
            }
        }
        // The diff tool accepts the document end-to-end.
        let diff = crate::diff_documents(&parsed, &parsed).expect("diff accepts soak docs");
        assert!(diff.regressions(crate::DEFAULT_THRESHOLD_PCT).is_empty());
    }
}
