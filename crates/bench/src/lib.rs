pub fn placeholder() {}
