//! # consent-bench
//!
//! The repo's performance harness. Two consumers share this crate:
//!
//! * the criterion benches under `benches/` (paper-table micro-benches
//!   plus `campaign_parallel`, the sequential-vs-parallel throughput
//!   comparison), and
//! * the `cargo run -p consent-bench --release` entry point
//!   (`src/main.rs`), which sweeps the campaign executor across thread
//!   counts and writes `BENCH_campaign.json` — the repo's recorded perf
//!   trajectory (see `BENCHMARKS.md`) — plus the checkpoint durability
//!   sweep ([`CheckpointBench`], `BENCH_checkpoint.json`), the sampler
//!   overhead sweep ([`ObsBench`], `BENCH_obs.json`), the watchdog
//!   overhead sweep ([`WatchBench`], `BENCH_watch.json`), and the
//!   bundle archival sweep ([`BundleBench`], `BENCH_bundle.json`).
//!
//! The JSON schema is deliberately tiny and stable: a document header
//! ([`bench_document`]) plus one [`BenchRecord`] per swept
//! configuration, with throughput (pairs/sec) and per-pair latency
//! quantiles (p50/p95 µs) read from the `campaign.pair` histogram in
//! `consent-telemetry`. The sweep is also a correctness check: it
//! asserts that every thread count exports byte-identical
//! [`CampaignState`] bytes before it
//! reports a single number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod soak;

pub use diff::{
    diff_documents, BenchDiff, DiffRow, DEFAULT_THRESHOLD_P95_PCT, DEFAULT_THRESHOLD_PCT,
};
pub use soak::{SoakBench, SoakRecord};

use consent_analysis::standard_exports;
use consent_checkpoint::CheckpointStore;
use consent_crawler::{
    apply_delta, build_toplist, delta_state_sections, export_db, import_db, pack_campaign_bundle,
    recover_state, replay_campaign_bundle, resume_campaign_parallel, run_campaign_parallel,
    state_sections, ArchiveContext, BreakerConfig, CampaignArtifacts, CampaignConfig,
    CampaignState, DeltaMarks, ExportFn, ParallelOpts, RetryPolicy, SECTION_DB_DELTA,
};
use consent_faultsim::FaultProfile;
use consent_httpsim::Vantage;
use consent_util::{Day, Json, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Version written into the `schema` field of every `BENCH_*.json`.
pub const BENCH_SCHEMA_VERSION: i64 = 1;

/// One measured configuration of a bench sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Record name, e.g. `campaign/threads=4`.
    pub name: String,
    /// Worker threads used (1 = the sequential code path).
    pub threads: usize,
    /// `(domain, vantage)` pairs processed.
    pub pairs: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Throughput: `pairs / elapsed_secs`.
    pub pairs_per_sec: f64,
    /// Median per-pair latency in microseconds, from the
    /// `campaign.pair` histogram.
    pub p50_us: u64,
    /// 95th-percentile per-pair latency in microseconds.
    pub p95_us: u64,
}

impl BenchRecord {
    /// Serialize as one record object of the `BENCH_*.json` schema.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name".to_string(), Json::str(self.name.clone())),
            ("threads".to_string(), Json::int(self.threads as i64)),
            ("pairs".to_string(), Json::int(self.pairs as i64)),
            ("elapsed_secs".to_string(), Json::Number(self.elapsed_secs)),
            (
                "pairs_per_sec".to_string(),
                Json::Number(self.pairs_per_sec),
            ),
            ("p50_us".to_string(), Json::int(self.p50_us as i64)),
            ("p95_us".to_string(), Json::int(self.p95_us as i64)),
        ])
    }
}

/// Assemble a full `BENCH_*.json` document: `bench` (the sweep name),
/// `schema` ([`BENCH_SCHEMA_VERSION`]), the caller's `workload`
/// description, and the `records` array.
pub fn bench_document(bench: &str, workload: Json, records: &[BenchRecord]) -> Json {
    Json::object([
        ("bench".to_string(), Json::str(bench)),
        ("schema".to_string(), Json::int(BENCH_SCHEMA_VERSION)),
        ("workload".to_string(), workload),
        (
            "records".to_string(),
            Json::array(records.iter().map(BenchRecord::to_json)),
        ),
    ])
}

/// The campaign throughput sweep: one synthetic world and toplist,
/// crawled once per entry in [`threads`](CampaignBench::threads).
#[derive(Clone, Debug)]
pub struct CampaignBench {
    /// Synthetic world size.
    pub n_sites: u32,
    /// Toplist entries to crawl.
    pub domains: usize,
    /// Vantage columns (each multiplies the pair count).
    pub vantages: Vec<Vantage>,
    /// Thread counts to sweep, in order.
    pub threads: Vec<usize>,
    /// Chaos profile the campaign runs under.
    pub profile: FaultProfile,
    /// Human label for the profile (`none`, `mild`, `heavy`) recorded in
    /// the workload description.
    pub chaos: String,
    /// Timed campaign repetitions per thread count (throughput and
    /// latency aggregate over all of them).
    pub repeats: usize,
    /// Root seed for world, toplist, and campaign.
    pub seed: u64,
}

impl Default for CampaignBench {
    /// The CI-sized workload: 4 000 sites, 600 domains × 2 vantages
    /// (1 200 pairs), threads 1/2/4/8, no chaos. The pair count is
    /// deliberately large enough that per-pair work dominates the
    /// worker-pool spawn/merge fixed cost — smaller sweeps measure
    /// thread overhead, not the executor.
    fn default() -> CampaignBench {
        CampaignBench {
            n_sites: 4_000,
            domains: 600,
            vantages: vec![Vantage::eu_cloud(), Vantage::us_cloud()],
            threads: vec![1, 2, 4, 8],
            profile: FaultProfile::none(),
            chaos: "none".to_string(),
            repeats: 5,
            seed: 42,
        }
    }
}

impl CampaignBench {
    /// Total `(domain, vantage)` pairs each swept run processes.
    pub fn pairs(&self) -> u64 {
        (self.domains * self.vantages.len()) as u64
    }

    /// Run the sweep and return one record per thread count.
    ///
    /// Uses the **global** telemetry registry: it is reset and enabled
    /// around every configuration so the `campaign.pair` histogram
    /// describes exactly one run, then reset and disabled on exit. Do
    /// not call concurrently with other users of the registry.
    ///
    /// Panics if any configuration's `CampaignState` export differs
    /// from the first one — a bench run that breaks determinism must
    /// not produce a trajectory point.
    pub fn run(&self) -> Vec<BenchRecord> {
        let world = World::new(WorldConfig {
            n_sites: self.n_sites,
            seed: self.seed,
            adoption: AdoptionConfig::default(),
        });
        let root = SeedTree::new(self.seed);
        let list = build_toplist(&world, self.domains, root.child("toplist"));
        let day = Day::from_ymd(2020, 5, 15);
        let config = CampaignConfig {
            fault_profile: self.profile,
            retry: RetryPolicy::paper(),
            breaker: BreakerConfig::default(),
        };

        let repeats = self.repeats.max(1);
        let campaign_seed = root.child("campaign");
        let run_once = |threads: usize| {
            run_campaign_parallel(
                &world,
                &list,
                day,
                &self.vantages,
                campaign_seed,
                &ParallelOpts {
                    threads,
                    config,
                    max_pairs: None,
                },
            )
        };
        // One untimed warm-up so the first timed configuration does not
        // additionally pay for allocator growth and cold caches.
        let warmup = run_once(*self.threads.first().unwrap_or(&1));
        assert!(warmup.complete, "bench campaign did not complete");
        let baseline = warmup.state.export();

        let mut records = Vec::with_capacity(self.threads.len());
        for &threads in &self.threads {
            consent_telemetry::reset();
            consent_telemetry::enable();
            let start = Instant::now();
            let mut pairs = 0u64;
            for _ in 0..repeats {
                let run = run_once(threads);
                pairs += run.state.pairs_done;
                assert!(
                    baseline == run.state.export(),
                    "CampaignState export diverged at {threads} threads — refusing to record"
                );
            }
            let elapsed = start.elapsed().as_secs_f64().max(1e-9);
            consent_telemetry::disable();
            let pair = consent_telemetry::global()
                .histogram("campaign.pair")
                .summary();

            records.push(BenchRecord {
                name: format!("campaign/threads={threads}"),
                threads,
                pairs,
                elapsed_secs: elapsed,
                pairs_per_sec: pairs as f64 / elapsed,
                p50_us: pair.p50,
                p95_us: pair.p95,
            });
        }
        consent_telemetry::reset();
        records
    }

    /// The workload object recorded next to the records.
    pub fn workload(&self) -> Json {
        Json::object([
            ("n_sites".to_string(), Json::int(i64::from(self.n_sites))),
            ("domains".to_string(), Json::int(self.domains as i64)),
            (
                "vantages".to_string(),
                Json::array(self.vantages.iter().map(|v| Json::str(v.label()))),
            ),
            ("pairs".to_string(), Json::int(self.pairs() as i64)),
            ("repeats".to_string(), Json::int(self.repeats.max(1) as i64)),
            ("chaos".to_string(), Json::str(self.chaos.clone())),
            ("seed".to_string(), Json::int(self.seed as i64)),
        ])
    }

    /// The complete `BENCH_campaign.json` document for `records`.
    pub fn document(&self, records: &[BenchRecord]) -> Json {
        bench_document("campaign_throughput", self.workload(), records)
    }
}

/// The checkpoint durability sweep: write / open / salvage throughput
/// of the crash-safe [`CheckpointStore`] over a realistic
/// [`CampaignState`], written to `BENCH_checkpoint.json`.
///
/// Three operations are timed, each over [`repeats`](Self::repeats)
/// iterations:
///
/// * `checkpoint_write` — [`CheckpointStore::save`] of the five-section
///   state snapshot (serialize + CRC + fsync + rename + prune);
/// * `checkpoint_open` — [`recover_state`] of an intact store (scan,
///   CRC validation, state reassembly and import);
/// * `checkpoint_salvage` — [`recover_state`] of a store whose newest
///   generation has a flipped byte in the `meta` section: quarantine,
///   per-section salvage, and meta rebuild from the capture count.
///   Setup (writing and corrupting the doomed generation) is excluded
///   from the timing.
#[derive(Clone, Debug)]
pub struct CheckpointBench {
    /// Synthetic world size for the state-building campaign.
    pub n_sites: u32,
    /// Toplist entries crawled into the benched state.
    pub domains: usize,
    /// Vantage columns of the state-building campaign.
    pub vantages: Vec<Vantage>,
    /// Timed iterations per operation.
    pub repeats: usize,
    /// Root seed for world, toplist, and campaign.
    pub seed: u64,
}

impl Default for CheckpointBench {
    /// The CI-sized workload: a 200-domain × 2-vantage state (400
    /// captures — large enough that serialization and CRC work dominate
    /// the per-call fixed cost), 20 iterations per operation.
    fn default() -> CheckpointBench {
        CheckpointBench {
            n_sites: 2_000,
            domains: 200,
            vantages: vec![Vantage::eu_cloud(), Vantage::us_cloud()],
            repeats: 20,
            seed: 42,
        }
    }
}

impl CheckpointBench {
    /// Crawl the synthetic world once and return the state every
    /// checkpoint operation is measured against.
    pub fn build_state(&self) -> CampaignState {
        let world = World::new(WorldConfig {
            n_sites: self.n_sites,
            seed: self.seed,
            adoption: AdoptionConfig::default(),
        });
        let root = SeedTree::new(self.seed);
        let list = build_toplist(&world, self.domains, root.child("toplist"));
        let run = run_campaign_parallel(
            &world,
            &list,
            Day::from_ymd(2020, 5, 15),
            &self.vantages,
            root.child("campaign"),
            &ParallelOpts {
                threads: 1,
                config: CampaignConfig {
                    fault_profile: FaultProfile::none(),
                    retry: RetryPolicy::paper(),
                    breaker: BreakerConfig::default(),
                },
                max_pairs: None,
            },
        );
        assert!(run.complete, "checkpoint bench campaign did not complete");
        run.state
    }

    fn record(name: &str, pairs: u64, elapsed: Duration, histogram: &str) -> BenchRecord {
        let h = consent_telemetry::global().histogram(histogram).summary();
        let elapsed_secs = elapsed.as_secs_f64().max(1e-9);
        BenchRecord {
            name: name.to_string(),
            threads: 1,
            pairs,
            elapsed_secs,
            pairs_per_sec: pairs as f64 / elapsed_secs,
            p50_us: h.p50,
            p95_us: h.p95,
        }
    }

    /// Run the sweep and return one record per operation.
    ///
    /// Like [`CampaignBench::run`] this uses the **global** telemetry
    /// registry (reset and enabled around every operation, reset on
    /// exit — do not call concurrently with other users), and it is a
    /// correctness check too: it panics if an opened or salvaged state
    /// does not export byte-identical to the one that was saved.
    pub fn run(&self) -> Vec<BenchRecord> {
        let state = self.build_state();
        let baseline = state.export();
        let sections = state_sections(&state, "");
        let pairs = state.pairs_done;
        let repeats = self.repeats.max(1) as u64;
        let dir = bench_tmp_dir();
        let store = CheckpointStore::open(&dir).expect("open checkpoint store");
        let mut records = Vec::with_capacity(3);

        consent_telemetry::reset();
        consent_telemetry::enable();
        let start = Instant::now();
        for _ in 0..repeats {
            store.save(&sections).expect("checkpoint save");
        }
        records.push(Self::record(
            "checkpoint_write",
            pairs * repeats,
            start.elapsed(),
            "checkpoint.write",
        ));

        consent_telemetry::reset();
        consent_telemetry::enable();
        let start = Instant::now();
        for _ in 0..repeats {
            let (back, _, report) = recover_state(&store).expect("recover intact store");
            assert!(report.is_clean(), "intact store produced salvage actions");
            assert!(
                back.export() == baseline,
                "recovered state diverged from the saved one — refusing to record"
            );
        }
        records.push(Self::record(
            "checkpoint_open",
            pairs * repeats,
            start.elapsed(),
            "checkpoint.open",
        ));

        consent_telemetry::reset();
        consent_telemetry::enable();
        let mut salvage_elapsed = Duration::ZERO;
        for _ in 0..repeats {
            let g = store.save(&sections).expect("checkpoint save");
            corrupt_meta_byte(&store.path_for(g));
            let start = Instant::now();
            let (back, _, report) = recover_state(&store).expect("salvage corrupt store");
            salvage_elapsed += start.elapsed();
            assert!(!report.is_clean(), "corrupt generation went unnoticed");
            assert!(
                back.export() == baseline,
                "salvaged state diverged from the saved one — refusing to record"
            );
        }
        records.push(Self::record(
            "checkpoint_salvage",
            pairs * repeats,
            salvage_elapsed,
            "checkpoint.open",
        ));

        consent_telemetry::reset();
        let _ = std::fs::remove_dir_all(&dir);
        records
    }

    /// The delta-vs-full progress sweep: cut cost as the campaign grows.
    ///
    /// At each progress point (10/50/90% of the campaign's pairs) the
    /// campaign is advanced to that cursor, then two checkpoint writes
    /// are timed over [`repeats`](Self::repeats) iterations each:
    ///
    /// * `checkpoint_full/progress=P` — a full five-section snapshot of
    ///   the whole state ([`CheckpointStore::save`]); its cost grows
    ///   with the campaign.
    /// * `checkpoint_delta/progress=P` — the delta sections covering
    ///   only the last checkpoint interval (10% of the pairs), built by
    ///   [`delta_state_sections`] — the exact payload the durable
    ///   driver writes under `CheckpointMode::Delta`; its cost tracks
    ///   the interval, not the campaign.
    ///
    /// The acceptance bar (BENCHMARKS.md): the delta record at 90%
    /// stays within 2× of the one at 10%, while the full record grows
    /// roughly linearly. Like the durability sweep this is also a
    /// correctness check — each progress point's delta is applied onto
    /// the prior snapshot and must reproduce the grown store's export.
    pub fn run_progress_sweep(&self) -> Vec<BenchRecord> {
        let world = World::new(WorldConfig {
            n_sites: self.n_sites,
            seed: self.seed,
            adoption: AdoptionConfig::default(),
        });
        let root = SeedTree::new(self.seed);
        let list = build_toplist(&world, self.domains, root.child("toplist"));
        let day = Day::from_ymd(2020, 5, 15);
        let config = CampaignConfig {
            fault_profile: FaultProfile::none(),
            retry: RetryPolicy::paper(),
            breaker: BreakerConfig::default(),
        };
        let campaign_seed = root.child("campaign");
        let vantages = self.vantages.clone();
        let advance = |state: CampaignState, upto: u64| {
            let done = state.pairs_done;
            resume_campaign_parallel(
                &world,
                &list,
                day,
                &vantages,
                campaign_seed,
                &ParallelOpts {
                    threads: 1,
                    config,
                    max_pairs: Some(upto.saturating_sub(done)),
                },
                state,
            )
            .state
        };
        let total = self.pairs();
        let interval = (total / 10).max(1);
        let repeats = self.repeats.max(1) as u64;
        let mut records = Vec::with_capacity(6);
        let mut state = CampaignState::new();
        for pct in [10u64, 50, 90] {
            let upto = (total * pct / 100).max(interval);
            // Advance to the previous cut, mark, then cover one interval.
            state = advance(state, upto - interval);
            let prior_db = export_db(&state.db);
            let marks = DeltaMarks::capture(&state);
            state = advance(state, upto);

            let dir = bench_tmp_dir();
            let store = CheckpointStore::open(&dir).expect("open checkpoint store");
            consent_telemetry::reset();
            consent_telemetry::enable();
            let start = Instant::now();
            for _ in 0..repeats {
                store
                    .save(&state_sections(&state, ""))
                    .expect("full checkpoint save");
            }
            records.push(Self::record(
                &format!("checkpoint_full/progress={pct}"),
                upto * repeats,
                start.elapsed(),
                "checkpoint.write",
            ));

            consent_telemetry::reset();
            consent_telemetry::enable();
            let start = Instant::now();
            for _ in 0..repeats {
                let sections = delta_state_sections(&state, &marks, 1, 1, "");
                store
                    .save_with_min_retained(&sections, 1)
                    .expect("delta checkpoint save");
            }
            records.push(Self::record(
                &format!("checkpoint_delta/progress={pct}"),
                interval * repeats,
                start.elapsed(),
                "checkpoint.write",
            ));

            // Correctness: the delta applied onto the prior snapshot
            // must reproduce the grown store exactly.
            let delta_body = delta_state_sections(&state, &marks, 1, 1, "")
                .into_iter()
                .find(|s| s.name == SECTION_DB_DELTA)
                .expect("delta sections carry a capture-db delta")
                .body;
            let mut check = import_db(&prior_db).expect("prior snapshot imports");
            apply_delta(&mut check, &delta_body).expect("delta applies");
            assert!(
                export_db(&check) == export_db(&state.db),
                "base+delta diverged from the grown store at progress={pct} — refusing to record"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
        consent_telemetry::reset();
        records
    }

    /// Total `(domain, vantage)` pairs in the benched state.
    pub fn pairs(&self) -> u64 {
        (self.domains * self.vantages.len()) as u64
    }

    /// The workload object recorded next to the records.
    pub fn workload(&self) -> Json {
        Json::object([
            ("n_sites".to_string(), Json::int(i64::from(self.n_sites))),
            ("domains".to_string(), Json::int(self.domains as i64)),
            (
                "vantages".to_string(),
                Json::array(self.vantages.iter().map(|v| Json::str(v.label()))),
            ),
            ("pairs".to_string(), Json::int(self.pairs() as i64)),
            ("repeats".to_string(), Json::int(self.repeats.max(1) as i64)),
            ("seed".to_string(), Json::int(self.seed as i64)),
        ])
    }

    /// The complete `BENCH_checkpoint.json` document for `records`.
    pub fn document(&self, records: &[BenchRecord]) -> Json {
        bench_document("checkpoint_durability", self.workload(), records)
    }
}

/// The sampler-overhead sweep: the same campaign workload run with the
/// flight recorder off, in deterministic logical-tick mode, and with
/// the wall-clock background thread — written to `BENCH_obs.json`.
///
/// The acceptance bar (BENCHMARKS.md): sampler on vs off within 2%
/// pairs/sec on the bench-smoke workload. The sampler's steady-state
/// cost is one registry snapshot per sample (a read-locked walk of
/// every metric), so overhead scales with metric count and sample
/// rate, not with campaign size.
#[derive(Clone, Debug)]
pub struct ObsBench {
    /// Synthetic world size.
    pub n_sites: u32,
    /// Toplist entries to crawl.
    pub domains: usize,
    /// Vantage columns.
    pub vantages: Vec<Vantage>,
    /// Worker threads for every mode (identical so only the sampler
    /// varies).
    pub threads: usize,
    /// Timed campaign repetitions per mode.
    pub repeats: usize,
    /// Wall-mode sampling interval.
    pub interval: Duration,
    /// Root seed for world, toplist, and campaign.
    pub seed: u64,
}

impl Default for ObsBench {
    /// The bench-smoke-sized workload: 600 domains × 2 vantages, 4
    /// threads, 5 repeats, 25 ms wall sampling (aggressive on purpose —
    /// production would sample far less often).
    fn default() -> ObsBench {
        ObsBench {
            n_sites: 4_000,
            domains: 600,
            vantages: vec![Vantage::eu_cloud(), Vantage::us_cloud()],
            threads: 4,
            repeats: 5,
            interval: Duration::from_millis(25),
            seed: 42,
        }
    }
}

impl ObsBench {
    /// Total `(domain, vantage)` pairs each swept run processes.
    pub fn pairs(&self) -> u64 {
        (self.domains * self.vantages.len()) as u64
    }

    /// Run the three modes and return one record each
    /// (`obs/sampler=off|logical|wall`).
    ///
    /// Uses the **global** telemetry registry like the other sweeps
    /// (reset + enabled per mode, reset on exit; not concurrency-safe),
    /// and asserts byte-identical state exports across modes —
    /// observation must not change the observed.
    pub fn run(&self) -> Vec<BenchRecord> {
        use consent_obs::{ObsConfig, SampleMode, Sampler};

        let world = World::new(WorldConfig {
            n_sites: self.n_sites,
            seed: self.seed,
            adoption: AdoptionConfig::default(),
        });
        let root = SeedTree::new(self.seed);
        let list = build_toplist(&world, self.domains, root.child("toplist"));
        let day = Day::from_ymd(2020, 5, 15);
        let config = CampaignConfig {
            fault_profile: FaultProfile::none(),
            retry: RetryPolicy::paper(),
            breaker: BreakerConfig::default(),
        };
        let campaign_seed = root.child("campaign");
        let repeats = self.repeats.max(1);
        let run_once = || {
            run_campaign_parallel(
                &world,
                &list,
                day,
                &self.vantages,
                campaign_seed,
                &ParallelOpts {
                    threads: self.threads,
                    config,
                    max_pairs: None,
                },
            )
        };
        let warmup = run_once();
        assert!(warmup.complete, "obs bench campaign did not complete");
        let baseline = warmup.state.export();

        let mut records = Vec::with_capacity(3);
        for mode in ["off", "logical", "wall"] {
            consent_telemetry::reset();
            consent_telemetry::enable();
            let sampler = match mode {
                "logical" => Some(Sampler::attach(
                    consent_telemetry::global(),
                    ObsConfig::deterministic(),
                )),
                "wall" => Some(Sampler::attach(
                    consent_telemetry::global(),
                    ObsConfig {
                        mode: SampleMode::WallClock {
                            interval: self.interval,
                        },
                        ..ObsConfig::default()
                    },
                )),
                _ => None,
            };
            let handle = sampler.as_ref().map(|s| s.start());
            let start = Instant::now();
            let mut pairs = 0u64;
            for rep in 0..repeats {
                let run = run_once();
                pairs += run.state.pairs_done;
                assert!(
                    baseline == run.state.export(),
                    "state export diverged with sampler={mode} — refusing to record"
                );
                // Logical mode samples at chunk boundaries in the
                // durable driver; here one repeat is the chunk.
                if let Some(s) = &sampler {
                    s.tick_at((rep as u64 + 1) * self.pairs());
                }
            }
            let elapsed = start.elapsed().as_secs_f64().max(1e-9);
            if let Some(h) = handle {
                h.stop();
            }
            consent_telemetry::disable();
            let pair = consent_telemetry::global()
                .histogram("campaign.pair")
                .summary();
            if let Some(s) = &sampler {
                assert!(!s.is_empty(), "sampler={mode} recorded no samples");
            }
            records.push(BenchRecord {
                name: format!("obs/sampler={mode}"),
                threads: self.threads,
                pairs,
                elapsed_secs: elapsed,
                pairs_per_sec: pairs as f64 / elapsed,
                p50_us: pair.p50,
                p95_us: pair.p95,
            });
        }
        consent_telemetry::reset();
        records
    }

    /// Sampler overhead in percent relative to the `off` record:
    /// `(off - on) / off * 100` for each `on` mode.
    pub fn overhead_pct(records: &[BenchRecord]) -> Vec<(String, f64)> {
        let Some(off) = records
            .iter()
            .find(|r| r.name.ends_with("=off"))
            .map(|r| r.pairs_per_sec)
        else {
            return Vec::new();
        };
        records
            .iter()
            .filter(|r| !r.name.ends_with("=off"))
            .map(|r| {
                (
                    r.name.clone(),
                    (off - r.pairs_per_sec) / off.max(1e-12) * 100.0,
                )
            })
            .collect()
    }

    /// The workload object recorded next to the records.
    pub fn workload(&self) -> Json {
        Json::object([
            ("n_sites".to_string(), Json::int(i64::from(self.n_sites))),
            ("domains".to_string(), Json::int(self.domains as i64)),
            (
                "vantages".to_string(),
                Json::array(self.vantages.iter().map(|v| Json::str(v.label()))),
            ),
            ("pairs".to_string(), Json::int(self.pairs() as i64)),
            ("threads".to_string(), Json::int(self.threads as i64)),
            ("repeats".to_string(), Json::int(self.repeats.max(1) as i64)),
            (
                "wall_interval_ms".to_string(),
                Json::int(self.interval.as_millis() as i64),
            ),
            ("seed".to_string(), Json::int(self.seed as i64)),
        ])
    }

    /// The complete `BENCH_obs.json` document for `records`.
    pub fn document(&self, records: &[BenchRecord]) -> Json {
        bench_document("obs_overhead", self.workload(), records)
    }
}

/// The watchdog-overhead sweep: the same campaign workload run with the
/// watch rule engine detached vs attached with the default rule set —
/// written to `BENCH_watch.json`.
///
/// The acceptance bar (BENCHMARKS.md): detectors on vs off within 5%
/// pairs/sec. The watchdog's steady-state cost is one registry snapshot
/// plus integer detector math per staged window, so — like the sampler —
/// overhead scales with metric count and window rate, not campaign size.
#[derive(Clone, Debug)]
pub struct WatchBench {
    /// Synthetic world size.
    pub n_sites: u32,
    /// Toplist entries to crawl.
    pub domains: usize,
    /// Vantage columns.
    pub vantages: Vec<Vantage>,
    /// Worker threads for both modes (identical so only the watchdog
    /// varies).
    pub threads: usize,
    /// Timed campaign repetitions per mode (one staged window each).
    pub repeats: usize,
    /// Root seed for world, toplist, and campaign.
    pub seed: u64,
}

impl Default for WatchBench {
    /// The bench-smoke-sized workload, matching [`ObsBench`] so the two
    /// sweeps are directly comparable.
    fn default() -> WatchBench {
        WatchBench {
            n_sites: 4_000,
            domains: 600,
            vantages: vec![Vantage::eu_cloud(), Vantage::us_cloud()],
            threads: 4,
            repeats: 5,
            seed: 42,
        }
    }
}

impl WatchBench {
    /// Total `(domain, vantage)` pairs each swept run processes.
    pub fn pairs(&self) -> u64 {
        (self.domains * self.vantages.len()) as u64
    }

    /// Run both modes and return one record each
    /// (`watch/detectors=off|on`).
    ///
    /// Uses the **global** telemetry registry like the other sweeps
    /// (reset + enabled per mode, reset on exit; not concurrency-safe),
    /// and asserts byte-identical state exports across modes — the
    /// watchdog must not change what it watches.
    pub fn run(&self) -> Vec<BenchRecord> {
        use consent_watch::Watch;

        let world = World::new(WorldConfig {
            n_sites: self.n_sites,
            seed: self.seed,
            adoption: AdoptionConfig::default(),
        });
        let root = SeedTree::new(self.seed);
        let list = build_toplist(&world, self.domains, root.child("toplist"));
        let day = Day::from_ymd(2020, 5, 15);
        let config = CampaignConfig {
            fault_profile: FaultProfile::none(),
            retry: RetryPolicy::paper(),
            breaker: BreakerConfig::default(),
        };
        let campaign_seed = root.child("campaign");
        let repeats = self.repeats.max(1);
        let run_once = || {
            run_campaign_parallel(
                &world,
                &list,
                day,
                &self.vantages,
                campaign_seed,
                &ParallelOpts {
                    threads: self.threads,
                    config,
                    max_pairs: None,
                },
            )
        };
        let warmup = run_once();
        assert!(warmup.complete, "watch bench campaign did not complete");
        let baseline = warmup.state.export();

        let mut records = Vec::with_capacity(2);
        for mode in ["off", "on"] {
            consent_telemetry::reset();
            consent_telemetry::enable();
            let watch = (mode == "on").then(|| {
                Watch::attach(
                    consent_telemetry::global(),
                    consent_watch::rules::WatchConfig::default_rules(),
                )
            });
            let start = Instant::now();
            let mut pairs = 0u64;
            for rep in 0..repeats {
                let run = run_once();
                pairs += run.state.pairs_done;
                assert!(
                    baseline == run.state.export(),
                    "state export diverged with watch={mode} — refusing to record"
                );
                // The durable driver stages a window per checkpoint cut;
                // here one repeat is the window, always committed.
                if let Some(w) = &watch {
                    w.stage((rep as u64 + 1) * self.pairs());
                    w.commit();
                }
            }
            let elapsed = start.elapsed().as_secs_f64().max(1e-9);
            consent_telemetry::disable();
            let pair = consent_telemetry::global()
                .histogram("campaign.pair")
                .summary();
            records.push(BenchRecord {
                name: format!("watch/detectors={mode}"),
                threads: self.threads,
                pairs,
                elapsed_secs: elapsed,
                pairs_per_sec: pairs as f64 / elapsed,
                p50_us: pair.p50,
                p95_us: pair.p95,
            });
        }
        consent_telemetry::reset();
        records
    }

    /// Watchdog overhead in percent relative to the `off` record.
    pub fn overhead_pct(records: &[BenchRecord]) -> Vec<(String, f64)> {
        ObsBench::overhead_pct(records)
    }

    /// The workload object recorded next to the records.
    pub fn workload(&self) -> Json {
        Json::object([
            ("n_sites".to_string(), Json::int(i64::from(self.n_sites))),
            ("domains".to_string(), Json::int(self.domains as i64)),
            (
                "vantages".to_string(),
                Json::array(self.vantages.iter().map(|v| Json::str(v.label()))),
            ),
            ("pairs".to_string(), Json::int(self.pairs() as i64)),
            ("threads".to_string(), Json::int(self.threads as i64)),
            ("repeats".to_string(), Json::int(self.repeats.max(1) as i64)),
            ("seed".to_string(), Json::int(self.seed as i64)),
        ])
    }

    /// The complete `BENCH_watch.json` document for `records`.
    pub fn document(&self, records: &[BenchRecord]) -> Json {
        bench_document("watch_overhead", self.workload(), records)
    }
}

/// The bundle archival sweep: pack / verify / replay throughput of the
/// content-addressed campaign bundle over a multi-day × multi-vantage
/// workload — written to `BENCH_bundle.json`.
///
/// Three operations are timed, each over [`repeats`](Self::repeats)
/// iterations:
///
/// * `bundle_pack` — [`pack_campaign_bundle`] of the full bundle input
///   (checkpoint sections, split capture artifacts, analysis exports)
///   into a fresh directory, including the post-pack fsck;
/// * `bundle_verify` — [`consent_bundle::verify`] of the packed store
///   (re-read and CRC-check every blob against the manifest);
/// * `bundle_replay` — [`replay_campaign_bundle`] with the
///   [`standard_exports`] provider: re-import the state from the bundle,
///   recompute every analysis document, byte-compare all of them.
///
/// Like the other sweeps it is a correctness gate first: before any
/// number is recorded it packs the same campaign built at every entry
/// of [`threads`](Self::threads) and asserts the serialized manifests
/// are byte-identical, and it asserts the workload's dedup ratio
/// exceeds 1.0 — the multi-day × multi-vantage capture classes
/// (connection failures, 451 blocks, anti-bot interstitials) must
/// actually collapse into shared blobs.
#[derive(Clone, Debug)]
pub struct BundleBench {
    /// Synthetic world size.
    pub n_sites: u32,
    /// Toplist entries crawled into the archived state.
    pub domains: usize,
    /// Vantage columns.
    pub vantages: Vec<Vantage>,
    /// Campaign days archived together (each adds one result to the
    /// bundle's `artifacts` section).
    pub days: Vec<Day>,
    /// Thread counts the byte-identity precheck builds the campaign at.
    pub threads: Vec<usize>,
    /// Timed iterations per operation.
    pub repeats: usize,
    /// Root seed for world, toplist, and campaign.
    pub seed: u64,
    /// Keep the verify/replay bundle at this path instead of a scratch
    /// directory (CI inspects the packed `MANIFEST` afterwards); `None`
    /// packs into temp space and cleans up.
    pub keep_dir: Option<PathBuf>,
}

impl Default for BundleBench {
    /// The CI-sized workload: 48 domains × 2 vantages × 2 days over an
    /// 800-site world — wide enough that the jitter-free capture
    /// classes appear and dedup materializes — with the campaign built
    /// at 1/2/4 threads for the identity precheck.
    fn default() -> BundleBench {
        BundleBench {
            n_sites: 800,
            domains: 48,
            vantages: vec![Vantage::us_cloud(), Vantage::eu_cloud()],
            days: vec![Day::from_ymd(2020, 5, 15), Day::from_ymd(2020, 5, 16)],
            threads: vec![1, 2, 4],
            repeats: 5,
            seed: 42,
            keep_dir: None,
        }
    }
}

/// The outcome of a [`BundleBench`] sweep: the timed records plus the
/// dedup accounting measured during the identity precheck (identical
/// across thread counts by the precheck's own assertion).
#[derive(Clone, Debug)]
pub struct BundleSweep {
    /// One record per operation (`bundle_pack`, `bundle_verify`,
    /// `bundle_replay`).
    pub records: Vec<BenchRecord>,
    /// Manifest dedup ratio (logical / stored bytes); the run already
    /// asserted it exceeds 1.0.
    pub dedup_ratio: f64,
    /// Bytes the bundle represents (sum over references).
    pub logical_bytes: u64,
    /// Bytes actually stored after dedup.
    pub stored_bytes: u64,
}

impl BundleBench {
    /// Total `(domain, vantage)` pairs archived across all days.
    pub fn pairs(&self) -> u64 {
        (self.domains * self.vantages.len() * self.days.len()) as u64
    }

    /// Run the sweep and return its records and dedup accounting
    /// (see [`BundleSweep`]).
    ///
    /// Uses the **global** telemetry registry like the other sweeps
    /// (reset + enabled per operation, reset on exit; not
    /// concurrency-safe). Panics if manifests diverge across thread
    /// counts, if the dedup ratio does not exceed 1.0, or if any replay
    /// is not byte-identical.
    pub fn run(&self) -> BundleSweep {
        let world = World::new(WorldConfig {
            n_sites: self.n_sites,
            seed: self.seed,
            adoption: AdoptionConfig::default(),
        });
        let root = SeedTree::new(self.seed);
        let list = build_toplist(&world, self.domains, root.child("toplist"));
        let config = CampaignConfig {
            fault_profile: FaultProfile::none(),
            retry: RetryPolicy::paper(),
            breaker: BreakerConfig::default(),
        };
        let campaign_seed = root.child("campaign");
        let provider: &ExportFn = &standard_exports;
        let last_day = *self.days.last().expect("bundle bench needs a day");

        let crawl = |threads: usize| {
            let runs: Vec<_> = self
                .days
                .iter()
                .map(|&day| {
                    run_campaign_parallel(
                        &world,
                        &list,
                        day,
                        &self.vantages,
                        campaign_seed,
                        &ParallelOpts {
                            threads,
                            config,
                            max_pairs: None,
                        },
                    )
                })
                .collect();
            assert!(
                runs.iter().all(|r| r.complete),
                "bundle bench campaign did not complete"
            );
            runs
        };
        let ctx = ArchiveContext::from_campaign(last_day, &list, &self.vantages, &campaign_seed);
        let pack_to = |dir: &std::path::Path, runs: &[consent_crawler::CampaignRun]| {
            let artifacts = CampaignArtifacts {
                results: runs.iter().map(|r| &r.result).collect(),
                ..CampaignArtifacts::default()
            };
            pack_campaign_bundle(
                dir,
                &runs[runs.len() - 1].state,
                &ctx,
                &artifacts,
                Some(provider),
            )
        };

        // Identity precheck: every thread count's campaign packs to the
        // exact same manifest (addresses, order, stats — everything).
        let mut baseline_manifest: Option<String> = None;
        let mut runs = Vec::new();
        let mut stats = None;
        for &threads in &self.threads {
            let these = crawl(threads.max(1));
            let dir = bench_tmp_dir();
            let (report, fsck) = pack_to(&dir, &these).expect("bundle pack");
            assert!(fsck.clean(), "fresh pack failed fsck: {}", fsck.render());
            assert!(
                report.dedup_ratio() > 1.0,
                "bundle workload produced no dedup — refusing to record: {}",
                report.summary()
            );
            stats = Some(report.manifest.stats);
            let manifest = report.manifest.serialize();
            match &baseline_manifest {
                None => baseline_manifest = Some(manifest),
                Some(b) => assert!(
                    *b == manifest,
                    "bundle manifest diverged at {threads} threads — refusing to record"
                ),
            }
            let _ = std::fs::remove_dir_all(&dir);
            runs = these;
        }

        let pairs = self.pairs();
        let repeats = self.repeats.max(1) as u64;
        let mut records = Vec::with_capacity(3);

        consent_telemetry::reset();
        consent_telemetry::enable();
        let start = Instant::now();
        for _ in 0..repeats {
            let dir = bench_tmp_dir();
            pack_to(&dir, &runs).expect("bundle pack");
            let _ = std::fs::remove_dir_all(&dir);
        }
        records.push(CheckpointBench::record(
            "bundle_pack",
            pairs * repeats,
            start.elapsed(),
            "bundle.pack",
        ));

        let dir = self.keep_dir.clone().unwrap_or_else(bench_tmp_dir);
        let (_, fsck) = pack_to(&dir, &runs).expect("bundle pack");
        assert!(fsck.clean(), "{}", fsck.render());
        let store = consent_bundle::open_chaos_bundle(&dir).expect("open bundle");

        consent_telemetry::reset();
        consent_telemetry::enable();
        let start = Instant::now();
        for _ in 0..repeats {
            let report = consent_bundle::verify(&store).expect("bundle verify");
            assert!(
                report.clean(),
                "packed bundle failed fsck: {}",
                report.render()
            );
        }
        records.push(CheckpointBench::record(
            "bundle_verify",
            pairs * repeats,
            start.elapsed(),
            "bundle.verify",
        ));

        consent_telemetry::reset();
        consent_telemetry::enable();
        let start = Instant::now();
        for _ in 0..repeats {
            let replay = replay_campaign_bundle(&dir, Some(provider)).expect("bundle replay");
            assert!(
                replay.ok(),
                "replay diverged — refusing to record: {}",
                replay.summary()
            );
        }
        records.push(CheckpointBench::record(
            "bundle_replay",
            pairs * repeats,
            start.elapsed(),
            "bundle.replay",
        ));

        consent_telemetry::reset();
        if self.keep_dir.is_none() {
            let _ = std::fs::remove_dir_all(&dir);
        }
        let stats = stats.expect("bundle bench needs a thread count");
        BundleSweep {
            records,
            dedup_ratio: stats.dedup_ratio(),
            logical_bytes: stats.logical_bytes,
            stored_bytes: stats.stored_bytes,
        }
    }

    /// The workload object recorded next to the records.
    pub fn workload(&self) -> Json {
        Json::object([
            ("n_sites".to_string(), Json::int(i64::from(self.n_sites))),
            ("domains".to_string(), Json::int(self.domains as i64)),
            (
                "vantages".to_string(),
                Json::array(self.vantages.iter().map(|v| Json::str(v.label()))),
            ),
            ("days".to_string(), Json::int(self.days.len() as i64)),
            ("pairs".to_string(), Json::int(self.pairs() as i64)),
            (
                "threads".to_string(),
                Json::array(self.threads.iter().map(|&t| Json::int(t as i64))),
            ),
            ("repeats".to_string(), Json::int(self.repeats.max(1) as i64)),
            ("seed".to_string(), Json::int(self.seed as i64)),
        ])
    }

    /// The complete `BENCH_bundle.json` document for a sweep: the
    /// shared schema plus the measured dedup accounting under
    /// `workload.dedup` (the acceptance gate `ratio > 1.0` is asserted
    /// during [`BundleBench::run`] and recorded here for the CI schema
    /// check).
    pub fn document(&self, sweep: &BundleSweep) -> Json {
        let mut workload = match self.workload() {
            Json::Object(fields) => fields,
            _ => unreachable!("workload is an object"),
        };
        workload.insert(
            "dedup".to_string(),
            Json::object([
                ("ratio".to_string(), Json::Number(sweep.dedup_ratio)),
                (
                    "logical_bytes".to_string(),
                    Json::int(sweep.logical_bytes as i64),
                ),
                (
                    "stored_bytes".to_string(),
                    Json::int(sweep.stored_bytes as i64),
                ),
            ]),
        );
        bench_document("bundle_archive", Json::Object(workload), &sweep.records)
    }
}

/// A unique scratch directory for one bench run.
pub(crate) fn bench_tmp_dir() -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "consent-bench-ckpt-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Flip one byte inside the first section body (`meta`) of a checkpoint
/// file, so that recovery has to quarantine it and rebuild the cursor
/// from the intact `capture-db` section.
fn corrupt_meta_byte(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).expect("read checkpoint");
    let marker = b"#end-header\n";
    let start = bytes
        .windows(marker.len())
        .position(|w| w == marker)
        .expect("checkpoint has a header terminator")
        + marker.len();
    bytes[start + 1] ^= 0x01;
    std::fs::write(path, &bytes).expect("write corrupted checkpoint");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_serializes_every_schema_key() {
        let r = BenchRecord {
            name: "campaign/threads=2".into(),
            threads: 2,
            pairs: 240,
            elapsed_secs: 1.5,
            pairs_per_sec: 160.0,
            p50_us: 900,
            p95_us: 2_400,
        };
        let json = r.to_json();
        for key in [
            "name",
            "threads",
            "pairs",
            "elapsed_secs",
            "pairs_per_sec",
            "p50_us",
            "p95_us",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        assert_eq!(json.get("threads").and_then(Json::as_u32), Some(2));
        assert_eq!(
            json.get("pairs_per_sec").and_then(Json::as_f64),
            Some(160.0)
        );
    }

    #[test]
    fn document_roundtrips_through_the_parser() {
        let bench = CampaignBench {
            n_sites: 400,
            domains: 8,
            vantages: vec![Vantage::us_cloud()],
            threads: vec![1, 2],
            repeats: 2,
            ..CampaignBench::default()
        };
        let records = bench.run();
        assert_eq!(records.len(), 2);
        for r in &records {
            assert_eq!(r.pairs, bench.pairs() * 2);
            assert!(r.pairs_per_sec > 0.0);
            assert!(r.p50_us <= r.p95_us);
        }
        let doc = bench.document(&records);
        let parsed = Json::parse(&doc.to_pretty()).expect("document parses");
        assert_eq!(
            parsed.get("bench").and_then(Json::as_str),
            Some("campaign_throughput")
        );
        assert_eq!(parsed.get("schema").and_then(Json::as_u32), Some(1));
        let workload = parsed.get("workload").expect("workload");
        assert_eq!(workload.get("pairs").and_then(Json::as_u32), Some(8));
        let recs = parsed.get("records").and_then(Json::as_array).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(
            recs[0].get("name").and_then(Json::as_str),
            Some("campaign/threads=1")
        );
    }

    #[test]
    fn progress_sweep_pairs_full_and_delta_records() {
        let bench = CheckpointBench {
            n_sites: 400,
            domains: 20,
            vantages: vec![Vantage::eu_cloud()],
            repeats: 2,
            ..CheckpointBench::default()
        };
        let records = bench.run_progress_sweep();
        assert_eq!(
            records.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            vec![
                "checkpoint_full/progress=10",
                "checkpoint_delta/progress=10",
                "checkpoint_full/progress=50",
                "checkpoint_delta/progress=50",
                "checkpoint_full/progress=90",
                "checkpoint_delta/progress=90",
            ],
        );
        for r in &records {
            assert!(r.pairs > 0);
            assert!(r.elapsed_secs > 0.0);
            assert!(r.p50_us <= r.p95_us);
        }
        // Delta cuts cover one interval regardless of progress; full
        // cuts cover the growing campaign.
        let pairs_of = |name: &str| records.iter().find(|r| r.name == name).unwrap().pairs;
        assert_eq!(
            pairs_of("checkpoint_delta/progress=10"),
            pairs_of("checkpoint_delta/progress=90"),
        );
        assert!(pairs_of("checkpoint_full/progress=90") > pairs_of("checkpoint_full/progress=10"));
    }

    #[test]
    fn bundle_sweep_covers_pack_verify_and_replay() {
        let bench = BundleBench {
            threads: vec![1, 2],
            repeats: 2,
            ..BundleBench::default()
        };
        let sweep = bench.run();
        assert_eq!(
            sweep
                .records
                .iter()
                .map(|r| r.name.as_str())
                .collect::<Vec<_>>(),
            vec!["bundle_pack", "bundle_verify", "bundle_replay"],
        );
        for r in &sweep.records {
            assert_eq!(r.pairs, bench.pairs() * 2);
            assert!(r.pairs_per_sec > 0.0);
            assert!(r.p50_us <= r.p95_us);
        }
        assert!(sweep.dedup_ratio > 1.0);
        assert!(sweep.stored_bytes < sweep.logical_bytes);
        let doc = bench.document(&sweep);
        let parsed = Json::parse(&doc.to_pretty()).expect("document parses");
        assert_eq!(
            parsed.get("bench").and_then(Json::as_str),
            Some("bundle_archive")
        );
        assert_eq!(
            parsed
                .get("workload")
                .and_then(|w| w.get("days"))
                .and_then(Json::as_u32),
            Some(2)
        );
        let ratio = parsed
            .get("workload")
            .and_then(|w| w.get("dedup"))
            .and_then(|d| d.get("ratio"))
            .and_then(Json::as_f64)
            .expect("document records the dedup ratio");
        assert!(ratio > 1.0, "recorded dedup ratio {ratio}");
    }

    #[test]
    fn checkpoint_sweep_covers_write_open_and_salvage() {
        let bench = CheckpointBench {
            n_sites: 400,
            domains: 8,
            vantages: vec![Vantage::eu_cloud()],
            repeats: 2,
            ..CheckpointBench::default()
        };
        let records = bench.run();
        assert_eq!(
            records.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            vec!["checkpoint_write", "checkpoint_open", "checkpoint_salvage"],
        );
        for r in &records {
            assert_eq!(r.pairs, bench.pairs() * 2);
            assert!(r.pairs_per_sec > 0.0);
            assert!(r.p50_us <= r.p95_us);
        }
        let doc = bench.document(&records);
        let parsed = Json::parse(&doc.to_pretty()).expect("document parses");
        assert_eq!(
            parsed.get("bench").and_then(Json::as_str),
            Some("checkpoint_durability")
        );
        assert_eq!(parsed.get("schema").and_then(Json::as_u32), Some(1));
        assert_eq!(
            parsed
                .get("workload")
                .and_then(|w| w.get("pairs"))
                .and_then(Json::as_u32),
            Some(8)
        );
    }
}
