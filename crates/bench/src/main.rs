//! The `BENCH_*.json` entry point and trajectory tooling.
//!
//! Default invocation sweeps the campaign executor across thread
//! counts, the checkpoint store across its write / open / salvage
//! operations plus the delta-vs-full cut cost at 10/50/90% campaign
//! progress, the flight-recorder sampler across its off / logical /
//! wall modes, the watchdog rule engine off vs on, and the campaign
//! bundle across its pack / verify / replay operations, prints human
//! summaries, and writes the machine-readable trajectory points
//! (`BENCH_campaign.json`, `BENCH_checkpoint.json`, `BENCH_obs.json`,
//! `BENCH_watch.json`, `BENCH_bundle.json`). See `BENCHMARKS.md` for
//! the schema.
//!
//! ```text
//! cargo run -p consent-bench --release
//! cargo run -p consent-bench --release -- bundle
//! cargo run -p consent-bench --release -- diff OLD.json NEW.json \
//!     [--threshold PCT] [--threshold-p95 PCT]
//! ```
//!
//! `bundle` runs only the bundle archival sweep — the CI `bundle` job
//! uses it so the pack / verify / replay gate doesn't pay for the full
//! campaign sweep.
//!
//! `diff` compares two trajectory points record-by-record and exits
//! non-zero when any record's pairs/sec regressed by more than the
//! throughput threshold (default 10%) **or** its p95 latency grew by
//! more than the p95 threshold (default 25% — deliberately looser, tail
//! latency on shared runners is noisier). CI uses looser gates still to
//! absorb shared-runner noise.
//!
//! Environment knobs for the sweep (all optional):
//!
//! * `BENCH_SITES`   — synthetic world size (default 4000)
//! * `BENCH_DOMAINS` — toplist entries to crawl (default 600)
//! * `BENCH_THREADS` — comma-separated sweep, e.g. `1,2,4,8` (default)
//! * `BENCH_REPEATS` — timed campaigns per thread count (default 5)
//! * `BENCH_OUT`     — campaign output path (default `BENCH_campaign.json`)
//! * `BENCH_CHECKPOINT_OUT` — checkpoint output path (default
//!   `BENCH_checkpoint.json`)
//! * `BENCH_OBS_OUT` — sampler-overhead output path (default
//!   `BENCH_obs.json`)
//! * `BENCH_WATCH_OUT` — watchdog-overhead output path (default
//!   `BENCH_watch.json`)
//! * `BENCH_BUNDLE_OUT` — bundle-archival output path (default
//!   `BENCH_bundle.json`)
//! * `BENCH_BUNDLE_DIR` — keep the verify/replay bundle at this path
//!   instead of a deleted temp dir (CI fscks the kept `MANIFEST`)
//! * `CONSENT_CHAOS` — chaos profile (`none`/`mild`/`heavy`), as everywhere

use consent_bench::{
    diff_documents, BundleBench, CampaignBench, CheckpointBench, ObsBench, SoakBench, WatchBench,
    DEFAULT_THRESHOLD_P95_PCT, DEFAULT_THRESHOLD_PCT,
};
use consent_faultsim::FaultProfile;
use consent_util::Json;
use std::env;
use std::process::ExitCode;

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().collect();
    if args.get(1).map(String::as_str) == Some("diff") {
        return run_diff(&args[2..]);
    }
    if args.get(1).map(String::as_str) == Some("soak") {
        run_soak();
        return ExitCode::SUCCESS;
    }
    if args.get(1).map(String::as_str) == Some("bundle") {
        run_bundle();
        return ExitCode::SUCCESS;
    }
    run_sweeps();
    ExitCode::SUCCESS
}

/// `consent-bench diff <old.json> <new.json> [--threshold PCT]
/// [--threshold-p95 PCT]`
fn run_diff(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut threshold_p95 = DEFAULT_THRESHOLD_P95_PCT;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a numeric percentage");
                    return ExitCode::from(2);
                };
                threshold = v;
                i += 2;
            }
            "--threshold-p95" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold-p95 needs a numeric percentage");
                    return ExitCode::from(2);
                };
                threshold_p95 = v;
                i += 2;
            }
            p => {
                paths.push(p.to_string());
                i += 1;
            }
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!(
            "usage: consent-bench diff <old.json> <new.json> \
             [--threshold PCT] [--threshold-p95 PCT]"
        );
        return ExitCode::from(2);
    };
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))
    };
    let diff = match load(old_path).and_then(|old| Ok((old, load(new_path)?))) {
        Ok((old, new)) => match diff_documents(&old, &new) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", diff.render(threshold, threshold_p95));
    if diff.regressions(threshold).is_empty() && diff.p95_regressions(threshold_p95).is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_sweeps() {
    let threads: Vec<usize> = env::var("BENCH_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let chaos = env::var("CONSENT_CHAOS").unwrap_or_else(|_| "none".to_string());
    let bench = CampaignBench {
        n_sites: env_parse("BENCH_SITES", 4_000),
        domains: env_parse("BENCH_DOMAINS", 600),
        threads: if threads.is_empty() {
            vec![1, 2, 4, 8]
        } else {
            threads
        },
        profile: FaultProfile::from_env(),
        chaos,
        repeats: env_parse("BENCH_REPEATS", 5),
        ..CampaignBench::default()
    };
    let out = env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_campaign.json".to_string());

    eprintln!(
        "campaign_throughput: {} domains x {} vantages = {} pairs, chaos={}, threads {:?}",
        bench.domains,
        bench.vantages.len(),
        bench.pairs(),
        bench.chaos,
        bench.threads
    );
    let records = bench.run();

    let base = records
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.pairs_per_sec);
    println!(
        "{:<24} {:>12} {:>10} {:>10} {:>9}",
        "bench", "pairs/sec", "p50 µs", "p95 µs", "speedup"
    );
    for r in &records {
        let speedup = base.map_or("-".to_string(), |b| format!("{:.2}x", r.pairs_per_sec / b));
        println!(
            "{:<24} {:>12.1} {:>10} {:>10} {:>9}",
            r.name, r.pairs_per_sec, r.p50_us, r.p95_us, speedup
        );
    }

    let doc = bench.document(&records);
    write_doc(&out, &doc);

    let ckpt = CheckpointBench::default();
    let ckpt_out =
        env::var("BENCH_CHECKPOINT_OUT").unwrap_or_else(|_| "BENCH_checkpoint.json".to_string());
    eprintln!(
        "checkpoint_durability: {} domains x {} vantages, {} repeats per operation",
        ckpt.domains,
        ckpt.vantages.len(),
        ckpt.repeats
    );
    let mut ckpt_records = ckpt.run();
    eprintln!(
        "checkpoint_progress: delta-vs-full cut cost at 10/50/90% of {} pairs",
        ckpt.pairs()
    );
    ckpt_records.extend(ckpt.run_progress_sweep());
    for r in &ckpt_records {
        println!(
            "{:<28} {:>12.1} {:>10} {:>10} {:>9}",
            r.name, r.pairs_per_sec, r.p50_us, r.p95_us, "-"
        );
    }
    let ckpt_doc = ckpt.document(&ckpt_records);
    write_doc(&ckpt_out, &ckpt_doc);

    let obs = ObsBench {
        n_sites: env_parse("BENCH_SITES", 4_000),
        domains: env_parse("BENCH_DOMAINS", 600),
        repeats: env_parse("BENCH_REPEATS", 5),
        ..ObsBench::default()
    };
    let obs_out = env::var("BENCH_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    eprintln!(
        "obs_overhead: {} pairs x {} repeats, sampler off/logical/wall at {} threads",
        obs.pairs(),
        obs.repeats,
        obs.threads
    );
    let obs_records = obs.run();
    for r in &obs_records {
        println!(
            "{:<24} {:>12.1} {:>10} {:>10} {:>9}",
            r.name, r.pairs_per_sec, r.p50_us, r.p95_us, "-"
        );
    }
    for (name, pct) in ObsBench::overhead_pct(&obs_records) {
        println!("{name:<24} overhead vs off: {pct:+.2}%");
    }
    let obs_doc = obs.document(&obs_records);
    write_doc(&obs_out, &obs_doc);

    let watch = WatchBench {
        n_sites: env_parse("BENCH_SITES", 4_000),
        domains: env_parse("BENCH_DOMAINS", 600),
        repeats: env_parse("BENCH_REPEATS", 5),
        ..WatchBench::default()
    };
    let watch_out = env::var("BENCH_WATCH_OUT").unwrap_or_else(|_| "BENCH_watch.json".to_string());
    eprintln!(
        "watch_overhead: {} pairs x {} repeats, detectors off/on at {} threads",
        watch.pairs(),
        watch.repeats,
        watch.threads
    );
    let watch_records = watch.run();
    for r in &watch_records {
        println!(
            "{:<24} {:>12.1} {:>10} {:>10} {:>9}",
            r.name, r.pairs_per_sec, r.p50_us, r.p95_us, "-"
        );
    }
    for (name, pct) in WatchBench::overhead_pct(&watch_records) {
        println!("{name:<24} overhead vs off: {pct:+.2}%");
    }
    write_doc(&watch_out, &watch.document(&watch_records));

    run_bundle();
}

/// The bundle archival sweep — the tail of the default invocation, and
/// the whole of `consent-bench bundle`. `BENCH_BUNDLE_DIR` keeps the
/// verify/replay bundle on disk for post-hoc manifest inspection (the
/// CI `bundle` job re-fscks it from the spec in python).
fn run_bundle() {
    let bundle = BundleBench {
        repeats: env_parse("BENCH_REPEATS", 5),
        keep_dir: env::var("BENCH_BUNDLE_DIR").ok().map(Into::into),
        ..BundleBench::default()
    };
    let bundle_out =
        env::var("BENCH_BUNDLE_OUT").unwrap_or_else(|_| "BENCH_bundle.json".to_string());
    eprintln!(
        "bundle_archive: {} domains x {} vantages x {} days = {} pairs, \
         identity at {:?} threads, {} repeats per operation",
        bundle.domains,
        bundle.vantages.len(),
        bundle.days.len(),
        bundle.pairs(),
        bundle.threads,
        bundle.repeats
    );
    let bundle_sweep = bundle.run();
    for r in &bundle_sweep.records {
        println!(
            "{:<24} {:>12.1} {:>10} {:>10} {:>9}",
            r.name, r.pairs_per_sec, r.p50_us, r.p95_us, "-"
        );
    }
    println!(
        "bundle dedup ratio: {:.3} ({} logical / {} stored bytes)",
        bundle_sweep.dedup_ratio, bundle_sweep.logical_bytes, bundle_sweep.stored_bytes
    );
    if let Some(dir) = &bundle.keep_dir {
        eprintln!("kept bundle at {}", dir.display());
    }
    write_doc(&bundle_out, &bundle.document(&bundle_sweep));
}

/// `consent-bench soak` — the storage-fault soak sweep, written to
/// `BENCH_soak.json` (override with `BENCH_SOAK_OUT`). Rates come from
/// `SOAK_RATES` (comma-separated per-mille, default `0,5,10,50`);
/// `SOAK_REPEATS` campaigns per rate (default 3).
fn run_soak() {
    let rates: Vec<u64> = env::var("SOAK_RATES")
        .unwrap_or_else(|_| "0,5,10,50".to_string())
        .split(',')
        .filter_map(|r| r.trim().parse().ok())
        .collect();
    let bench = SoakBench {
        rates_per_mille: if rates.is_empty() {
            vec![0, 5, 10, 50]
        } else {
            rates
        },
        repeats: env_parse("SOAK_REPEATS", 3),
        ..SoakBench::default()
    };
    let out = env::var("BENCH_SOAK_OUT").unwrap_or_else(|_| "BENCH_soak.json".to_string());
    eprintln!(
        "storage_soak: {} pairs x {} repeats per rate, rates {:?}\u{2030}, {} threads",
        bench.pairs(),
        bench.repeats,
        bench.rates_per_mille,
        bench.threads
    );
    let records = bench.run();
    println!(
        "{:<28} {:>12} {:>10} {:>9} {:>9} {:>12} {:>12}",
        "bench", "pairs/sec", "faults", "retries", "complete", "mttr µs", "mttr p95"
    );
    for r in &records {
        println!(
            "{:<28} {:>12.1} {:>10} {:>9} {:>8.0}% {:>12.0} {:>12}",
            r.record.name,
            r.record.pairs_per_sec,
            r.io_faults,
            r.retries,
            r.completion_rate * 100.0,
            r.mttr_us_mean,
            r.mttr_us_p95
        );
    }
    write_doc(&out, &bench.document(&records));
}

fn write_doc(out: &str, doc: &consent_util::Json) {
    std::fs::write(out, format!("{}\n", doc.to_pretty())).unwrap_or_else(|e| {
        panic!("writing {out}: {e}");
    });
    eprintln!("wrote {out}");
}
