//! The `BENCH_campaign.json` / `BENCH_checkpoint.json` entry point.
//!
//! Sweeps the campaign executor across thread counts on a synthetic
//! workload, then the checkpoint store across its write / open /
//! salvage operations, prints a human summary, and writes the
//! machine-readable trajectory points. See `BENCHMARKS.md` for the
//! schema and how to compare two runs.
//!
//! ```text
//! cargo run -p consent-bench --release
//! ```
//!
//! Environment knobs (all optional):
//!
//! * `BENCH_SITES`   — synthetic world size (default 4000)
//! * `BENCH_DOMAINS` — toplist entries to crawl (default 600)
//! * `BENCH_THREADS` — comma-separated sweep, e.g. `1,2,4,8` (default)
//! * `BENCH_REPEATS` — timed campaigns per thread count (default 5)
//! * `BENCH_OUT`     — campaign output path (default `BENCH_campaign.json`)
//! * `BENCH_CHECKPOINT_OUT` — checkpoint output path (default
//!   `BENCH_checkpoint.json`)
//! * `CONSENT_CHAOS` — chaos profile (`none`/`mild`/`heavy`), as everywhere

use consent_bench::{CampaignBench, CheckpointBench};
use consent_faultsim::FaultProfile;
use std::env;

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let threads: Vec<usize> = env::var("BENCH_THREADS")
        .unwrap_or_else(|_| "1,2,4,8".to_string())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    let chaos = env::var("CONSENT_CHAOS").unwrap_or_else(|_| "none".to_string());
    let bench = CampaignBench {
        n_sites: env_parse("BENCH_SITES", 4_000),
        domains: env_parse("BENCH_DOMAINS", 600),
        threads: if threads.is_empty() {
            vec![1, 2, 4, 8]
        } else {
            threads
        },
        profile: FaultProfile::from_env(),
        chaos,
        repeats: env_parse("BENCH_REPEATS", 5),
        ..CampaignBench::default()
    };
    let out = env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_campaign.json".to_string());

    eprintln!(
        "campaign_throughput: {} domains x {} vantages = {} pairs, chaos={}, threads {:?}",
        bench.domains,
        bench.vantages.len(),
        bench.pairs(),
        bench.chaos,
        bench.threads
    );
    let records = bench.run();

    let base = records
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.pairs_per_sec);
    println!(
        "{:<24} {:>12} {:>10} {:>10} {:>9}",
        "bench", "pairs/sec", "p50 µs", "p95 µs", "speedup"
    );
    for r in &records {
        let speedup = base.map_or("-".to_string(), |b| format!("{:.2}x", r.pairs_per_sec / b));
        println!(
            "{:<24} {:>12.1} {:>10} {:>10} {:>9}",
            r.name, r.pairs_per_sec, r.p50_us, r.p95_us, speedup
        );
    }

    let doc = bench.document(&records);
    write_doc(&out, &doc);

    let ckpt = CheckpointBench::default();
    let ckpt_out =
        env::var("BENCH_CHECKPOINT_OUT").unwrap_or_else(|_| "BENCH_checkpoint.json".to_string());
    eprintln!(
        "checkpoint_durability: {} domains x {} vantages, {} repeats per operation",
        ckpt.domains,
        ckpt.vantages.len(),
        ckpt.repeats
    );
    let ckpt_records = ckpt.run();
    for r in &ckpt_records {
        println!(
            "{:<24} {:>12.1} {:>10} {:>10} {:>9}",
            r.name, r.pairs_per_sec, r.p50_us, r.p95_us, "-"
        );
    }
    let ckpt_doc = ckpt.document(&ckpt_records);
    write_doc(&ckpt_out, &ckpt_doc);
}

fn write_doc(out: &str, doc: &consent_util::Json) {
    std::fs::write(out, format!("{}\n", doc.to_pretty())).unwrap_or_else(|e| {
        panic!("writing {out}: {e}");
    });
    eprintln!("wrote {out}");
}
