//! `consent-bench diff`: compare two `BENCH_*.json` trajectory points.
//!
//! Records are matched by `name`; for each match a delta row reports
//! the throughput change (pairs/sec, percent) and the latency movement
//! (p50/p95 µs). A row whose throughput dropped by more than the
//! throughput threshold — or whose p95 latency *grew* by more than the
//! (looser) p95 threshold — is a **regression**: the CLI exits non-zero
//! so CI can gate on it. Records present in only one document are
//! listed but never gate (a renamed sweep should not hard-fail the
//! build), and a record whose old p95 is zero never p95-gates (there is
//! no baseline to regress from).

use consent_util::table::Table;
use consent_util::Json;

/// Default regression gate: >10% throughput drop fails.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// Default p95 latency gate: >25% growth fails. Deliberately looser
/// than the throughput gate — tail latency on shared runners is far
/// noisier than aggregate throughput.
pub const DEFAULT_THRESHOLD_P95_PCT: f64 = 25.0;

/// One matched record pair (or an unmatched record from either side).
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Record name (`campaign/threads=4`, `checkpoint_write`, …).
    pub name: String,
    /// Old throughput in pairs/sec (`None` if the record is new).
    pub old_pps: Option<f64>,
    /// New throughput in pairs/sec (`None` if the record was removed).
    pub new_pps: Option<f64>,
    /// Throughput change in percent (`None` unless both sides exist).
    pub delta_pct: Option<f64>,
    /// p50 latency µs, old → new.
    pub p50_us: (Option<u64>, Option<u64>),
    /// p95 latency µs, old → new.
    pub p95_us: (Option<u64>, Option<u64>),
}

impl DiffRow {
    /// Does this row regress throughput by more than `threshold_pct`?
    pub fn regresses(&self, threshold_pct: f64) -> bool {
        self.delta_pct.is_some_and(|d| d < -threshold_pct)
    }

    /// p95 latency growth in percent (`None` unless both sides exist
    /// and the old side is non-zero).
    pub fn p95_delta_pct(&self) -> Option<f64> {
        match self.p95_us {
            (Some(old), Some(new)) if old > 0 => {
                Some((new as f64 - old as f64) / old as f64 * 100.0)
            }
            _ => None,
        }
    }

    /// Does this row regress p95 latency by more than
    /// `threshold_p95_pct`? Rows without a usable old-side p95 never
    /// gate.
    pub fn regresses_p95(&self, threshold_p95_pct: f64) -> bool {
        self.p95_delta_pct().is_some_and(|d| d > threshold_p95_pct)
    }
}

/// The outcome of comparing two bench documents.
#[derive(Clone, Debug)]
pub struct BenchDiff {
    /// The `bench` field of the documents (new side wins if they
    /// disagree).
    pub bench: String,
    /// One row per record name seen on either side, in new-document
    /// order with removed records appended.
    pub rows: Vec<DiffRow>,
}

fn parse_records(doc: &Json, side: &str) -> Result<Vec<(String, f64, u64, u64)>, String> {
    let records = doc
        .get("records")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{side}: no `records` array — not a BENCH_*.json document"))?;
    let mut out = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        let name = r
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{side}: record {i} has no `name`"))?;
        let pps = r
            .get("pairs_per_sec")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{side}: record {name:?} has no `pairs_per_sec`"))?;
        let q = |key: &str| r.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        out.push((name.to_string(), pps, q("p50_us"), q("p95_us")));
    }
    Ok(out)
}

/// Compare two parsed `BENCH_*.json` documents.
pub fn diff_documents(old: &Json, new: &Json) -> Result<BenchDiff, String> {
    let old_records = parse_records(old, "old")?;
    let new_records = parse_records(new, "new")?;
    let bench = new
        .get("bench")
        .or_else(|| old.get("bench"))
        .and_then(Json::as_str)
        .unwrap_or("bench")
        .to_string();

    let mut rows = Vec::new();
    for (name, new_pps, new_p50, new_p95) in &new_records {
        let old = old_records.iter().find(|(n, ..)| n == name);
        rows.push(match old {
            Some((_, old_pps, old_p50, old_p95)) => DiffRow {
                name: name.clone(),
                old_pps: Some(*old_pps),
                new_pps: Some(*new_pps),
                delta_pct: Some((new_pps - old_pps) / old_pps.max(1e-12) * 100.0),
                p50_us: (Some(*old_p50), Some(*new_p50)),
                p95_us: (Some(*old_p95), Some(*new_p95)),
            },
            None => DiffRow {
                name: name.clone(),
                old_pps: None,
                new_pps: Some(*new_pps),
                delta_pct: None,
                p50_us: (None, Some(*new_p50)),
                p95_us: (None, Some(*new_p95)),
            },
        });
    }
    for (name, old_pps, old_p50, old_p95) in &old_records {
        if !new_records.iter().any(|(n, ..)| n == name) {
            rows.push(DiffRow {
                name: name.clone(),
                old_pps: Some(*old_pps),
                new_pps: None,
                delta_pct: None,
                p50_us: (Some(*old_p50), None),
                p95_us: (Some(*old_p95), None),
            });
        }
    }
    Ok(BenchDiff { bench, rows })
}

impl BenchDiff {
    /// Rows regressing throughput by more than `threshold_pct`.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.regresses(threshold_pct))
            .collect()
    }

    /// Rows regressing p95 latency by more than `threshold_p95_pct`.
    pub fn p95_regressions(&self, threshold_p95_pct: f64) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.regresses_p95(threshold_p95_pct))
            .collect()
    }

    /// Render the per-row delta table plus a verdict line, gating
    /// throughput at `threshold_pct` and p95 latency at
    /// `threshold_p95_pct`.
    pub fn render(&self, threshold_pct: f64, threshold_p95_pct: f64) -> String {
        let fmt_pps = |v: Option<f64>| v.map_or("-".to_string(), |p| format!("{p:.1}"));
        let fmt_us = |v: Option<u64>| v.map_or("-".to_string(), |u| u.to_string());
        let mut t = Table::with_columns(&[
            "Record", "Old p/s", "New p/s", "Δ%", "p50 µs", "p95 µs", "Verdict",
        ]);
        t.numeric().title(format!("bench diff: {}", self.bench));
        for r in &self.rows {
            let delta = r.delta_pct.map_or("-".to_string(), |d| format!("{d:+.1}%"));
            let verdict = if r.regresses(threshold_pct) {
                "REGRESSION"
            } else if r.regresses_p95(threshold_p95_pct) {
                "P95 REGRESSION"
            } else if r.old_pps.is_none() {
                "new"
            } else if r.new_pps.is_none() {
                "removed"
            } else {
                "ok"
            };
            t.row(vec![
                r.name.clone(),
                fmt_pps(r.old_pps),
                fmt_pps(r.new_pps),
                delta,
                format!("{} → {}", fmt_us(r.p50_us.0), fmt_us(r.p50_us.1)),
                format!("{} → {}", fmt_us(r.p95_us.0), fmt_us(r.p95_us.1)),
                verdict.to_string(),
            ]);
        }
        let mut out = t.to_string();
        let bad = self.regressions(threshold_pct);
        if bad.is_empty() {
            out.push_str(&format!(
                "\nno pairs/sec regression beyond {threshold_pct}%\n"
            ));
        } else {
            out.push_str(&format!(
                "\n{} record(s) regressed pairs/sec by more than {threshold_pct}%:\n",
                bad.len()
            ));
            for r in bad {
                out.push_str(&format!(
                    "  {}: {:.1} → {:.1} ({:+.1}%)\n",
                    r.name,
                    r.old_pps.unwrap_or(0.0),
                    r.new_pps.unwrap_or(0.0),
                    r.delta_pct.unwrap_or(0.0)
                ));
            }
        }
        let bad_p95 = self.p95_regressions(threshold_p95_pct);
        if bad_p95.is_empty() {
            out.push_str(&format!(
                "no p95 latency regression beyond {threshold_p95_pct}%\n"
            ));
        } else {
            out.push_str(&format!(
                "{} record(s) regressed p95 latency by more than {threshold_p95_pct}%:\n",
                bad_p95.len()
            ));
            for r in bad_p95 {
                out.push_str(&format!(
                    "  {}: {} µs → {} µs ({:+.1}%)\n",
                    r.name,
                    r.p95_us.0.unwrap_or(0),
                    r.p95_us.1.unwrap_or(0),
                    r.p95_delta_pct().unwrap_or(0.0)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bench_document, BenchRecord};

    fn record(name: &str, pps: f64) -> BenchRecord {
        record_p95(name, pps, 900)
    }

    fn record_p95(name: &str, pps: f64, p95_us: u64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            threads: 1,
            pairs: 100,
            elapsed_secs: 100.0 / pps,
            pairs_per_sec: pps,
            p50_us: 500,
            p95_us,
        }
    }

    fn doc(records: &[BenchRecord]) -> Json {
        bench_document("campaign_throughput", Json::object([]), records)
    }

    #[test]
    fn matched_rows_compute_delta_and_gate() {
        let old = doc(&[record("a", 100.0), record("b", 200.0)]);
        let new = doc(&[record("a", 95.0), record("b", 150.0)]);
        let diff = diff_documents(&old, &new).unwrap();
        assert_eq!(diff.rows.len(), 2);
        let a = &diff.rows[0];
        assert!((a.delta_pct.unwrap() + 5.0).abs() < 1e-9);
        assert!(!a.regresses(DEFAULT_THRESHOLD_PCT), "-5% is within 10%");
        let b = &diff.rows[1];
        assert!((b.delta_pct.unwrap() + 25.0).abs() < 1e-9);
        assert!(b.regresses(DEFAULT_THRESHOLD_PCT));
        assert_eq!(diff.regressions(DEFAULT_THRESHOLD_PCT).len(), 1);
        // A looser gate passes the same data.
        assert!(diff.regressions(30.0).is_empty());
        let text = diff.render(DEFAULT_THRESHOLD_PCT, DEFAULT_THRESHOLD_P95_PCT);
        assert!(text.contains("REGRESSION"));
        assert!(text.contains("-25.0%"));
    }

    #[test]
    fn p95_growth_gates_independently_of_throughput() {
        let old = doc(&[
            record_p95("steady", 100.0, 800),
            record_p95("tail", 100.0, 800),
        ]);
        let new = doc(&[
            record_p95("steady", 101.0, 900),
            record_p95("tail", 101.0, 1200),
        ]);
        let diff = diff_documents(&old, &new).unwrap();
        // Throughput is flat on both rows — only the p95 gate can trip.
        assert!(diff.regressions(DEFAULT_THRESHOLD_PCT).is_empty());
        let bad = diff.p95_regressions(DEFAULT_THRESHOLD_P95_PCT);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "tail");
        assert!((bad[0].p95_delta_pct().unwrap() - 50.0).abs() < 1e-9);
        let text = diff.render(DEFAULT_THRESHOLD_PCT, DEFAULT_THRESHOLD_P95_PCT);
        assert!(text.contains("P95 REGRESSION"), "{text}");
        assert!(text.contains("800 µs → 1200 µs (+50.0%)"), "{text}");
        // A looser p95 gate passes the same data.
        assert!(diff.p95_regressions(60.0).is_empty());
    }

    #[test]
    fn zero_or_missing_old_p95_never_gates() {
        let old = doc(&[record_p95("a", 100.0, 0)]);
        let new = doc(&[record_p95("a", 100.0, 500), record_p95("fresh", 10.0, 9999)]);
        let diff = diff_documents(&old, &new).unwrap();
        assert!(diff.p95_regressions(DEFAULT_THRESHOLD_P95_PCT).is_empty());
        // Zero old-side and unmatched rows both produce no delta at all.
        assert!(diff.rows.iter().all(|r| r.p95_delta_pct().is_none()));
    }

    #[test]
    fn improvements_and_new_or_removed_records_never_gate() {
        let old = doc(&[record("kept", 100.0), record("gone", 50.0)]);
        let new = doc(&[record("kept", 140.0), record("added", 10.0)]);
        let diff = diff_documents(&old, &new).unwrap();
        assert_eq!(diff.rows.len(), 3);
        assert!(diff.regressions(DEFAULT_THRESHOLD_PCT).is_empty());
        let text = diff.render(DEFAULT_THRESHOLD_PCT, DEFAULT_THRESHOLD_P95_PCT);
        assert!(text.contains("+40.0%"));
        assert!(text.contains("new"));
        assert!(text.contains("removed"));
        assert!(text.contains("no pairs/sec regression"));
        assert!(text.contains("no p95 latency regression"));
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        let err = diff_documents(&Json::object([]), &Json::object([])).unwrap_err();
        assert!(err.contains("old"), "{err}");
        let ok = doc(&[record("a", 1.0)]);
        let bad = Json::object([(
            "records".to_string(),
            Json::array([Json::object([("name".to_string(), Json::str("x"))])]),
        )]);
        let err = diff_documents(&ok, &bad).unwrap_err();
        assert!(err.contains("pairs_per_sec"), "{err}");
    }
}
