//! Table 1 / Table A.3: CMP occurrence by vantage configuration.
//!
//! Counts, for each of the six crawl configurations, how many toplist
//! domains show each CMP, plus the coverage row (each column's total
//! relative to the best column).

use consent_crawler::CampaignResult;
use consent_fingerprint::Detector;
use consent_httpsim::Vantage;
use consent_util::table::{pct, Table};
use consent_webgraph::{Cmp, ALL_CMPS};

/// The computed table.
#[derive(Clone, Debug, PartialEq)]
pub struct VantageTable {
    /// `(vantage, per-CMP domain counts in ALL_CMPS order)`.
    pub columns: Vec<(Vantage, [usize; 6])>,
}

impl VantageTable {
    /// Column total (the Σ row).
    pub fn total(&self, col: usize) -> usize {
        self.columns[col].1.iter().sum()
    }

    /// Coverage of column `col` relative to the best column.
    pub fn coverage(&self, col: usize) -> f64 {
        let best = (0..self.columns.len())
            .map(|i| self.total(i))
            .max()
            .unwrap_or(0);
        if best == 0 {
            0.0
        } else {
            self.total(col) as f64 / best as f64
        }
    }

    /// Count for one CMP in one column.
    pub fn count(&self, col: usize, cmp: Cmp) -> usize {
        self.columns[col].1[ALL_CMPS.iter().position(|&c| c == cmp).expect("known")]
    }

    /// Render in the paper's layout: one row per CMP, Σ and coverage.
    pub fn render(&self, title: &str) -> String {
        let mut header = vec!["CMP".to_owned()];
        header.extend(self.columns.iter().map(|(v, _)| v.label()));
        let mut t = Table::new(header);
        t.numeric().title(title);
        for (i, cmp) in ALL_CMPS.iter().enumerate() {
            let mut row = vec![cmp.name().to_owned()];
            row.extend(self.columns.iter().map(|(_, c)| c[i].to_string()));
            t.row(row);
        }
        let mut sigma = vec!["Σ".to_owned()];
        sigma.extend((0..self.columns.len()).map(|i| self.total(i).to_string()));
        t.row(sigma);
        let mut cov = vec!["Coverage".to_owned()];
        cov.extend((0..self.columns.len()).map(|i| pct(self.coverage(i))));
        t.row(cov);
        t.to_string()
    }
}

/// Compute the table from a campaign result. Each domain is counted once
/// per CMP per column if any of its captures in that column shows the
/// CMP.
pub fn vantage_table(result: &CampaignResult, detector: &Detector) -> VantageTable {
    let columns = result
        .columns
        .iter()
        .map(|(vantage, captures)| {
            let mut counts = [0usize; 6];
            for c in captures {
                let found = detector.detect(&c.capture);
                for cmp in found {
                    counts[ALL_CMPS.iter().position(|&x| x == cmp).expect("known")] += 1;
                }
            }
            (*vantage, counts)
        })
        .collect();
    VantageTable { columns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_crawler::{build_toplist, run_campaign};
    use consent_util::{Day, SeedTree};
    use consent_webgraph::{AdoptionConfig, World, WorldConfig};

    fn table() -> VantageTable {
        let world = World::new(WorldConfig {
            n_sites: 4_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        });
        let list = build_toplist(&world, 800, SeedTree::new(7));
        let result = run_campaign(
            &world,
            &list,
            Day::from_ymd(2020, 5, 15),
            &Vantage::table1_columns(),
            SeedTree::new(9),
        );
        vantage_table(&result, &Detector::hostname_only())
    }

    #[test]
    fn column_ordering_matches_paper() {
        let t = table();
        assert_eq!(t.columns.len(), 6);
        // US cloud ≤ EU cloud ≤ EU university extended.
        assert!(t.total(0) <= t.total(1), "{} vs {}", t.total(0), t.total(1));
        assert!(t.total(1) <= t.total(3), "{} vs {}", t.total(1), t.total(3));
        // Aggressive university timing misses a bit vs extended.
        assert!(t.total(2) <= t.total(3));
        // Language variants are within noise of each other.
        let diff = (t.total(3) as i64 - t.total(5) as i64).abs();
        assert!(diff <= t.total(3) as i64 / 20 + 2, "language diff {diff}");
    }

    #[test]
    fn coverage_row() {
        let t = table();
        let best = (0..6).map(|i| t.coverage(i)).fold(0.0f64, f64::max);
        assert!((best - 1.0).abs() < 1e-9);
        // US cloud coverage is noticeably below 100 % (paper: 79 %).
        assert!(t.coverage(0) < 0.95, "US coverage {}", t.coverage(0));
        assert!(t.coverage(0) > 0.5);
    }

    #[test]
    fn onetrust_is_largest_row() {
        let t = table();
        let col = 3; // EU university extended
        let onetrust = t.count(col, Cmp::OneTrust);
        for cmp in ALL_CMPS.iter().filter(|&&c| c != Cmp::OneTrust) {
            assert!(
                onetrust >= t.count(col, *cmp),
                "OneTrust {} < {} {}",
                onetrust,
                cmp,
                t.count(col, *cmp)
            );
        }
    }

    #[test]
    fn renders_paper_layout() {
        let t = table();
        let s = t.render("Table 1: Occurrence of CMPs (May 2020)");
        assert!(s.contains("OneTrust"));
        assert!(s.contains("Crownpeak"));
        assert!(s.contains('Σ'));
        assert!(s.contains("Coverage"));
        assert!(s.contains('%'));
        assert_eq!(s.lines().count(), 1 + 2 + 6 + 2);
    }
}
