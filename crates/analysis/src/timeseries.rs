//! CMP adoption over time (Figure 6) and switching flows (Figure 4).
//!
//! Both analyses consume the per-domain [`Timeline`]s reconstructed from
//! the capture database, restricted to a toplist membership set, exactly
//! as the paper counts "websites in the Tranco 10k toplist that embed a
//! CMP".

use crate::interpolate::Timeline;
use consent_crawler::CaptureDb;
use consent_util::Day;
use consent_webgraph::{Cmp, ALL_CMPS};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Reconstruct timelines for every domain in the capture DB (optionally
/// restricted to a membership set such as the Tranco 10k).
pub fn build_timelines(
    db: &CaptureDb,
    restrict_to: Option<&HashSet<String>>,
) -> HashMap<String, Timeline> {
    db.iter()
        .filter(|(domain, _)| restrict_to.is_none_or(|s| s.contains(*domain)))
        .map(|(domain, history)| (domain.to_owned(), Timeline::from_history(&history)))
        .collect()
}

/// One point of the Figure 6 series.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdoptionPoint {
    /// The day.
    pub day: Day,
    /// Domains per CMP, in [`ALL_CMPS`] order.
    pub counts: [usize; 6],
}

impl AdoptionPoint {
    /// Total CMP-using domains.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Count for one CMP.
    pub fn count(&self, cmp: Cmp) -> usize {
        self.counts[ALL_CMPS.iter().position(|&c| c == cmp).expect("known cmp")]
    }
}

/// Compute the Figure 6 series: per-CMP domain counts on each sample day.
pub fn adoption_series(
    timelines: &HashMap<String, Timeline>,
    start: Day,
    end: Day,
    step_days: i32,
) -> Vec<AdoptionPoint> {
    assert!(step_days >= 1);
    let mut out = Vec::new();
    let mut day = start;
    while day <= end {
        let mut point = AdoptionPoint {
            day,
            counts: [0; 6],
        };
        for timeline in timelines.values() {
            if let Some(cmp) = timeline.cmp_on(day) {
                point.counts[ALL_CMPS.iter().position(|&c| c == cmp).expect("known")] += 1;
            }
        }
        out.push(point);
        day += step_days;
    }
    out
}

/// The Figure 4 switching-flow matrix.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwitchMatrix {
    /// `flows[(from, to)]` = number of domains that switched.
    pub flows: BTreeMap<(Cmp, Cmp), usize>,
}

impl SwitchMatrix {
    /// Total domains that left `cmp` for another CMP.
    pub fn lost_by(&self, cmp: Cmp) -> usize {
        self.flows
            .iter()
            .filter(|((from, _), _)| *from == cmp)
            .map(|(_, n)| n)
            .sum()
    }

    /// Total domains `cmp` won from other CMPs.
    pub fn gained_by(&self, cmp: Cmp) -> usize {
        self.flows
            .iter()
            .filter(|((_, to), _)| *to == cmp)
            .map(|(_, n)| n)
            .sum()
    }

    /// Net gain (can be negative).
    pub fn net(&self, cmp: Cmp) -> i64 {
        self.gained_by(cmp) as i64 - self.lost_by(cmp) as i64
    }

    /// Total switch events.
    pub fn total(&self) -> usize {
        self.flows.values().sum()
    }
}

/// Extract the switching flows from all timelines.
pub fn switch_matrix(timelines: &HashMap<String, Timeline>) -> SwitchMatrix {
    let mut m = SwitchMatrix::default();
    for timeline in timelines.values() {
        for (_, from, to) in timeline.switches() {
            *m.flows.entry((from, to)).or_insert(0) += 1;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_crawler::{CaptureSummary, CmpSet};
    use consent_httpsim::{CaptureStatus, Location};

    fn cap(domain: &str, day: Day, cmp: Option<Cmp>) -> CaptureSummary {
        CaptureSummary {
            domain: domain.into(),
            day,
            location: Location::EuCloud,
            status: CaptureStatus::Ok,
            cmps: cmp.map_or(CmpSet::empty(), |c| CmpSet::from_iter([c])),
            redirected: false,
            dialog_visible: false,
        }
    }

    fn db() -> CaptureDb {
        let mut db = CaptureDb::new();
        let d = Day::from_ymd(2019, 1, 1);
        // a.com: Quantcast throughout January.
        db.insert(cap("a.com", d, Some(Cmp::Quantcast)));
        db.insert(cap("a.com", d + 30, Some(Cmp::Quantcast)));
        // b.com: Cookiebot, then switches to OneTrust.
        db.insert(cap("b.com", d, Some(Cmp::Cookiebot)));
        db.insert(cap("b.com", d + 20, Some(Cmp::OneTrust)));
        db.insert(cap("b.com", d + 40, Some(Cmp::OneTrust)));
        // c.com: no CMP.
        db.insert(cap("c.com", d + 5, None));
        db
    }

    #[test]
    fn timelines_respect_restriction() {
        let db = db();
        let all = build_timelines(&db, None);
        assert_eq!(all.len(), 3);
        let only: HashSet<String> = ["a.com".to_owned()].into();
        let restricted = build_timelines(&db, Some(&only));
        assert_eq!(restricted.len(), 1);
        assert!(restricted.contains_key("a.com"));
    }

    #[test]
    fn adoption_series_counts() {
        let db = db();
        let timelines = build_timelines(&db, None);
        let d = Day::from_ymd(2019, 1, 1);
        let series = adoption_series(&timelines, d, d + 40, 10);
        assert_eq!(series.len(), 5);
        // Day 0: a=Quantcast, b=Cookiebot.
        assert_eq!(series[0].count(Cmp::Quantcast), 1);
        assert_eq!(series[0].count(Cmp::Cookiebot), 1);
        assert_eq!(series[0].total(), 2);
        // Day 10: a interpolated Quantcast; b gap (boundaries disagree).
        assert_eq!(series[1].count(Cmp::Quantcast), 1);
        assert_eq!(series[1].count(Cmp::Cookiebot), 0);
        // Day 30: b OneTrust (interpolated 20→40), a Quantcast.
        assert_eq!(series[3].count(Cmp::OneTrust), 1);
        assert_eq!(series[3].total(), 2);
    }

    #[test]
    fn switching_matrix() {
        let db = db();
        let timelines = build_timelines(&db, None);
        let m = switch_matrix(&timelines);
        assert_eq!(m.total(), 1);
        assert_eq!(m.flows[&(Cmp::Cookiebot, Cmp::OneTrust)], 1);
        assert_eq!(m.lost_by(Cmp::Cookiebot), 1);
        assert_eq!(m.gained_by(Cmp::OneTrust), 1);
        assert_eq!(m.net(Cmp::Cookiebot), -1);
        assert_eq!(m.net(Cmp::OneTrust), 1);
        assert_eq!(m.net(Cmp::Quantcast), 0);
    }

    #[test]
    #[should_panic]
    fn series_rejects_zero_step() {
        let timelines = HashMap::new();
        adoption_series(&timelines, Day::EPOCH, Day::EPOCH + 1, 0);
    }
}
