//! From sparse captures to daily CMP presence (paper §3.2).
//!
//! The social feed samples domains at irregular intervals, so the paper
//! (1) classifies each observation day by whether the CMP appears in at
//! least a third of that day's captures, (2) interpolates gaps whose two
//! boundary observations agree, and (3) right-censors by fading out a
//! CMP 30 days after the last observation.

use consent_crawler::CaptureSummary;
use consent_util::Day;
use consent_webgraph::Cmp;
use std::collections::BTreeMap;

/// The fade-out horizon for right censoring (§3.2: 30 days).
pub const FADE_OUT_DAYS: i32 = 30;

/// The ≥⅓ share a CMP needs among a day's captures (§3.5 "Subsites").
pub const DAY_SHARE_THRESHOLD: f64 = 1.0 / 3.0;

/// One observation day for a domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DayObservation {
    /// The day.
    pub day: Day,
    /// The CMP classified for this day, if any.
    pub cmp: Option<Cmp>,
    /// Usable captures that day.
    pub captures: u32,
    /// Captures containing the classified CMP.
    pub cmp_captures: u32,
}

impl DayObservation {
    /// Share of the day's captures containing the classified CMP.
    pub fn share(&self) -> f64 {
        if self.captures == 0 {
            0.0
        } else {
            f64::from(self.cmp_captures) / f64::from(self.captures)
        }
    }
}

/// A domain's reconstructed daily CMP timeline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Timeline {
    /// Day-level observations, ascending.
    pub observations: Vec<DayObservation>,
}

impl Timeline {
    /// Classify each observation day of a domain's capture history.
    ///
    /// Only usable captures count. A CMP is assigned to a day when it
    /// appears in at least [`DAY_SHARE_THRESHOLD`] of that day's
    /// captures; if several qualify, the most frequent wins.
    pub fn from_history(history: &[CaptureSummary]) -> Timeline {
        let mut by_day: BTreeMap<Day, Vec<&CaptureSummary>> = BTreeMap::new();
        for c in history {
            // Usable includes degraded (timeout / truncated) captures:
            // a partial request log can still witness a CMP, and §3.5
            // counts the degradation separately in the quality report.
            if c.status.usable() {
                by_day.entry(c.day).or_default().push(c);
            }
        }
        let observations = by_day
            .into_iter()
            .map(|(day, captures)| {
                let total = captures.len() as u32;
                let mut counts: BTreeMap<Cmp, u32> = BTreeMap::new();
                for c in &captures {
                    for cmp in c.cmps.iter() {
                        *counts.entry(cmp).or_insert(0) += 1;
                    }
                }
                let best = counts
                    .into_iter()
                    .max_by_key(|&(_, n)| n)
                    .filter(|&(_, n)| f64::from(n) / f64::from(total) >= DAY_SHARE_THRESHOLD);
                match best {
                    Some((cmp, n)) => DayObservation {
                        day,
                        cmp: Some(cmp),
                        captures: total,
                        cmp_captures: n,
                    },
                    None => DayObservation {
                        day,
                        cmp: None,
                        captures: total,
                        cmp_captures: 0,
                    },
                }
            })
            .collect();
        let timeline = Timeline { observations };
        if consent_telemetry::enabled() {
            // Gap lengths between consecutive observation days — the
            // paper's interpolation operates exactly on these.
            for pair in timeline.observations.windows(2) {
                consent_telemetry::observe("analysis.gap_days", (pair[1].day - pair[0].day) as u64);
            }
        }
        timeline
    }

    /// The CMP presumed active on `day`, applying interpolation and the
    /// 30-day fade-out.
    pub fn cmp_on(&self, day: Day) -> Option<Cmp> {
        // Last observation at or before `day`, and first after.
        let idx = self.observations.partition_point(|o| o.day <= day);
        let before = idx.checked_sub(1).map(|i| &self.observations[i]);
        let after = self.observations.get(idx);
        match (before, after) {
            (None, _) => None, // never observed yet
            (Some(b), _) if b.day == day => b.cmp,
            (Some(b), Some(a)) => {
                // Interpolate only when both boundaries agree (§3.2).
                if b.cmp == a.cmp {
                    if b.cmp.is_some() {
                        consent_telemetry::count("analysis.interpolated_days", 1);
                    }
                    b.cmp
                } else {
                    None
                }
            }
            (Some(b), None) => {
                // Right-censored: fade out after 30 days.
                if day - b.day <= FADE_OUT_DAYS {
                    b.cmp
                } else {
                    None
                }
            }
        }
    }

    /// Days on which the domain was observed.
    pub fn observed_days(&self) -> usize {
        self.observations.len()
    }

    /// True if every observation day has a CMP share below 5 % or above
    /// 95 % — the bimodality the paper reports for 99.8 % of domains.
    pub fn share_is_bimodal(&self) -> bool {
        self.observations.iter().all(|o| {
            let s = o.share();
            !(0.05..=0.95).contains(&s)
        })
    }

    /// Switch events `(day, from, to)` between *different* CMPs across
    /// consecutive CMP-bearing observations.
    pub fn switches(&self) -> Vec<(Day, Cmp, Cmp)> {
        let mut out = Vec::new();
        let mut last: Option<(Day, Cmp)> = None;
        for o in &self.observations {
            if let Some(cmp) = o.cmp {
                if let Some((_, prev)) = last {
                    if prev != cmp {
                        out.push((o.day, prev, cmp));
                    }
                }
                last = Some((o.day, cmp));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_crawler::CmpSet;
    use consent_httpsim::{CaptureStatus, Location};

    fn cap(day: Day, cmp: Option<Cmp>) -> CaptureSummary {
        CaptureSummary {
            domain: "x.com".into(),
            day,
            location: Location::EuCloud,
            status: CaptureStatus::Ok,
            cmps: cmp.map_or(CmpSet::empty(), |c| CmpSet::from_iter([c])),
            redirected: false,
            dialog_visible: false,
        }
    }

    fn failed_cap(day: Day) -> CaptureSummary {
        let mut c = cap(day, Some(Cmp::OneTrust));
        c.status = CaptureStatus::AntiBotInterstitial;
        c
    }

    #[test]
    fn day_classification_one_third_rule() {
        let d = Day::from_ymd(2020, 1, 1);
        // 1 of 3 captures has the CMP → exactly one third → classified.
        let history = vec![cap(d, Some(Cmp::Quantcast)), cap(d, None), cap(d, None)];
        let t = Timeline::from_history(&history);
        assert_eq!(t.observations.len(), 1);
        assert_eq!(t.observations[0].cmp, Some(Cmp::Quantcast));
        assert!((t.observations[0].share() - 1.0 / 3.0).abs() < 1e-9);
        // 1 of 4 → below the threshold.
        let history = vec![
            cap(d, Some(Cmp::Quantcast)),
            cap(d, None),
            cap(d, None),
            cap(d, None),
        ];
        let t = Timeline::from_history(&history);
        assert_eq!(t.observations[0].cmp, None);
    }

    #[test]
    fn unusable_captures_ignored() {
        let d = Day::from_ymd(2020, 1, 1);
        let history = vec![cap(d, Some(Cmp::OneTrust)), failed_cap(d), failed_cap(d)];
        let t = Timeline::from_history(&history);
        // Only the usable capture counts: share = 1/1.
        assert_eq!(t.observations[0].captures, 1);
        assert_eq!(t.observations[0].cmp, Some(Cmp::OneTrust));
    }

    #[test]
    fn interpolation_between_agreeing_boundaries() {
        let d = Day::from_ymd(2020, 1, 1);
        let history = vec![
            cap(d, Some(Cmp::Quantcast)),
            cap(d + 30, Some(Cmp::Quantcast)),
        ];
        let t = Timeline::from_history(&history);
        // The paper's example: seen a month ago and today → assume
        // present throughout.
        assert_eq!(t.cmp_on(d + 15), Some(Cmp::Quantcast));
        assert_eq!(t.cmp_on(d), Some(Cmp::Quantcast));
        assert_eq!(t.cmp_on(d - 1), None);
    }

    #[test]
    fn disagreement_blocks_interpolation() {
        let d = Day::from_ymd(2020, 1, 1);
        let history = vec![
            cap(d, Some(Cmp::Cookiebot)),
            cap(d + 40, Some(Cmp::OneTrust)),
        ];
        let t = Timeline::from_history(&history);
        assert_eq!(t.cmp_on(d + 20), None);
        assert_eq!(t.cmp_on(d), Some(Cmp::Cookiebot));
        assert_eq!(t.cmp_on(d + 40), Some(Cmp::OneTrust));
        assert_eq!(t.switches(), vec![(d + 40, Cmp::Cookiebot, Cmp::OneTrust)]);
    }

    #[test]
    fn fade_out_after_thirty_days() {
        let d = Day::from_ymd(2020, 2, 1);
        let history = vec![cap(d, Some(Cmp::TrustArc))];
        let t = Timeline::from_history(&history);
        // The paper's example: measured Feb 1 → assume none by Mar 1.
        assert_eq!(t.cmp_on(d + 7), Some(Cmp::TrustArc));
        assert_eq!(t.cmp_on(d + 30), Some(Cmp::TrustArc));
        assert_eq!(t.cmp_on(d + 31), None);
    }

    #[test]
    fn none_to_cmp_gap_is_not_interpolated() {
        let d = Day::from_ymd(2020, 1, 1);
        let history = vec![cap(d, None), cap(d + 20, Some(Cmp::OneTrust))];
        let t = Timeline::from_history(&history);
        assert_eq!(t.cmp_on(d + 10), None);
        assert_eq!(t.cmp_on(d + 20), Some(Cmp::OneTrust));
    }

    #[test]
    fn bimodality_check() {
        let d = Day::from_ymd(2020, 1, 1);
        // All-or-nothing days → bimodal.
        let history = vec![
            cap(d, Some(Cmp::OneTrust)),
            cap(d, Some(Cmp::OneTrust)),
            cap(d + 1, None),
        ];
        let t = Timeline::from_history(&history);
        assert!(t.share_is_bimodal());
        assert_eq!(t.observed_days(), 2);
        // A 50 % day breaks bimodality.
        let history = vec![cap(d, Some(Cmp::OneTrust)), cap(d, None)];
        let t = Timeline::from_history(&history);
        assert!(!t.share_is_bimodal());
    }

    #[test]
    fn multi_cmp_day_picks_majority() {
        let d = Day::from_ymd(2020, 1, 1);
        let history = vec![
            cap(d, Some(Cmp::OneTrust)),
            cap(d, Some(Cmp::OneTrust)),
            cap(d, Some(Cmp::Quantcast)),
        ];
        let t = Timeline::from_history(&history);
        assert_eq!(t.observations[0].cmp, Some(Cmp::OneTrust));
    }
}
