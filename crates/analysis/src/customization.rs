//! Publisher customization of consent dialogs (item I3, §4.1).
//!
//! The paper inspects DOM trees and full-page screenshots from the EU
//! university vantage and classifies each CMP-embedding site's dialog.
//! We classify from the same observables: detected CMP (hostname),
//! vendor CSS classes (absent on API-only custom dialogs), button texts,
//! and footer links.

use consent_crawler::CampaignCapture;
use consent_fingerprint::Detector;
use consent_httpsim::DomSnapshot;
use consent_webgraph::Cmp;
use std::collections::BTreeMap;

/// Observable customization class, reconstructed from page content.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObservedStyle {
    /// Conventional banner: accept + settings link.
    ConventionalBanner,
    /// Opt-out button in the banner ("Do Not Sell" etc.).
    OptOutButton,
    /// "Script banner" (reject/manage *scripts*).
    ScriptBanner,
    /// No banner; privacy link in the footer only.
    FooterLinkOnly,
    /// Direct reject button (Quantcast style).
    DirectReject,
    /// "More Options" second button.
    MoreOptions,
    /// Instant 1-click opt-out.
    InstantOptOut,
    /// Multi-partner opt-out flow.
    MultiPartnerOptOut,
    /// Autonomy-implying button without direct controls.
    AutonomyButton,
    /// Link/button not implying control.
    NoControlLink,
    /// CMP APIs with a publisher-drawn dialog.
    CustomApiOnly,
    /// Dialog not visible at this vantage (geo-gated etc.).
    NoDialog,
}

/// Accept-button wording class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObservedWording {
    /// "I agree / I accept / I consent" variants.
    AgreeVariant,
    /// Free-form text ("Whatever", "Sounds good", …).
    FreeForm,
    /// No accept button visible.
    None,
}

/// Classify one DOM snapshot.
pub fn classify_style(dom: &DomSnapshot, cmp_detected: bool) -> ObservedStyle {
    if !cmp_detected {
        return ObservedStyle::NoDialog;
    }
    // API-only: CMP traffic present but no vendor CSS on the dialog.
    let vendor_css = dom.dialog_css_classes.iter().any(|c| {
        c.contains("onetrust")
            || c.contains("qc-cmp")
            || c.contains("truste")
            || c.contains("Cybot")
            || c.contains("faktor")
            || c.contains("evidon")
    });
    let has_dialog = dom.accept_button_text.is_some();
    if !vendor_css && has_dialog {
        return ObservedStyle::CustomApiOnly;
    }
    let secondary = dom.secondary_button_text.as_deref().unwrap_or("");
    if !has_dialog {
        return match &dom.footer_privacy_link {
            Some(_) => ObservedStyle::FooterLinkOnly,
            None => ObservedStyle::NoDialog,
        };
    }
    match secondary {
        "I DO NOT ACCEPT" => ObservedStyle::DirectReject,
        "MORE OPTIONS" => ObservedStyle::MoreOptions,
        "Do Not Sell" => ObservedStyle::OptOutButton,
        "Reject/Manage Scripts" => ObservedStyle::ScriptBanner,
        "Decline All" => ObservedStyle::InstantOptOut,
        "Opt out of all" => ObservedStyle::MultiPartnerOptOut,
        "Manage Preferences" => ObservedStyle::AutonomyButton,
        "Learn more" => ObservedStyle::NoControlLink,
        "" => ObservedStyle::FooterLinkOnly,
        _ => ObservedStyle::ConventionalBanner,
    }
}

/// Classify the accept-button wording.
pub fn classify_wording(dom: &DomSnapshot) -> ObservedWording {
    match dom.accept_button_text.as_deref() {
        None => ObservedWording::None,
        Some(t) => {
            let t = t.to_lowercase();
            if t.contains("accept") && !t.contains("move on")
                || t.contains("agree")
                || t.contains("consent")
            {
                ObservedWording::AgreeVariant
            } else {
                ObservedWording::FreeForm
            }
        }
    }
}

/// Per-CMP customization report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CustomizationReport {
    /// Style counts per CMP.
    pub styles: BTreeMap<Cmp, BTreeMap<ObservedStyle, usize>>,
    /// `(agree, freeform)` wording counts per CMP.
    pub wording: BTreeMap<Cmp, (usize, usize)>,
    /// Sites classified per CMP (with a visible dialog or footer link).
    pub sites: BTreeMap<Cmp, usize>,
}

impl CustomizationReport {
    /// Share of `cmp` sites in a style class.
    pub fn style_share(&self, cmp: Cmp, style: ObservedStyle) -> f64 {
        let total = self.sites.get(&cmp).copied().unwrap_or(0);
        if total == 0 {
            return 0.0;
        }
        let n = self
            .styles
            .get(&cmp)
            .and_then(|m| m.get(&style))
            .copied()
            .unwrap_or(0);
        n as f64 / total as f64
    }

    /// Share of `cmp` sites with free-form accept wording.
    pub fn freeform_share(&self, cmp: Cmp) -> f64 {
        match self.wording.get(&cmp) {
            Some(&(agree, freeform)) if agree + freeform > 0 => {
                freeform as f64 / (agree + freeform) as f64
            }
            _ => 0.0,
        }
    }

    /// Overall share of API-only custom dialogs across all CMPs.
    pub fn api_only_share(&self) -> f64 {
        let total: usize = self.sites.values().sum();
        if total == 0 {
            return 0.0;
        }
        let api: usize = self
            .styles
            .values()
            .filter_map(|m| m.get(&ObservedStyle::CustomApiOnly))
            .sum();
        api as f64 / total as f64
    }
}

/// Build the report from the EU-university captures of a campaign
/// column (the only one storing DOM snapshots).
pub fn customization_report(
    captures: &[CampaignCapture],
    detector: &Detector,
) -> CustomizationReport {
    let mut report = CustomizationReport::default();
    for c in captures {
        let Some(dom) = c.capture.dom.as_ref() else {
            continue;
        };
        let detected = detector.detect(&c.capture);
        let Some(cmp) = detected.into_iter().next() else {
            continue;
        };
        let style = classify_style(dom, true);
        if style == ObservedStyle::NoDialog {
            continue;
        }
        *report
            .styles
            .entry(cmp)
            .or_default()
            .entry(style)
            .or_insert(0) += 1;
        *report.sites.entry(cmp).or_insert(0) += 1;
        let w = report.wording.entry(cmp).or_insert((0, 0));
        match classify_wording(dom) {
            ObservedWording::AgreeVariant => w.0 += 1,
            ObservedWording::FreeForm => w.1 += 1,
            ObservedWording::None => {}
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_crawler::{build_toplist, run_campaign};
    use consent_httpsim::Vantage;
    use consent_util::{Day, SeedTree};
    use consent_webgraph::{AdoptionConfig, World, WorldConfig};

    fn dom(accept: Option<&str>, secondary: Option<&str>, css: &[&str]) -> DomSnapshot {
        DomSnapshot {
            accept_button_text: accept.map(str::to_owned),
            secondary_button_text: secondary.map(str::to_owned),
            dialog_css_classes: css.iter().map(|s| (*s).to_owned()).collect(),
            body_text: String::new(),
            footer_privacy_link: Some("Privacy Policy".into()),
        }
    }

    #[test]
    fn style_classification() {
        let d = dom(
            Some("I ACCEPT"),
            Some("I DO NOT ACCEPT"),
            &["qc-cmp2-container"],
        );
        assert_eq!(classify_style(&d, true), ObservedStyle::DirectReject);
        assert_eq!(classify_style(&d, false), ObservedStyle::NoDialog);
        let d = dom(
            Some("I agree"),
            Some("MORE OPTIONS"),
            &["qc-cmp2-container"],
        );
        assert_eq!(classify_style(&d, true), ObservedStyle::MoreOptions);
        let d = dom(
            Some("Accept all"),
            Some("Do Not Sell"),
            &["onetrust-banner-sdk"],
        );
        assert_eq!(classify_style(&d, true), ObservedStyle::OptOutButton);
        let d = dom(
            Some("OK"),
            Some("Cookie Settings"),
            &["site-consent-banner"],
        );
        assert_eq!(classify_style(&d, true), ObservedStyle::CustomApiOnly);
        let d = dom(None, None, &[]);
        assert_eq!(classify_style(&d, true), ObservedStyle::FooterLinkOnly);
    }

    #[test]
    fn wording_classification() {
        let agree = dom(Some("I consent"), None, &[]);
        assert_eq!(classify_wording(&agree), ObservedWording::AgreeVariant);
        let free = dom(Some("Whatever"), None, &[]);
        assert_eq!(classify_wording(&free), ObservedWording::FreeForm);
        let move_on = dom(Some("Accept and move on"), None, &[]);
        assert_eq!(classify_wording(&move_on), ObservedWording::FreeForm);
        let none = dom(None, None, &[]);
        assert_eq!(classify_wording(&none), ObservedWording::None);
    }

    #[test]
    fn end_to_end_report_matches_section_4_1() {
        let world = World::new(WorldConfig {
            n_sites: 30_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        });
        // A deeper list gives enough CMP sites for stable shares.
        let list = build_toplist(&world, 4_000, SeedTree::new(7));
        let vantage = Vantage::table1_columns()[3];
        let result = run_campaign(
            &world,
            &list,
            Day::from_ymd(2020, 5, 15),
            &[vantage],
            SeedTree::new(9),
        );
        let report =
            customization_report(result.column(vantage).unwrap(), &Detector::hostname_only());
        // Quantcast: ~55 % direct reject among classified sites; ~13 %
        // free-form wording.
        let q_direct = report.style_share(Cmp::Quantcast, ObservedStyle::DirectReject);
        assert!((0.35..0.70).contains(&q_direct), "direct share {q_direct}");
        let q_free = report.freeform_share(Cmp::Quantcast);
        assert!((0.05..0.25).contains(&q_free), "freeform {q_free}");
        // OneTrust: conventional banner dominates.
        let o_conv = report.style_share(Cmp::OneTrust, ObservedStyle::ConventionalBanner);
        assert!(o_conv > 0.4, "conventional {o_conv}");
        // API-only sits near 8 %.
        let api = report.api_only_share();
        assert!((0.03..0.14).contains(&api), "api-only {api}");
        // Sites were actually classified.
        assert!(report.sites.values().sum::<usize>() > 100);
    }
}
