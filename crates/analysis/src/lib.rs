//! # consent-analysis
//!
//! The paper's longitudinal analysis pipeline over capture records:
//! per-domain daily timelines with interpolation and 30-day fade-out
//! ([`interpolate`]), the Figure 6 adoption series and Figure 4
//! switching flows ([`timeseries`]), the Figure 5 market-share-by-size
//! curve ([`marketshare`]), the Table 1 vantage comparison
//! ([`vantage_table`](mod@vantage_table)), the §4.1 publisher-customization classifier
//! ([`customization`]), and the §3.4–3.5 data-quality statistics
//! ([`quality`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod customization;
pub mod exports;
pub mod interpolate;
pub mod jurisdiction;
pub mod marketshare;
pub mod quality;
pub mod timeseries;
pub mod vantage_table;

pub use customization::{
    classify_style, classify_wording, customization_report, CustomizationReport, ObservedStyle,
    ObservedWording,
};
pub use exports::{
    render_adoption, render_quality, render_shares, render_timelines, standard_exports,
};
pub use interpolate::{DayObservation, Timeline, DAY_SHARE_THRESHOLD, FADE_OUT_DAYS};
pub use jurisdiction::{jurisdiction_report, JurisdictionReport};
pub use marketshare::{marketshare_curve, standard_sizes, MarketshareCurve, RankObservation};
pub use quality::{
    bimodal_share, capture_quality, missing_data_report, CaptureQualityReport, MissingDataReport,
};
pub use timeseries::{
    adoption_series, build_timelines, switch_matrix, AdoptionPoint, SwitchMatrix,
};
pub use vantage_table::{vantage_table, VantageTable};
