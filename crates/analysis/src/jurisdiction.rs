//! Jurisdiction analysis: EU+UK TLD share per CMP (§4.1).
//!
//! The paper infers each CMP's regulatory target market from its
//! customers' TLDs: "the share of sites with a EU+UK TLD for each CMP
//! (Quantcast at 38.3 % and OneTrust with 16.3 %)". This module measures
//! the same statistic from campaign captures — final hostnames and
//! detected CMPs — without touching ground truth.

use consent_crawler::CampaignCapture;
use consent_fingerprint::Detector;
use consent_psl::PublicSuffixList;
use consent_util::table::{pct, Table};
use consent_webgraph::{site, Cmp, ALL_CMPS};
use std::collections::BTreeMap;

/// Per-CMP TLD composition of the customer base.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JurisdictionReport {
    /// Per CMP: `(eu_uk_sites, total_sites)`.
    pub per_cmp: BTreeMap<Cmp, (usize, usize)>,
}

impl JurisdictionReport {
    /// EU+UK TLD share for one CMP.
    pub fn eu_share(&self, cmp: Cmp) -> f64 {
        match self.per_cmp.get(&cmp) {
            Some(&(eu, total)) if total > 0 => eu as f64 / total as f64,
            _ => 0.0,
        }
    }

    /// Render the §4.1 comparison.
    pub fn render(&self) -> String {
        let mut t = Table::with_columns(&["CMP", "Sites", "EU+UK TLD share"]);
        t.numeric()
            .title("Jurisdiction: EU+UK TLD share of each CMP's customers (§4.1)");
        for cmp in ALL_CMPS {
            let (eu, total) = self.per_cmp.get(&cmp).copied().unwrap_or((0, 0));
            let _ = eu;
            t.row(vec![
                cmp.name().into(),
                total.to_string(),
                pct(self.eu_share(cmp)),
            ]);
        }
        t.to_string()
    }
}

/// Measure the report from campaign captures: detect the CMP, extract the
/// final registrable domain's public suffix, and classify it as EU+UK or
/// not.
pub fn jurisdiction_report(
    captures: &[CampaignCapture],
    detector: &Detector,
    psl: &PublicSuffixList,
) -> JurisdictionReport {
    let mut report = JurisdictionReport::default();
    for c in captures {
        if !c.capture.usable() {
            continue;
        }
        let Some(cmp) = detector.detect(&c.capture).into_iter().next() else {
            continue;
        };
        let Some(suffix) = psl.public_suffix(&c.capture.final_host) else {
            continue;
        };
        let entry = report.per_cmp.entry(cmp).or_insert((0, 0));
        entry.1 += 1;
        if site::is_eu_tld(&suffix) || suffix == "uk" || suffix.ends_with(".uk") {
            entry.0 += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_crawler::{build_toplist, run_campaign};
    use consent_httpsim::Vantage;
    use consent_util::{Day, SeedTree};
    use consent_webgraph::{AdoptionConfig, World, WorldConfig};

    #[test]
    fn quantcast_skews_eu_onetrust_us() {
        let world = World::new(WorldConfig {
            n_sites: 30_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        });
        let list = build_toplist(&world, 4_000, SeedTree::new(7));
        let vantage = Vantage::table1_columns()[3];
        let result = run_campaign(
            &world,
            &list,
            Day::from_ymd(2020, 5, 15),
            &[vantage],
            SeedTree::new(9),
        );
        let report = jurisdiction_report(
            result.column(vantage).unwrap(),
            &Detector::hostname_only(),
            &PublicSuffixList::embedded(),
        );
        let q = report.eu_share(Cmp::Quantcast);
        let o = report.eu_share(Cmp::OneTrust);
        // Paper: Quantcast 38.3 %, OneTrust 16.3 %.
        assert!((q - 0.383).abs() < 0.12, "Quantcast EU share {q}");
        assert!((o - 0.163).abs() < 0.08, "OneTrust EU share {o}");
        assert!(q > 1.5 * o, "Quantcast ({q}) should dwarf OneTrust ({o})");
        let rendered = report.render();
        assert!(rendered.contains("EU+UK"));
        assert!(rendered.contains("Quantcast"));
    }

    #[test]
    fn empty_input_yields_zero_shares() {
        let report = jurisdiction_report(
            &[],
            &Detector::hostname_only(),
            &PublicSuffixList::embedded(),
        );
        for cmp in ALL_CMPS {
            assert_eq!(report.eu_share(cmp), 0.0);
        }
    }
}
