//! Cumulative CMP market share as a function of toplist size (Figure 5,
//! Figures A.4–A.6).
//!
//! The input is a set of per-rank observations — from the capture
//! pipeline, possibly stratified with sampling weights for the long tail
//! — and the output is, for each toplist size `s`, the share of the top
//! `s` sites embedding each CMP.

use consent_webgraph::{Cmp, ALL_CMPS};

/// One observed site: its toplist rank, a sampling weight (1.0 for a
/// census; the stratum's inverse sampling fraction otherwise), and the
/// CMP measured on it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankObservation {
    /// 1-based toplist rank.
    pub rank: u32,
    /// Inverse-probability weight.
    pub weight: f64,
    /// Detected CMP, if any.
    pub cmp: Option<Cmp>,
}

/// The Figure 5 curve.
#[derive(Clone, Debug, PartialEq)]
pub struct MarketshareCurve {
    /// Toplist sizes (ascending).
    pub sizes: Vec<u32>,
    /// Cumulative per-CMP share at each size, [`ALL_CMPS`] order.
    pub shares: Vec<[f64; 6]>,
    /// Weighted number of observations within each size.
    pub covered: Vec<f64>,
}

impl MarketshareCurve {
    /// Total CMP share (all six summed) at size index `i`.
    pub fn total_share(&self, i: usize) -> f64 {
        self.shares[i].iter().sum()
    }

    /// Share of one CMP at size index `i`.
    pub fn share_of(&self, i: usize, cmp: Cmp) -> f64 {
        self.shares[i][ALL_CMPS.iter().position(|&c| c == cmp).expect("known")]
    }
}

/// Compute the cumulative curve. `sizes` must be ascending; observations
/// need not be sorted. Weighted counts are normalized by the weighted
/// number of *observations* with rank ≤ s, which equals `s` for a
/// census and is an unbiased estimate under stratified sampling.
pub fn marketshare_curve(observations: &[RankObservation], sizes: &[u32]) -> MarketshareCurve {
    assert!(sizes.windows(2).all(|w| w[0] < w[1]), "sizes must ascend");
    let mut sorted: Vec<&RankObservation> = observations.iter().collect();
    sorted.sort_by_key(|o| o.rank);

    let mut shares = Vec::with_capacity(sizes.len());
    let mut covered = Vec::with_capacity(sizes.len());
    let mut cum = [0.0f64; 6];
    let mut cum_weight = 0.0f64;
    let mut idx = 0;
    for &s in sizes {
        while idx < sorted.len() && sorted[idx].rank <= s {
            let o = sorted[idx];
            cum_weight += o.weight;
            if let Some(cmp) = o.cmp {
                cum[ALL_CMPS.iter().position(|&c| c == cmp).expect("known")] += o.weight;
            }
            idx += 1;
        }
        let denom = if cum_weight > 0.0 { cum_weight } else { 1.0 };
        let mut row = [0.0f64; 6];
        for (i, &c) in cum.iter().enumerate() {
            row[i] = c / denom;
        }
        shares.push(row);
        covered.push(cum_weight);
    }
    MarketshareCurve {
        sizes: sizes.to_vec(),
        shares,
        covered,
    }
}

/// Standard size grid used for Figure 5: log-spaced from 100 to 1M.
pub fn standard_sizes() -> Vec<u32> {
    vec![
        100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
        1_000_000,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(rank: u32, cmp: Option<Cmp>) -> RankObservation {
        RankObservation {
            rank,
            weight: 1.0,
            cmp,
        }
    }

    #[test]
    fn census_shares() {
        // 10 sites, CMPs on ranks 3 (Quantcast) and 7 (OneTrust).
        let observations: Vec<RankObservation> = (1..=10)
            .map(|r| {
                obs(
                    r,
                    match r {
                        3 => Some(Cmp::Quantcast),
                        7 => Some(Cmp::OneTrust),
                        _ => None,
                    },
                )
            })
            .collect();
        let curve = marketshare_curve(&observations, &[2, 5, 10]);
        assert_eq!(curve.total_share(0), 0.0);
        assert!((curve.total_share(1) - 0.2).abs() < 1e-9); // 1 of 5
        assert!((curve.total_share(2) - 0.2).abs() < 1e-9); // 2 of 10
        assert!((curve.share_of(2, Cmp::Quantcast) - 0.1).abs() < 1e-9);
        assert!((curve.share_of(2, Cmp::OneTrust) - 0.1).abs() < 1e-9);
        assert_eq!(curve.covered, vec![2.0, 5.0, 10.0]);
    }

    #[test]
    fn weights_scale_strata() {
        // Census of ranks 1-4 plus a 1-in-2 sample of ranks 5-8
        // (weights 2.0): true adoption 1/4 in head, 1/2 in tail.
        let observations = vec![
            obs(1, None),
            obs(2, Some(Cmp::Cookiebot)),
            obs(3, None),
            obs(4, None),
            RankObservation {
                rank: 5,
                weight: 2.0,
                cmp: Some(Cmp::Cookiebot),
            },
            RankObservation {
                rank: 7,
                weight: 2.0,
                cmp: None,
            },
        ];
        let curve = marketshare_curve(&observations, &[4, 8]);
        assert!((curve.total_share(0) - 0.25).abs() < 1e-9);
        // Weighted: (1 + 2) / (4 + 4) = 0.375.
        assert!((curve.total_share(1) - 0.375).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_handled() {
        let observations = vec![obs(9, Some(Cmp::TrustArc)), obs(1, None), obs(5, None)];
        let curve = marketshare_curve(&observations, &[10]);
        assert!((curve.total_share(0) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_observations() {
        let curve = marketshare_curve(&[], &[100]);
        assert_eq!(curve.total_share(0), 0.0);
        assert_eq!(curve.covered, vec![0.0]);
    }

    #[test]
    #[should_panic]
    fn rejects_unsorted_sizes() {
        marketshare_curve(&[], &[100, 50]);
    }

    #[test]
    fn standard_grid_ascends_to_a_million() {
        let sizes = standard_sizes();
        assert_eq!(*sizes.first().unwrap(), 100);
        assert_eq!(*sizes.last().unwrap(), 1_000_000);
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }
}
