//! Data-quality and methodology statistics (§3.4–§3.5).
//!
//! Reproduces the paper's reliability numbers: the missing-data breakdown
//! of toplist domains never seen on social media, the share of domains
//! with bimodal daily CMP shares (99.8 %), and the redirect / dedup /
//! source-mix rates reported in §3.4.

use crate::interpolate::Timeline;
use consent_crawler::CaptureDb;
use consent_httpsim::CaptureStatus;
use consent_webgraph::{Reachability, World};
use std::collections::HashSet;

/// Missing-data breakdown over a toplist (§3.5 "Missing Data": of the
/// 1 076 Tranco-10k domains never shared on social media, 315 were
/// unreachable, 4 returned no valid HTTP, 70 an error status, 192
/// redirected elsewhere, and >90 % of the rest were infrastructure).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MissingDataReport {
    /// Toplist domains considered.
    pub toplist_size: usize,
    /// Domains never observed in the social-media capture DB.
    pub never_shared: usize,
    /// … of which unreachable via HTTP/HTTPS.
    pub unreachable: usize,
    /// … of which returned no valid HTTP response.
    pub no_valid_http: usize,
    /// … of which returned an HTTP error status.
    pub http_error: usize,
    /// … of which redirect to another domain.
    pub redirects_elsewhere: usize,
    /// … of which are reachable infrastructure (CDNs etc.).
    pub infrastructure: usize,
}

impl MissingDataReport {
    /// The remainder: reachable, user-facing, yet never shared.
    pub fn unexplained(&self) -> usize {
        self.never_shared
            .saturating_sub(self.unreachable)
            .saturating_sub(self.no_valid_http)
            .saturating_sub(self.http_error)
            .saturating_sub(self.redirects_elsewhere)
            .saturating_sub(self.infrastructure)
    }
}

/// Compute the missing-data breakdown: which toplist domains never
/// appear in the social capture DB, and why (using ground truth for the
/// manual-inspection step the paper performed by hand).
pub fn missing_data_report(
    world: &World,
    toplist_domains: &[String],
    db: &CaptureDb,
) -> MissingDataReport {
    let seen: HashSet<&str> = db.iter().map(|(d, _)| d).collect();
    let mut report = MissingDataReport {
        toplist_size: toplist_domains.len(),
        ..MissingDataReport::default()
    };
    for domain in toplist_domains {
        if seen.contains(domain.as_str()) {
            continue;
        }
        report.never_shared += 1;
        let Some(profile) = world.site_by_host(domain) else {
            continue;
        };
        match profile.reachability {
            Reachability::Unreachable => report.unreachable += 1,
            Reachability::NoValidHttp => report.no_valid_http += 1,
            Reachability::HttpError => report.http_error += 1,
            Reachability::RedirectsTo(_) => report.redirects_elsewhere += 1,
            Reachability::Ok => {
                if profile.infrastructure {
                    report.infrastructure += 1;
                }
            }
        }
    }
    report
}

/// Capture-quality breakdown: every stored capture mapped onto the §3.5
/// quality columns. Degraded captures (timeout cut-offs and truncated
/// records) are *usable* — their partial content is analyzed — but the
/// paper requires them to be visible in the accounting rather than
/// silently pooled with clean loads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CaptureQualityReport {
    /// All captures in the database.
    pub total: u64,
    /// Clean loads.
    pub ok: u64,
    /// Loads cut off by the page timeout (degraded, usable).
    pub timeout: u64,
    /// Truncated capture records (degraded, usable).
    pub truncated: u64,
    /// Anti-bot interstitials.
    pub interstitial: u64,
    /// HTTP 451 geo-blocks.
    pub blocked_451: u64,
    /// HTTP error statuses from the origin.
    pub http_error: u64,
    /// TCP/TLS connection never established.
    pub connection_failed: u64,
    /// Connection reset mid-load (transient network fault).
    pub connection_reset: u64,
}

impl CaptureQualityReport {
    /// Captures with analyzable content (ok + degraded).
    pub fn usable(&self) -> u64 {
        self.ok + self.timeout + self.truncated
    }

    /// Usable-but-incomplete captures.
    pub fn degraded(&self) -> u64 {
        self.timeout + self.truncated
    }

    /// Share of captures with analyzable content.
    pub fn usable_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.usable() as f64 / self.total as f64
        }
    }

    /// Share of captures that are degraded.
    pub fn degraded_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.degraded() as f64 / self.total as f64
        }
    }
}

/// Tally every capture in the database into the §3.5 quality columns.
pub fn capture_quality(db: &CaptureDb) -> CaptureQualityReport {
    let mut report = CaptureQualityReport::default();
    for (_, history) in db.iter() {
        for c in history {
            report.total += 1;
            match c.status {
                CaptureStatus::Ok => report.ok += 1,
                CaptureStatus::Timeout => report.timeout += 1,
                CaptureStatus::Truncated => report.truncated += 1,
                CaptureStatus::AntiBotInterstitial => report.interstitial += 1,
                CaptureStatus::LegallyBlocked => report.blocked_451 += 1,
                CaptureStatus::HttpError => report.http_error += 1,
                CaptureStatus::ConnectionFailed => report.connection_failed += 1,
                CaptureStatus::ConnectionReset => report.connection_reset += 1,
            }
        }
    }
    report
}

/// Share of multi-observation domains whose daily CMP share is always
/// below 5 % or above 95 % (paper: 99.8 %).
pub fn bimodal_share(timelines: &[&Timeline]) -> f64 {
    let eligible: Vec<&&Timeline> = timelines
        .iter()
        .filter(|t| t.observed_days() >= 2)
        .collect();
    if eligible.is_empty() {
        return 1.0;
    }
    let bimodal = eligible.iter().filter(|t| t.share_is_bimodal()).count();
    bimodal as f64 / eligible.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::build_timelines;
    use consent_crawler::{build_toplist, FeedConfig, Platform};
    use consent_util::{Day, SeedTree};
    use consent_webgraph::{AdoptionConfig, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            n_sites: 20_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    }

    #[test]
    fn missing_data_breakdown_shape() {
        let w = world();
        let platform = Platform::new(
            &w,
            FeedConfig {
                urls_per_day: 2_000,
                ..FeedConfig::default()
            },
            SeedTree::new(3),
        );
        let start = Day::from_ymd(2020, 5, 1);
        let (db, _) = platform.run(start, start + 7);
        let toplist = build_toplist(&w, 2_000, SeedTree::new(7));
        let report = missing_data_report(&w, &toplist, &db);
        assert_eq!(report.toplist_size, 2_000);
        assert!(report.never_shared > 0);
        // The explained categories must not exceed the never-shared total.
        assert!(
            report.unreachable
                + report.no_valid_http
                + report.http_error
                + report.redirects_elsewhere
                + report.infrastructure
                <= report.never_shared
        );
        // Unreachable and infrastructure domains can never be shared, so
        // they must all be in the never-shared set: expect ~3.15 % and
        // ~4.5 % of the toplist respectively (minus CMP adopters).
        assert!(
            report.unreachable >= 40,
            "unreachable {}",
            report.unreachable
        );
        assert!(
            report.infrastructure >= 40,
            "infrastructure {}",
            report.infrastructure
        );
        let _ = report.unexplained();
    }

    #[test]
    fn capture_quality_reconciles_and_surfaces_degradation() {
        let w = world();
        let start = Day::from_ymd(2020, 5, 1);
        let config = FeedConfig {
            urls_per_day: 800,
            ..FeedConfig::default()
        };
        // Clean run: no injected faults, so no resets/truncations.
        let clean = Platform::with_faults(
            &w,
            config.clone(),
            consent_faultsim::FaultProfile::none(),
            SeedTree::new(3),
        );
        let (db, stats) = clean.run(start, start + 3);
        let q = capture_quality(&db);
        assert_eq!(q.total, stats.captured);
        assert_eq!(
            q.ok + q.timeout
                + q.truncated
                + q.interstitial
                + q.blocked_451
                + q.http_error
                + q.connection_failed
                + q.connection_reset,
            q.total,
            "columns must partition the database"
        );
        assert_eq!(q.truncated + q.connection_reset, 0);
        assert_eq!(q.degraded(), 0);
        assert!(q.usable_rate() > 0.8, "usable rate {}", q.usable_rate());

        // Chaos run: injected faults must show up as degraded/reset
        // columns, and degraded captures must still be analyzable.
        let chaotic = Platform::with_faults(
            &w,
            config,
            consent_faultsim::FaultProfile::heavy(),
            SeedTree::new(3),
        );
        let (chaos_db, chaos_stats) = chaotic.run(start, start + 3);
        let cq = capture_quality(&chaos_db);
        assert_eq!(cq.total, chaos_stats.captured);
        assert!(cq.degraded() > 0, "heavy profile produced no degradation");
        assert!(cq.connection_reset > 0);
        assert!(cq.degraded_rate() > 0.0 && cq.usable_rate() < q.usable_rate());
        // Degraded captures flow into timelines instead of vanishing.
        let timelines = build_timelines(&chaos_db, None);
        assert!(!timelines.is_empty());

        assert_eq!(capture_quality(&CaptureDb::new()).usable_rate(), 1.0);
        assert_eq!(capture_quality(&CaptureDb::new()).degraded_rate(), 0.0);
    }

    #[test]
    fn bimodality_near_total() {
        let w = world();
        let platform = Platform::new(
            &w,
            FeedConfig {
                urls_per_day: 1_500,
                ..FeedConfig::default()
            },
            SeedTree::new(5),
        );
        let start = Day::from_ymd(2020, 5, 1);
        let (db, _) = platform.run(start, start + 10);
        let timelines = build_timelines(&db, None);
        let refs: Vec<&Timeline> = timelines.values().collect();
        let share = bimodal_share(&refs);
        assert!(share > 0.95, "bimodal share {share} (paper: 0.998)");
        assert_eq!(bimodal_share(&[]), 1.0);
    }
}
