//! Data-quality and methodology statistics (§3.4–§3.5).
//!
//! Reproduces the paper's reliability numbers: the missing-data breakdown
//! of toplist domains never seen on social media, the share of domains
//! with bimodal daily CMP shares (99.8 %), and the redirect / dedup /
//! source-mix rates reported in §3.4.

use crate::interpolate::Timeline;
use consent_crawler::CaptureDb;
use consent_webgraph::{Reachability, World};
use std::collections::HashSet;

/// Missing-data breakdown over a toplist (§3.5 "Missing Data": of the
/// 1 076 Tranco-10k domains never shared on social media, 315 were
/// unreachable, 4 returned no valid HTTP, 70 an error status, 192
/// redirected elsewhere, and >90 % of the rest were infrastructure).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MissingDataReport {
    /// Toplist domains considered.
    pub toplist_size: usize,
    /// Domains never observed in the social-media capture DB.
    pub never_shared: usize,
    /// … of which unreachable via HTTP/HTTPS.
    pub unreachable: usize,
    /// … of which returned no valid HTTP response.
    pub no_valid_http: usize,
    /// … of which returned an HTTP error status.
    pub http_error: usize,
    /// … of which redirect to another domain.
    pub redirects_elsewhere: usize,
    /// … of which are reachable infrastructure (CDNs etc.).
    pub infrastructure: usize,
}

impl MissingDataReport {
    /// The remainder: reachable, user-facing, yet never shared.
    pub fn unexplained(&self) -> usize {
        self.never_shared
            .saturating_sub(self.unreachable)
            .saturating_sub(self.no_valid_http)
            .saturating_sub(self.http_error)
            .saturating_sub(self.redirects_elsewhere)
            .saturating_sub(self.infrastructure)
    }
}

/// Compute the missing-data breakdown: which toplist domains never
/// appear in the social capture DB, and why (using ground truth for the
/// manual-inspection step the paper performed by hand).
pub fn missing_data_report(
    world: &World,
    toplist_domains: &[String],
    db: &CaptureDb,
) -> MissingDataReport {
    let seen: HashSet<&str> = db.iter().map(|(d, _)| d).collect();
    let mut report = MissingDataReport {
        toplist_size: toplist_domains.len(),
        ..MissingDataReport::default()
    };
    for domain in toplist_domains {
        if seen.contains(domain.as_str()) {
            continue;
        }
        report.never_shared += 1;
        let Some(profile) = world.site_by_host(domain) else {
            continue;
        };
        match profile.reachability {
            Reachability::Unreachable => report.unreachable += 1,
            Reachability::NoValidHttp => report.no_valid_http += 1,
            Reachability::HttpError => report.http_error += 1,
            Reachability::RedirectsTo(_) => report.redirects_elsewhere += 1,
            Reachability::Ok => {
                if profile.infrastructure {
                    report.infrastructure += 1;
                }
            }
        }
    }
    report
}

/// Share of multi-observation domains whose daily CMP share is always
/// below 5 % or above 95 % (paper: 99.8 %).
pub fn bimodal_share(timelines: &[&Timeline]) -> f64 {
    let eligible: Vec<&&Timeline> = timelines
        .iter()
        .filter(|t| t.observed_days() >= 2)
        .collect();
    if eligible.is_empty() {
        return 1.0;
    }
    let bimodal = eligible.iter().filter(|t| t.share_is_bimodal()).count();
    bimodal as f64 / eligible.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::build_timelines;
    use consent_crawler::{build_toplist, FeedConfig, Platform};
    use consent_util::{Day, SeedTree};
    use consent_webgraph::{AdoptionConfig, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            n_sites: 20_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    }

    #[test]
    fn missing_data_breakdown_shape() {
        let w = world();
        let platform = Platform::new(
            &w,
            FeedConfig {
                urls_per_day: 2_000,
                ..FeedConfig::default()
            },
            SeedTree::new(3),
        );
        let start = Day::from_ymd(2020, 5, 1);
        let (db, _) = platform.run(start, start + 7);
        let toplist = build_toplist(&w, 2_000, SeedTree::new(7));
        let report = missing_data_report(&w, &toplist, &db);
        assert_eq!(report.toplist_size, 2_000);
        assert!(report.never_shared > 0);
        // The explained categories must not exceed the never-shared total.
        assert!(
            report.unreachable
                + report.no_valid_http
                + report.http_error
                + report.redirects_elsewhere
                + report.infrastructure
                <= report.never_shared
        );
        // Unreachable and infrastructure domains can never be shared, so
        // they must all be in the never-shared set: expect ~3.15 % and
        // ~4.5 % of the toplist respectively (minus CMP adopters).
        assert!(
            report.unreachable >= 40,
            "unreachable {}",
            report.unreachable
        );
        assert!(
            report.infrastructure >= 40,
            "infrastructure {}",
            report.infrastructure
        );
        let _ = report.unexplained();
    }

    #[test]
    fn bimodality_near_total() {
        let w = world();
        let platform = Platform::new(
            &w,
            FeedConfig {
                urls_per_day: 1_500,
                ..FeedConfig::default()
            },
            SeedTree::new(5),
        );
        let start = Day::from_ymd(2020, 5, 1);
        let (db, _) = platform.run(start, start + 10);
        let timelines = build_timelines(&db, None);
        let refs: Vec<&Timeline> = timelines.values().collect();
        let share = bimodal_share(&refs);
        assert!(share > 0.95, "bimodal share {share} (paper: 0.998)");
        assert_eq!(bimodal_share(&[]), 1.0);
    }
}
