//! Deterministic text renderings of the analysis results — the
//! documents archived in a campaign bundle's `analysis` section and
//! recomputed during bundle replay.
//!
//! Every renderer is a pure function of the capture database (plus the
//! bundle's [`ArchiveContext`]): sorted iteration orders, fixed-width
//! float formatting (`{:.6}`), and day ranges derived from the data
//! itself, so the same state always renders the same bytes. That is the
//! property [`consent_crawler::archive::replay_campaign_bundle`]
//! checks: it re-runs [`standard_exports`] over the re-imported state
//! and byte-compares against the archived documents.

use std::collections::BTreeMap;

use consent_crawler::archive::ArchiveContext;
use consent_crawler::{CampaignState, CaptureDb};
use consent_util::Day;
use consent_webgraph::ALL_CMPS;

use crate::marketshare::{marketshare_curve, standard_sizes, RankObservation};
use crate::quality::capture_quality;
use crate::timeseries::{adoption_series, build_timelines, switch_matrix};

/// The first/last capture day in the database, if any captures exist.
fn day_range(db: &CaptureDb) -> Option<(Day, Day)> {
    let mut range: Option<(Day, Day)> = None;
    for (_, history) in db.iter() {
        for row in &history {
            range = Some(match range {
                None => (row.day, row.day),
                Some((lo, hi)) => (lo.min(row.day), hi.max(row.day)),
            });
        }
    }
    range
}

/// Per-domain timeline summary (Figure 1 / §3.2 interpolation layer):
/// observed days, switch count, and each switch as `day from>to`,
/// domains sorted.
pub fn render_timelines(db: &CaptureDb) -> String {
    let timelines = build_timelines(db, None);
    let sorted: BTreeMap<&str, _> = timelines.iter().map(|(d, t)| (d.as_str(), t)).collect();
    let mut out = String::from("#consent-analysis-timelines v1\n");
    for (domain, t) in sorted {
        let switches = t.switches();
        out.push_str(&format!(
            "{domain}\tdays={}\tswitches={}",
            t.observed_days(),
            switches.len()
        ));
        for (day, from, to) in switches {
            out.push_str(&format!("\t{day} {from}>{to}"));
        }
        out.push('\n');
    }
    out
}

/// The Figure 6 adoption series over the database's own day range
/// (daily step), one line per day with per-CMP domain counts in
/// [`ALL_CMPS`] order.
pub fn render_adoption(db: &CaptureDb) -> String {
    let mut out = String::from("#consent-analysis-adoption v1\n");
    out.push_str(&format!(
        "cmps={}\n",
        ALL_CMPS.map(|c| c.to_string()).join(" ")
    ));
    let Some((start, end)) = day_range(db) else {
        return out;
    };
    let timelines = build_timelines(db, None);
    for point in adoption_series(&timelines, start, end, 1) {
        out.push_str(&format!("{}", point.day));
        for n in point.counts {
            out.push_str(&format!("\t{n}"));
        }
        out.push('\n');
    }
    let matrix = switch_matrix(&timelines);
    for ((from, to), n) in &matrix.flows {
        out.push_str(&format!("switch\t{from}\t{to}\t{n}\n"));
    }
    out
}

/// The Figure 5 rank-stratified market-share curve, computed from the
/// toplist rank order the bundle's [`ArchiveContext`] preserves and
/// each domain's interpolated CMP on the campaign day.
pub fn render_shares(db: &CaptureDb, ctx: &ArchiveContext) -> String {
    let timelines = build_timelines(db, None);
    let observations: Vec<RankObservation> = ctx
        .domains
        .iter()
        .enumerate()
        .map(|(i, domain)| RankObservation {
            rank: i as u32 + 1,
            weight: 1.0,
            cmp: timelines.get(domain).and_then(|t| t.cmp_on(ctx.day)),
        })
        .collect();
    let curve = marketshare_curve(&observations, &standard_sizes());
    let mut out = String::from("#consent-analysis-shares v1\n");
    out.push_str(&format!(
        "cmps={}\n",
        ALL_CMPS.map(|c| c.to_string()).join(" ")
    ));
    for (i, size) in curve.sizes.iter().enumerate() {
        out.push_str(&format!("{size}\tcovered={:.6}", curve.covered[i]));
        for share in curve.shares[i] {
            out.push_str(&format!("\t{share:.6}"));
        }
        out.push('\n');
    }
    out
}

/// The §3.4–3.5 capture-quality accounting.
pub fn render_quality(db: &CaptureDb) -> String {
    let q = capture_quality(db);
    format!(
        "#consent-analysis-quality v1\n\
         total={}\nok={}\ntimeout={}\ntruncated={}\ninterstitial={}\n\
         blocked_451={}\nhttp_error={}\nconnection_failed={}\nconnection_reset={}\n\
         usable_rate={:.6}\ndegraded_rate={:.6}\n",
        q.total,
        q.ok,
        q.timeout,
        q.truncated,
        q.interstitial,
        q.blocked_451,
        q.http_error,
        q.connection_failed,
        q.connection_reset,
        q.usable_rate(),
        q.degraded_rate(),
    )
}

/// The standard analysis-export provider for campaign bundles: the
/// four `experiments::*` document classes, labeled `timelines`,
/// `adoption`, `shares`, and `quality`. Matches the
/// [`ExportFn`](consent_crawler::archive::ExportFn) signature, so it
/// plugs straight into `BundleSpec::provider` and
/// `replay_campaign_bundle`.
pub fn standard_exports(state: &CampaignState, ctx: &ArchiveContext) -> Vec<(String, String)> {
    vec![
        ("timelines".to_string(), render_timelines(&state.db)),
        ("adoption".to_string(), render_adoption(&state.db)),
        ("shares".to_string(), render_shares(&state.db, ctx)),
        ("quality".to_string(), render_quality(&state.db)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_crawler::{build_toplist, run_campaign_with, CampaignConfig};
    use consent_crawler::{BreakerConfig, RetryPolicy};
    use consent_faultsim::FaultProfile;
    use consent_httpsim::Vantage;
    use consent_util::SeedTree;
    use consent_webgraph::{AdoptionConfig, World, WorldConfig};

    fn small() -> (CampaignState, ArchiveContext) {
        let world = World::new(WorldConfig {
            n_sites: 500,
            seed: 42,
            adoption: AdoptionConfig::default(),
        });
        let list = build_toplist(&world, 12, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let vantages = [Vantage::eu_cloud()];
        let seed = SeedTree::new(9);
        let config = CampaignConfig {
            fault_profile: FaultProfile::none(),
            retry: RetryPolicy::paper(),
            breaker: BreakerConfig::default(),
        };
        let run = run_campaign_with(&world, &list, day, &vantages, seed, &config);
        let ctx = ArchiveContext::from_campaign(day, &list, &vantages, &seed);
        (run.state, ctx)
    }

    #[test]
    fn exports_are_deterministic() {
        let (state, ctx) = small();
        let a = standard_exports(&state, &ctx);
        let b = standard_exports(&state, &ctx);
        assert_eq!(a, b);
        assert_eq!(
            a.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>(),
            vec!["timelines", "adoption", "shares", "quality"]
        );
    }

    #[test]
    fn exports_survive_a_state_round_trip() {
        // The replay contract in miniature: re-importing the state
        // through the checkpoint text must not change a single byte of
        // any rendered document.
        let (state, ctx) = small();
        let back = CampaignState::import(&state.export()).unwrap();
        assert_eq!(
            standard_exports(&state, &ctx),
            standard_exports(&back, &ctx)
        );
    }

    #[test]
    fn quality_document_is_consistent() {
        let (state, ctx) = small();
        let doc = render_quality(&state.db);
        assert!(doc.starts_with("#consent-analysis-quality v1\n"));
        let total: u64 = doc
            .lines()
            .find_map(|l| l.strip_prefix("total="))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(total, state.pairs_done);
        let shares = render_shares(&state.db, &ctx);
        assert!(shares.lines().count() > 2, "{shares}");
    }
}
