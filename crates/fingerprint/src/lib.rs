//! # consent-fingerprint
//!
//! CMP fingerprinting: the rule ladder of §3.2 (hostnames, URL patterns,
//! CSS selectors, text phrases; Table A.2) and the detection engine that
//! matches rules against crawl captures, plus screening utilities for
//! quantifying precision/recall against ground truth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detect;
pub mod rules;

pub use detect::{has_gdpr_phrase, Detector, Screening};
pub use rules::{all_rules, Fingerprint, Signal, GDPR_PHRASES};
