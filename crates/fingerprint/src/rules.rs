//! CMP fingerprint rules (paper §3.2, Table A.2).
//!
//! The paper assembles "multiple fingerprints of varying specificity (for
//! example, from concrete URLs to second-level domains)" per CMP: HTTP
//! request patterns, CSS selectors, and extracted text. After screening
//! for false positives, a unique *hostname* per CMP survived as the
//! robust indicator. We model the full rule ladder so the ablation bench
//! can compare hostname-only detection against the complete set.

use consent_webgraph::{Cmp, ALL_CMPS};

/// The kind of signal a rule matches on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Signal {
    /// An HTTP request to exactly this hostname (Table A.2).
    Hostname(&'static str),
    /// An HTTP request whose URL contains this substring.
    UrlSubstring(&'static str),
    /// A CSS class observed on the dialog container.
    CssClass(&'static str),
    /// A phrase in the dialog/body text.
    TextPhrase(&'static str),
}

/// One fingerprint rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// The CMP this rule indicates.
    pub cmp: Cmp,
    /// The matched signal.
    pub signal: Signal,
    /// Rules are ranked; higher = more specific = fewer false positives.
    /// The hostname rules are the most specific tier (3).
    pub specificity: u8,
}

/// The full screened rule set.
pub fn all_rules() -> Vec<Fingerprint> {
    let mut rules = Vec::new();
    // Tier 3: unique hostnames (Table A.2) — the surviving indicators.
    for cmp in ALL_CMPS {
        rules.push(Fingerprint {
            cmp,
            signal: Signal::Hostname(cmp.indicator_hostname()),
            specificity: 3,
        });
    }
    // Tier 2: URL substrings on CMP-owned paths.
    rules.extend([
        Fingerprint {
            cmp: Cmp::OneTrust,
            signal: Signal::UrlSubstring("cookielaw.org/consent"),
            specificity: 2,
        },
        Fingerprint {
            cmp: Cmp::Quantcast,
            signal: Signal::UrlSubstring("mgr.consensu.org"),
            specificity: 2,
        },
        Fingerprint {
            cmp: Cmp::TrustArc,
            signal: Signal::UrlSubstring("trustarc.com/"),
            specificity: 2,
        },
        Fingerprint {
            cmp: Cmp::Cookiebot,
            signal: Signal::UrlSubstring("cookiebot.com/uc.js"),
            specificity: 2,
        },
        Fingerprint {
            cmp: Cmp::LiveRamp,
            signal: Signal::UrlSubstring("faktor.io/"),
            specificity: 2,
        },
        Fingerprint {
            cmp: Cmp::Crownpeak,
            signal: Signal::UrlSubstring("evidon.com/"),
            specificity: 2,
        },
    ]);
    // Tier 1: CSS classes — unreliable under publisher customization
    // (API-only sites replace the vendor dialog entirely, §4.1).
    rules.extend([
        Fingerprint {
            cmp: Cmp::OneTrust,
            signal: Signal::CssClass("onetrust-banner-sdk"),
            specificity: 1,
        },
        Fingerprint {
            cmp: Cmp::Quantcast,
            signal: Signal::CssClass("qc-cmp2-container"),
            specificity: 1,
        },
        Fingerprint {
            cmp: Cmp::TrustArc,
            signal: Signal::CssClass("truste_box_overlay"),
            specificity: 1,
        },
        Fingerprint {
            cmp: Cmp::Cookiebot,
            signal: Signal::CssClass("CybotCookiebotDialog"),
            specificity: 1,
        },
        Fingerprint {
            cmp: Cmp::LiveRamp,
            signal: Signal::CssClass("faktor-io-modal"),
            specificity: 1,
        },
        Fingerprint {
            cmp: Cmp::Crownpeak,
            signal: Signal::CssClass("evidon-banner"),
            specificity: 1,
        },
    ]);
    // Tier 0: text phrases — discarded during screening in the paper for
    // yielding false positives; kept here (specificity 0) so the
    // ablation can quantify exactly that.
    rules.push(Fingerprint {
        cmp: Cmp::Quantcast,
        signal: Signal::TextPhrase("We value your privacy"),
        specificity: 0,
    });
    rules
}

/// GDPR-related phrases from Degeling et al. used to sanity-check that no
/// consent dialog escapes the fingerprints (§3.2).
pub const GDPR_PHRASES: [&str; 8] = [
    "We value your privacy",
    "we use cookies",
    "use of cookies",
    "cookie policy",
    "consent",
    "personal data",
    "GDPR",
    "privacy settings",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cmp_has_hostname_rule() {
        let rules = all_rules();
        for cmp in ALL_CMPS {
            assert!(
                rules.iter().any(|r| r.cmp == cmp
                    && matches!(r.signal, Signal::Hostname(h) if h == cmp.indicator_hostname())
                    && r.specificity == 3),
                "missing hostname rule for {cmp}"
            );
        }
    }

    #[test]
    fn specificity_tiers_populated() {
        let rules = all_rules();
        for tier in 0..=3u8 {
            assert!(
                rules.iter().any(|r| r.specificity == tier),
                "no rules in tier {tier}"
            );
        }
        // Hostname rules are unique across CMPs.
        let hosts: Vec<&str> = rules
            .iter()
            .filter_map(|r| match r.signal {
                Signal::Hostname(h) => Some(h),
                _ => None,
            })
            .collect();
        let mut dedup = hosts.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), hosts.len());
    }

    #[test]
    fn phrases_nonempty() {
        assert!(GDPR_PHRASES.len() >= 5);
        assert!(GDPR_PHRASES.contains(&"We value your privacy"));
    }
}
