//! The detection engine: match fingerprint rules against captures.
//!
//! §3.5 "CMP Detection": network-pattern matching needs no HTML/DOM
//! parsing and detects CMPs even when no dialog is shown (e.g. visiting
//! an EU-centric site from the US). The detector here supports a minimum
//! specificity tier so the ablation bench can compare hostname-only
//! detection (the paper's final choice) against looser rule sets.

use crate::rules::{all_rules, Fingerprint, Signal, GDPR_PHRASES};
use consent_httpsim::Capture;
use consent_webgraph::Cmp;
use std::collections::BTreeSet;

/// A compiled detector.
#[derive(Clone, Debug)]
pub struct Detector {
    rules: Vec<Fingerprint>,
    min_specificity: u8,
}

impl Default for Detector {
    fn default() -> Detector {
        Detector::hostname_only()
    }
}

impl Detector {
    /// The paper's production detector: hostname indicators only
    /// (Table A.2).
    pub fn hostname_only() -> Detector {
        Detector {
            rules: all_rules(),
            min_specificity: 3,
        }
    }

    /// Use every rule at or above `min_specificity` (0 = everything,
    /// including the text rules the paper discarded).
    pub fn with_min_specificity(min_specificity: u8) -> Detector {
        Detector {
            rules: all_rules(),
            min_specificity,
        }
    }

    /// Number of active rules.
    pub fn active_rules(&self) -> usize {
        self.rules
            .iter()
            .filter(|r| r.specificity >= self.min_specificity)
            .count()
    }

    /// Detect every CMP present in a capture. Unusable captures (anti-bot
    /// interstitials, 451s, connection failures) yield nothing by
    /// construction — there is no page content to match. Degraded
    /// captures (timeout cut-offs, truncated records) are matched on
    /// whatever survived: hostname rules work on a partial request log,
    /// so detection degrades gracefully rather than failing closed.
    pub fn detect(&self, capture: &Capture) -> BTreeSet<Cmp> {
        let mut found = BTreeSet::new();
        if !capture.usable() {
            consent_telemetry::count("fingerprint.detect.unusable", 1);
            consent_trace::event("detect", |a| {
                a.push("result", "unusable");
            });
            return found;
        }
        let degraded = capture.degraded();
        if degraded {
            consent_telemetry::count("fingerprint.detect.degraded", 1);
        }
        for rule in &self.rules {
            if rule.specificity < self.min_specificity {
                continue;
            }
            let hit = match &rule.signal {
                Signal::Hostname(h) => capture.contacted(h),
                Signal::UrlSubstring(s) => capture.requests.iter().any(|r| r.url.contains(s)),
                Signal::CssClass(c) => capture
                    .dom
                    .as_ref()
                    .is_some_and(|d| d.dialog_css_classes.iter().any(|x| x == c)),
                Signal::TextPhrase(p) => capture
                    .dom
                    .as_ref()
                    .is_some_and(|d| d.body_text.contains(p)),
            };
            if hit {
                found.insert(rule.cmp);
            }
        }
        consent_trace::event("detect", |a| {
            let cmps: Vec<&str> = found.iter().map(|c| c.name()).collect();
            a.push("result", if cmps.is_empty() { "miss" } else { "hit" });
            if !cmps.is_empty() {
                a.push("cmps", cmps.join(","));
            }
            if degraded {
                a.push("degraded", "1");
            }
        });
        if consent_telemetry::enabled() {
            if found.is_empty() {
                // A miss on a degraded capture may just mean the evidence
                // was cut off — keep it out of the clean-miss count.
                if degraded {
                    consent_telemetry::count("fingerprint.detect.miss_degraded", 1);
                } else {
                    consent_telemetry::count("fingerprint.detect.miss", 1);
                }
            } else {
                for cmp in &found {
                    consent_telemetry::count_labeled(
                        "fingerprint.detect.hit",
                        &[("cmp", cmp.name())],
                        1,
                    );
                }
            }
        }
        found
    }

    /// The single detected CMP, or `None` if zero or ambiguous. The paper
    /// notes multi-CMP pages affect only 0.01 % of captures; analysis
    /// counts them once per CMP via [`Detector::detect`].
    pub fn detect_unique(&self, capture: &Capture) -> Option<Cmp> {
        let found = self.detect(capture);
        if found.len() == 1 {
            found.into_iter().next()
        } else {
            None
        }
    }
}

/// True if the capture's DOM text contains any GDPR phrase — the paper's
/// recall check that no consent dialog slips past the fingerprints.
pub fn has_gdpr_phrase(capture: &Capture) -> bool {
    capture.dom.as_ref().is_some_and(|d| {
        GDPR_PHRASES
            .iter()
            .any(|p| d.body_text.to_lowercase().contains(&p.to_lowercase()))
    })
}

/// Screening report: confusion counts of a detector against ground truth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Screening {
    /// Capture had the CMP and the detector found it.
    pub true_positives: usize,
    /// Detector claimed a CMP that is not on the site.
    pub false_positives: usize,
    /// Site's CMP present in the capture window but missed.
    pub false_negatives: usize,
    /// Correctly empty.
    pub true_negatives: usize,
}

impl Screening {
    /// Precision; 1.0 when nothing was claimed.
    pub fn precision(&self) -> f64 {
        let claimed = self.true_positives + self.false_positives;
        if claimed == 0 {
            1.0
        } else {
            self.true_positives as f64 / claimed as f64
        }
    }

    /// Recall; 1.0 when nothing was present.
    pub fn recall(&self) -> f64 {
        let present = self.true_positives + self.false_negatives;
        if present == 0 {
            1.0
        } else {
            self.true_positives as f64 / present as f64
        }
    }

    /// Tally one capture against ground truth.
    pub fn record(&mut self, truth: Option<Cmp>, detected: &BTreeSet<Cmp>) {
        match truth {
            Some(t) => {
                if detected.contains(&t) {
                    self.true_positives += 1;
                } else {
                    self.false_negatives += 1;
                }
                self.false_positives += detected.iter().filter(|&&d| d != t).count();
            }
            None => {
                if detected.is_empty() {
                    self.true_negatives += 1;
                } else {
                    self.false_positives += detected.len();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_httpsim::{CaptureOptions, Engine, Vantage};
    use consent_util::{Day, SeedTree};
    use consent_webgraph::{AdoptionConfig, GeoBehavior, Reachability, World, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            n_sites: 20_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    }

    #[test]
    fn detects_adopters_at_eu_university() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let engine = Engine::new(&w, SeedTree::new(1));
        let det = Detector::hostname_only();
        let vantage = Vantage::table1_columns()[3];
        let mut screening = Screening::default();
        for rank in 1..=3_000u32 {
            let p = w.profile(rank);
            if p.reachability != Reachability::Ok {
                continue;
            }
            // Restrict to embed-always, clean sites: at this vantage the
            // detector must be essentially perfect on them.
            let clean = p.behavior.as_ref().is_none_or(|b| {
                b.geo == GeoBehavior::EmbedAlways && !b.anti_bot_cdn && !b.slow_load
            });
            if !clean {
                continue;
            }
            let c = engine.capture(
                &format!("https://{}/", p.domain),
                day,
                vantage,
                CaptureOptions::default(),
            );
            screening.record(p.cmp_on(day), &det.detect(&c));
        }
        assert!(screening.true_positives > 50, "{screening:?}");
        assert_eq!(screening.false_positives, 0, "{screening:?}");
        assert!(screening.recall() > 0.99, "{screening:?}");
        assert_eq!(screening.precision(), 1.0);
    }

    #[test]
    fn unusable_captures_yield_nothing() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let engine = Engine::new(&w, SeedTree::new(1));
        let det = Detector::hostname_only();
        // Find an anti-bot adopter and crawl from the cloud.
        let p = (1..=20_000)
            .map(|r| w.profile(r))
            .find(|p| {
                p.cmp_on(day).is_some()
                    && p.reachability == Reachability::Ok
                    && p.behavior.as_ref().is_some_and(|b| b.anti_bot_cdn)
            })
            .unwrap();
        let c = engine.capture(
            &format!("https://{}/", p.domain),
            day,
            Vantage::eu_cloud(),
            CaptureOptions::default(),
        );
        assert!(det.detect(&c).is_empty());
        assert_eq!(det.detect_unique(&c), None);
    }

    #[test]
    fn hostname_only_has_fewest_rules() {
        let strict = Detector::hostname_only();
        let loose = Detector::with_min_specificity(0);
        let mid = Detector::with_min_specificity(2);
        assert!(strict.active_rules() < mid.active_rules());
        assert!(mid.active_rules() < loose.active_rules());
        assert_eq!(strict.active_rules(), 6);
    }

    #[test]
    fn text_rules_fire_only_with_dom() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let engine = Engine::new(&w, SeedTree::new(1));
        let adopter = (1..=20_000)
            .map(|r| w.profile(r))
            .find(|p| {
                p.cmp_on(day).is_some()
                    && p.reachability == Reachability::Ok
                    && p.behavior.as_ref().is_some_and(|b| {
                        b.geo == GeoBehavior::EmbedAlways && !b.anti_bot_cdn && !b.slow_load
                    })
            })
            .unwrap();
        let url = format!("https://{}/", adopter.domain);
        let vantage = Vantage::table1_columns()[3];
        let with_dom = engine.capture(&url, day, vantage, CaptureOptions { collect_dom: true });
        let without = engine.capture(&url, day, vantage, CaptureOptions::default());
        let loose = Detector::with_min_specificity(0);
        assert!(!loose.detect(&with_dom).is_empty());
        // Hostname rules still fire without DOM; CSS/text rules cannot.
        assert!(!loose.detect(&without).is_empty());
        assert!(has_gdpr_phrase(&with_dom));
        assert!(!has_gdpr_phrase(&without));
    }

    #[test]
    fn screening_counters() {
        let mut s = Screening::default();
        s.record(None, &BTreeSet::new());
        s.record(Some(Cmp::OneTrust), &[Cmp::OneTrust].into());
        s.record(Some(Cmp::OneTrust), &BTreeSet::new());
        s.record(None, &[Cmp::Quantcast].into());
        s.record(Some(Cmp::TrustArc), &[Cmp::TrustArc, Cmp::Quantcast].into());
        assert_eq!(s.true_negatives, 1);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_negatives, 1);
        assert_eq!(s.false_positives, 2);
        assert!((s.precision() - 0.5).abs() < 1e-9);
        assert!((s.recall() - 2.0 / 3.0).abs() < 1e-9);
        let empty = Screening::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }
}
