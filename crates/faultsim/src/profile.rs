//! Fault-rate configuration.

use std::fmt;

/// Per-attempt fault rates for the chaos layer. All rates are
/// probabilities in `[0, 1]`, evaluated independently and
/// deterministically per `(host, day, vantage, attempt)` by
/// [`FaultPlan`](crate::FaultPlan).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Probability that an attempt times out at the network level,
    /// leaving a partial request log ([`CaptureStatus::Timeout`]).
    ///
    /// [`CaptureStatus::Timeout`]: consent_httpsim::CaptureStatus::Timeout
    pub timeout: f64,
    /// Probability that the connection is reset mid-load, yielding no
    /// content ([`CaptureStatus::ConnectionReset`]).
    ///
    /// [`CaptureStatus::ConnectionReset`]: consent_httpsim::CaptureStatus::ConnectionReset
    pub reset: f64,
    /// Probability that the capture record is truncated — the tail of
    /// the request log is lost and any DOM snapshot is dropped
    /// ([`CaptureStatus::Truncated`]).
    ///
    /// [`CaptureStatus::Truncated`]: consent_httpsim::CaptureStatus::Truncated
    pub truncation: f64,
    /// Probability that one vantage suffers a whole-day brownout: every
    /// attempt from that vantage on that day is reset, regardless of
    /// host. Models a capture-cluster outage rather than a site fault.
    pub brownout: f64,
    /// Anti-bot escalation: from this attempt number on (1-based, so
    /// `2` means "from the first retry"), each further attempt against
    /// the same `(host, vantage)` risks an interstitial with probability
    /// [`escalation`](Self::escalation). `0` disables escalation.
    pub escalation_after: u8,
    /// Probability of an anti-bot interstitial once escalation is armed.
    pub escalation: f64,
    /// Probability that the capture code itself panics mid-attempt
    /// (models a crawler bug tripping on hostile markup, not a network
    /// fault). The executors contain it: a panicking pair is
    /// dead-lettered with a `panic` outcome instead of poisoning the
    /// worker pool. Zero in every named profile — tests opt in
    /// explicitly.
    pub panic: f64,
}

impl FaultProfile {
    /// The identity profile: no faults are ever injected and the
    /// wrapped engine's captures pass through byte-identical.
    pub fn none() -> FaultProfile {
        FaultProfile {
            timeout: 0.0,
            reset: 0.0,
            truncation: 0.0,
            brownout: 0.0,
            escalation_after: 0,
            escalation: 0.0,
            panic: 0.0,
        }
    }

    /// Low-rate faults: enough to exercise the retry and degradation
    /// paths while leaving aggregate statistics within the tolerances
    /// the analysis tests assert. This is the profile the CI chaos job
    /// runs the whole suite under.
    pub fn mild() -> FaultProfile {
        FaultProfile {
            timeout: 0.01,
            reset: 0.02,
            truncation: 0.01,
            brownout: 0.002,
            escalation_after: 2,
            escalation: 0.10,
            panic: 0.0,
        }
    }

    /// Aggressive faults for targeted resilience tests: most pairs see
    /// at least one failed attempt, brownouts recur, and escalation is
    /// near-certain once armed.
    pub fn heavy() -> FaultProfile {
        FaultProfile {
            timeout: 0.10,
            reset: 0.15,
            truncation: 0.08,
            brownout: 0.02,
            escalation_after: 2,
            escalation: 0.60,
            panic: 0.0,
        }
    }

    /// True if this profile can never inject a fault.
    pub fn is_none(&self) -> bool {
        self.timeout == 0.0
            && self.reset == 0.0
            && self.truncation == 0.0
            && self.brownout == 0.0
            && self.panic == 0.0
            && (self.escalation_after == 0 || self.escalation == 0.0)
    }

    /// Read the profile from the `CONSENT_CHAOS` environment variable:
    /// `mild` or `heavy` select the named profiles; unset, empty,
    /// `none`, or `0` select [`FaultProfile::none`]. Unknown values
    /// also fall back to `none` so a typo cannot silently change the
    /// measurement — but it is reported via the
    /// `faultsim.profile.unrecognized` counter when telemetry is on.
    pub fn from_env() -> FaultProfile {
        match std::env::var("CONSENT_CHAOS").as_deref() {
            Ok("mild") => FaultProfile::mild(),
            Ok("heavy") => FaultProfile::heavy(),
            Ok("") | Ok("none") | Ok("0") | Err(_) => FaultProfile::none(),
            Ok(_) => {
                consent_telemetry::count("faultsim.profile.unrecognized", 1);
                FaultProfile::none()
            }
        }
    }
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile::none()
    }
}

impl fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return f.write_str("none");
        }
        write!(
            f,
            "timeout={} reset={} truncation={} brownout={} escalation={}@{}",
            self.timeout,
            self.reset,
            self.truncation,
            self.brownout,
            self.escalation,
            self.escalation_after,
        )?;
        if self.panic > 0.0 {
            write!(f, " panic={}", self.panic)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(FaultProfile::none().is_none());
        assert!(FaultProfile::default().is_none());
        assert!(!FaultProfile::mild().is_none());
        assert!(!FaultProfile::heavy().is_none());
        // Escalation alone counts as a fault source…
        let mut p = FaultProfile::none();
        p.escalation_after = 2;
        p.escalation = 0.5;
        assert!(!p.is_none());
        // …but only when both threshold and rate are set.
        p.escalation = 0.0;
        assert!(p.is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(FaultProfile::none().to_string(), "none");
        let s = FaultProfile::mild().to_string();
        assert!(s.contains("reset=0.02"), "{s}");
        assert!(s.contains("@2"), "{s}");
    }
}
