//! Deterministic storage-layer fault injection.
//!
//! Network faults model the world failing and crashpoints model the
//! process failing; an [`IoFaultPlan`] models the *disk* failing. It
//! decides, as a pure function of the global **operation index** (the
//! Nth filesystem operation the checkpoint store performs) and the
//! operation kind, whether that operation fails and how: `ENOSPC`,
//! `EIO`, or a silent short write that persists only a prefix.
//!
//! [`FaultyVfs`] applies the plan to a wrapped
//! [`Vfs`] (the real filesystem by default).
//! With [`IoFaultPlan::none`] it is a byte-identical passthrough, so
//! the seam can stay permanently wired into the durable campaign
//! driver. Rules with a finite `count` model *transient-then-recovers*
//! faults — a retry lands on a later operation index and succeeds —
//! while `count = *` (forever) models persistent faults like a full
//! disk. A seeded `rate:` component hashes each operation index for
//! soak-style background fault rates.
//!
//! The `CONSENT_IO_CHAOS` environment variable (see
//! [`IoFaultPlan::from_env`]) enables a plan suite-wide, alongside the
//! existing `CONSENT_CHAOS` and `CONSENT_CRASHPOINT` knobs. Injected
//! errors carry a stable `ENOSPC:` / `EIO:` message prefix, which is
//! what [`classify_io_error`] keys on — the campaign supervisor treats
//! `ENOSPC` as persistent (descend the degradation ladder immediately)
//! and everything else as transient (worth retrying).

use std::fmt;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use consent_checkpoint::{RealVfs, Vfs};

/// The filesystem operation kinds a [`Vfs`] performs, for rule
/// filtering and fault accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Create/truncate a file.
    Create,
    /// Write a whole buffer.
    Write,
    /// `fsync` a file.
    Sync,
    /// Atomic rename.
    Rename,
    /// `fsync` a directory (make a rename durable).
    DirSync,
    /// Read a whole file.
    Read,
    /// Remove a file.
    Remove,
}

impl IoOp {
    /// All operation kinds, in spec order.
    pub const ALL: [IoOp; 7] = [
        IoOp::Create,
        IoOp::Write,
        IoOp::Sync,
        IoOp::Rename,
        IoOp::DirSync,
        IoOp::Read,
        IoOp::Remove,
    ];

    /// Stable lowercase label used in specs and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            IoOp::Create => "create",
            IoOp::Write => "write",
            IoOp::Sync => "sync",
            IoOp::Rename => "rename",
            IoOp::DirSync => "dirsync",
            IoOp::Read => "read",
            IoOp::Remove => "remove",
        }
    }

    fn parse(s: &str) -> Option<Option<IoOp>> {
        match s {
            "*" => Some(None),
            "create" => Some(Some(IoOp::Create)),
            "write" => Some(Some(IoOp::Write)),
            "sync" => Some(Some(IoOp::Sync)),
            "rename" => Some(Some(IoOp::Rename)),
            "dirsync" => Some(Some(IoOp::DirSync)),
            "read" => Some(Some(IoOp::Read)),
            "remove" => Some(Some(IoOp::Remove)),
            _ => None,
        }
    }
}

/// How an injected storage fault manifests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoFaultKind {
    /// The device is out of space (`ENOSPC:` error). Classified
    /// persistent by [`classify_io_error`].
    Enospc,
    /// A generic I/O error (`EIO:` error). Classified transient.
    Eio,
    /// A silent short write: only a prefix of the buffer is persisted
    /// and the operation *reports success*. Detected later by the
    /// checkpoint CRC manifest. On non-write operations this degrades
    /// to [`IoFaultKind::Eio`].
    Short,
}

impl IoFaultKind {
    fn label(&self) -> &'static str {
        match self {
            IoFaultKind::Enospc => "enospc",
            IoFaultKind::Eio => "eio",
            IoFaultKind::Short => "short",
        }
    }

    fn parse(s: &str) -> Option<IoFaultKind> {
        match s {
            "enospc" => Some(IoFaultKind::Enospc),
            "eio" => Some(IoFaultKind::Eio),
            "short" => Some(IoFaultKind::Short),
            _ => None,
        }
    }
}

/// One scheduled fault: fail operations of kind `op` (or any, when
/// `None`) whose global index falls in `[at, at + count)`.
///
/// `count = 1` is a transient fault — the driver's retry executes the
/// same logical step at a later operation index and succeeds.
/// `count = u64::MAX` (spelled `*`) never stops firing: a persistent
/// fault the supervisor cannot retry its way out of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoFaultRule {
    /// How the fault manifests.
    pub kind: IoFaultKind,
    /// Which operation kind it hits; `None` = any.
    pub op: Option<IoOp>,
    /// First global operation index affected (0-based).
    pub at: u64,
    /// How many *matching* subsequent indexes stay faulty.
    pub count: u64,
}

impl IoFaultRule {
    fn matches(&self, index: u64, op: IoOp) -> bool {
        if let Some(want) = self.op {
            if want != op {
                return false;
            }
        }
        index >= self.at && index - self.at < self.count
    }
}

/// A seeded background fault rate: each operation index is hashed and
/// faults with probability `per_mille / 1000`, independently of every
/// other index — so every rate fault is transient by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoRate {
    /// Hash seed; different seeds fault different operation indexes.
    pub seed: u64,
    /// Fault probability in 0..=1000 parts per thousand.
    pub per_mille: u64,
}

impl IoRate {
    fn decide(&self, index: u64) -> Option<IoFaultKind> {
        let h = mix(self.seed, index);
        if h % 1000 >= self.per_mille.min(1000) {
            return None;
        }
        Some(match (h / 1000) % 10 {
            0 => IoFaultKind::Enospc,
            1 | 2 => IoFaultKind::Short,
            _ => IoFaultKind::Eio,
        })
    }
}

/// splitmix64-style finalizer: uniform, seed-separated, allocation-free.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic schedule of storage faults, applied by [`FaultyVfs`].
///
/// Spec grammar (also what [`fmt::Display`] emits, so specs round-trip):
///
/// ```text
/// none                      no faults (the default)
/// mild                      named soak profile: rate:2020:10
/// kind@op:at[:count]        scheduled rule; kind ∈ enospc|eio|short,
///                           op ∈ create|write|sync|rename|dirsync|read|remove|*,
///                           count ∈ N|* (default 1, * = forever)
/// rate:seed:permille        seeded background fault rate
/// a;b;c                     any of the above, semicolon-joined
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    rules: Vec<IoFaultRule>,
    rate: Option<IoRate>,
}

impl IoFaultPlan {
    /// No faults: [`FaultyVfs`] becomes a byte-identical passthrough.
    pub fn none() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// The named `mild` soak profile: a 1% seeded background fault rate
    /// (`rate:2020:10`), gentle enough that retries and the degradation
    /// ladder keep campaigns completing.
    pub fn mild() -> IoFaultPlan {
        IoFaultPlan::rate(2020, 10)
    }

    /// A plan with only a seeded background fault rate.
    pub fn rate(seed: u64, per_mille: u64) -> IoFaultPlan {
        IoFaultPlan {
            rules: Vec::new(),
            rate: Some(IoRate {
                seed,
                per_mille: per_mille.min(1000),
            }),
        }
    }

    /// A plan with a single scheduled rule.
    pub fn rule(kind: IoFaultKind, op: Option<IoOp>, at: u64, count: u64) -> IoFaultPlan {
        IoFaultPlan {
            rules: vec![IoFaultRule {
                kind,
                op,
                at,
                count,
            }],
            rate: None,
        }
    }

    /// Append a scheduled rule (builder style).
    pub fn with_rule(mut self, kind: IoFaultKind, op: Option<IoOp>, at: u64, count: u64) -> Self {
        self.rules.push(IoFaultRule {
            kind,
            op,
            at,
            count,
        });
        self
    }

    /// True when this plan never injects anything.
    pub fn is_none(&self) -> bool {
        self.rules.is_empty() && self.rate.is_none_or(|r| r.per_mille == 0)
    }

    /// The fault (if any) for the operation with global `index` of kind
    /// `op`. Scheduled rules win over the background rate; the first
    /// matching rule wins.
    pub fn decide(&self, index: u64, op: IoOp) -> Option<IoFaultKind> {
        for rule in &self.rules {
            if rule.matches(index, op) {
                return Some(rule.kind);
            }
        }
        self.rate.and_then(|r| r.decide(index))
    }

    /// Read a plan from `CONSENT_IO_CHAOS`. Unset, empty, or `none`
    /// mean no faults. Malformed values fall back to no faults (a typo
    /// must not change the measurement) but are reported via the
    /// `faultsim.io_chaos.unrecognized` counter when telemetry is on.
    pub fn from_env() -> IoFaultPlan {
        match std::env::var("CONSENT_IO_CHAOS").as_deref() {
            Ok("") | Err(_) => IoFaultPlan::none(),
            Ok(spec) => IoFaultPlan::parse(spec).unwrap_or_else(|| {
                consent_telemetry::count("faultsim.io_chaos.unrecognized", 1);
                IoFaultPlan::none()
            }),
        }
    }

    /// Parse a spec (see the type docs for the grammar).
    pub fn parse(spec: &str) -> Option<IoFaultPlan> {
        let mut plan = IoFaultPlan::none();
        for token in spec.split(';') {
            let token = token.trim();
            match token {
                "" => return None,
                "none" => {}
                "mild" => {
                    let mild = IoFaultPlan::mild();
                    plan.rules.extend(mild.rules);
                    plan.rate = mild.rate;
                }
                _ => {
                    if let Some(rest) = token.strip_prefix("rate:") {
                        let mut parts = rest.split(':');
                        let seed: u64 = parts.next()?.parse().ok()?;
                        let per_mille: u64 = parts.next()?.parse().ok()?;
                        if parts.next().is_some() || per_mille > 1000 {
                            return None;
                        }
                        plan.rate = Some(IoRate { seed, per_mille });
                    } else {
                        let (kind, rest) = token.split_once('@')?;
                        let kind = IoFaultKind::parse(kind)?;
                        let mut parts = rest.split(':');
                        let op = IoOp::parse(parts.next()?)?;
                        let at: u64 = parts.next()?.parse().ok()?;
                        let count = match parts.next() {
                            None => 1,
                            Some("*") => u64::MAX,
                            Some(n) => {
                                let n: u64 = n.parse().ok()?;
                                if n == 0 {
                                    return None;
                                }
                                n
                            }
                        };
                        if parts.next().is_some() {
                            return None;
                        }
                        plan.rules.push(IoFaultRule {
                            kind,
                            op,
                            at,
                            count,
                        });
                    }
                }
            }
        }
        Some(plan)
    }

    /// Stable description for logs and health reports.
    pub fn describe(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for IoFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return f.write_str("none");
        }
        let mut first = true;
        for r in &self.rules {
            if !first {
                f.write_str(";")?;
            }
            first = false;
            let op = r.op.map_or("*", |o| o.label());
            write!(f, "{}@{}:{}", r.kind.label(), op, r.at)?;
            match r.count {
                1 => {}
                u64::MAX => f.write_str(":*")?,
                n => write!(f, ":{n}")?,
            }
        }
        if let Some(r) = self.rate {
            if !first {
                f.write_str(";")?;
            }
            write!(f, "rate:{}:{}", r.seed, r.per_mille)?;
        }
        Ok(())
    }
}

/// How the campaign supervisor should treat a storage error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoErrorClass {
    /// Worth retrying: the next attempt may succeed (`EIO`, contention,
    /// anything unrecognized).
    Transient,
    /// Retrying cannot help (`ENOSPC`): descend the degradation ladder
    /// immediately instead of burning the retry budget.
    Persistent,
}

/// Classify a storage error by its stable message prefix (see the
/// [module docs](self)). Unrecognized errors are treated as transient —
/// the retry budget, not the classifier, bounds how long we hope.
pub fn classify_io_error(err: &io::Error) -> IoErrorClass {
    if err.to_string().starts_with("ENOSPC") {
        IoErrorClass::Persistent
    } else {
        IoErrorClass::Transient
    }
}

/// A [`Vfs`] decorator that injects the faults an [`IoFaultPlan`]
/// schedules, keyed on a process-wide operation index per instance.
///
/// Injections are counted via the `faultsim.injected{fault=io-*}`
/// labeled telemetry counters, so storage faults appear in the obs
/// flight report's fault heatmap alongside network faults.
#[derive(Debug)]
pub struct FaultyVfs {
    inner: Arc<dyn Vfs>,
    plan: IoFaultPlan,
    next_op: AtomicU64,
    injected: AtomicU64,
}

impl FaultyVfs {
    /// Wrap the real filesystem.
    pub fn new(plan: IoFaultPlan) -> FaultyVfs {
        FaultyVfs::wrapping(Arc::new(RealVfs), plan)
    }

    /// Wrap an arbitrary inner [`Vfs`].
    pub fn wrapping(inner: Arc<dyn Vfs>, plan: IoFaultPlan) -> FaultyVfs {
        FaultyVfs {
            inner,
            plan,
            next_op: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// The plan driving this instance.
    pub fn plan(&self) -> &IoFaultPlan {
        &self.plan
    }

    /// Total operations observed so far (the next operation's index).
    /// A fault-free probe run reads this to learn how many operation
    /// indexes an exhaustive sweep must cover.
    pub fn ops(&self) -> u64 {
        self.next_op.load(Ordering::Relaxed)
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn inject(&self, kind: IoFaultKind, index: u64, op: IoOp) -> io::Error {
        self.injected.fetch_add(1, Ordering::Relaxed);
        let label = match kind {
            IoFaultKind::Enospc => "io-enospc",
            IoFaultKind::Eio => "io-eio",
            IoFaultKind::Short => "io-short",
        };
        consent_telemetry::count_labeled("faultsim.injected", &[("fault", label)], 1);
        match kind {
            IoFaultKind::Enospc => io::Error::other(format!(
                "ENOSPC: injected out-of-space at op {index} ({})",
                op.label()
            )),
            _ => io::Error::other(format!(
                "EIO: injected i/o error at op {index} ({})",
                op.label()
            )),
        }
    }

    /// Decide the fate of the next operation of kind `op`.
    fn gate(&self, op: IoOp) -> Result<(), io::Error> {
        let index = self.next_op.fetch_add(1, Ordering::Relaxed);
        match self.plan.decide(index, op) {
            None => Ok(()),
            // A "short" fault on anything but a write has no prefix to
            // persist; it degrades to a plain I/O error.
            Some(IoFaultKind::Short) if op != IoOp::Write => {
                Err(self.inject(IoFaultKind::Eio, index, op))
            }
            Some(IoFaultKind::Short) => Err(self.inject(IoFaultKind::Short, index, op)),
            Some(kind) => Err(self.inject(kind, index, op)),
        }
    }
}

impl Vfs for FaultyVfs {
    fn create(&self, path: &Path) -> io::Result<()> {
        self.gate(IoOp::Create)?;
        self.inner.create(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let index = self.next_op.fetch_add(1, Ordering::Relaxed);
        match self.plan.decide(index, IoOp::Write) {
            None => self.inner.write(path, bytes),
            Some(IoFaultKind::Short) => {
                // Persist half the buffer and *report success*: the lie
                // a failing disk tells. The checkpoint CRC manifest is
                // what catches it, on the next open.
                let _ = self.inject(IoFaultKind::Short, index, IoOp::Write);
                self.inner.write(path, &bytes[..bytes.len() / 2])
            }
            Some(kind) => Err(self.inject(kind, index, IoOp::Write)),
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        self.gate(IoOp::Sync)?;
        self.inner.sync(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(IoOp::Rename)?;
        self.inner.rename(from, to)
    }

    fn dir_sync(&self, dir: &Path) -> io::Result<()> {
        self.gate(IoOp::DirSync)?;
        self.inner.dir_sync(dir)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.gate(IoOp::Read)?;
        self.inner.read(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate(IoOp::Remove)?;
        self.inner.remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_default_and_inert() {
        let plan = IoFaultPlan::none();
        assert!(plan.is_none());
        for i in 0..2000 {
            for op in IoOp::ALL {
                assert_eq!(plan.decide(i, op), None);
            }
        }
        assert_eq!(plan.to_string(), "none");
    }

    #[test]
    fn scheduled_rule_fires_in_window_only() {
        let plan = IoFaultPlan::rule(IoFaultKind::Eio, Some(IoOp::Sync), 3, 2);
        assert_eq!(plan.decide(2, IoOp::Sync), None);
        assert_eq!(plan.decide(3, IoOp::Sync), Some(IoFaultKind::Eio));
        assert_eq!(plan.decide(4, IoOp::Sync), Some(IoFaultKind::Eio));
        assert_eq!(plan.decide(5, IoOp::Sync), None);
        // Other operation kinds don't consume the window.
        assert_eq!(plan.decide(3, IoOp::Write), None);
    }

    #[test]
    fn forever_rule_never_stops() {
        let plan = IoFaultPlan::rule(IoFaultKind::Enospc, None, 5, u64::MAX);
        assert_eq!(plan.decide(4, IoOp::Write), None);
        for i in [5u64, 6, 1000, u64::MAX - 1] {
            assert_eq!(plan.decide(i, IoOp::DirSync), Some(IoFaultKind::Enospc));
        }
    }

    #[test]
    fn rate_is_deterministic_and_roughly_calibrated() {
        let rate = IoRate {
            seed: 2020,
            per_mille: 100,
        };
        let hits: Vec<u64> = (0..10_000).filter(|&i| rate.decide(i).is_some()).collect();
        let again: Vec<u64> = (0..10_000).filter(|&i| rate.decide(i).is_some()).collect();
        assert_eq!(hits, again, "rate decisions must be pure");
        // 10% nominal; allow wide slack, only guard against gross bias.
        assert!((500..2000).contains(&hits.len()), "{} hits", hits.len());
        let other = IoRate {
            seed: 2021,
            per_mille: 100,
        };
        let moved: Vec<u64> = (0..10_000).filter(|&i| other.decide(i).is_some()).collect();
        assert_ne!(hits, moved, "seed must matter");
    }

    #[test]
    fn parse_round_trips_display() {
        for spec in [
            "none",
            "enospc@write:5",
            "eio@sync:3:2",
            "short@write:7:*",
            "eio@*:0",
            "rate:2020:10",
            "enospc@dirsync:2;eio@rename:9:3;rate:7:250",
        ] {
            let plan = IoFaultPlan::parse(spec).expect(spec);
            let shown = plan.to_string();
            assert_eq!(IoFaultPlan::parse(&shown).unwrap(), plan, "{spec}");
            if spec != "none" {
                assert_eq!(shown, spec);
            }
        }
        assert_eq!(IoFaultPlan::parse("mild").unwrap(), IoFaultPlan::mild());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for spec in [
            "",
            ";",
            "enospc",
            "enospc@write",
            "enospc@write:x",
            "enospc@floppy:1",
            "boom@write:1",
            "eio@write:1:0",
            "eio@write:1:2:3",
            "rate:1",
            "rate:1:2000",
            "rate:a:b",
        ] {
            assert!(IoFaultPlan::parse(spec).is_none(), "{spec:?} parsed");
        }
    }

    #[test]
    fn faulty_vfs_none_is_passthrough_and_counts_ops() {
        let dir =
            std::env::temp_dir().join(format!("consent-io-passthrough-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = FaultyVfs::new(IoFaultPlan::none());
        let path = dir.join("f");
        vfs.create(&path).unwrap();
        vfs.write(&path, b"bytes on disk").unwrap();
        vfs.sync(&path).unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"bytes on disk");
        assert_eq!(vfs.ops(), 4);
        assert_eq!(vfs.injected(), 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn short_write_persists_prefix_and_reports_success() {
        let dir = std::env::temp_dir().join(format!("consent-io-short-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = FaultyVfs::new(IoFaultPlan::rule(
            IoFaultKind::Short,
            Some(IoOp::Write),
            0,
            1,
        ));
        let path = dir.join("f");
        vfs.write(&path, b"0123456789").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"01234", "half persisted");
        assert_eq!(vfs.injected(), 1);
        // Window passed: the next write is whole.
        vfs.write(&path, b"0123456789").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"0123456789");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn injected_errors_classify_by_prefix() {
        let vfs = FaultyVfs::new(
            IoFaultPlan::rule(IoFaultKind::Enospc, None, 0, 1).with_rule(
                IoFaultKind::Eio,
                None,
                1,
                1,
            ),
        );
        let missing = Path::new("/nonexistent/consent-io-classify");
        let enospc = vfs.sync(missing).unwrap_err();
        let eio = vfs.sync(missing).unwrap_err();
        assert_eq!(classify_io_error(&enospc), IoErrorClass::Persistent);
        assert_eq!(classify_io_error(&eio), IoErrorClass::Transient);
        // Real-world errors we don't recognize default to transient.
        assert_eq!(
            classify_io_error(&io::Error::other("weird disk burp")),
            IoErrorClass::Transient
        );
    }

    #[test]
    fn short_on_non_write_degrades_to_eio() {
        let vfs = FaultyVfs::new(IoFaultPlan::rule(
            IoFaultKind::Short,
            Some(IoOp::Sync),
            0,
            1,
        ));
        let err = vfs.sync(Path::new("/nonexistent")).unwrap_err();
        assert!(err.to_string().starts_with("EIO"), "{err}");
    }

    #[test]
    fn from_env_falls_back_to_none_on_garbage() {
        // from_env reads the real environment; only exercise the unset
        // path here (the env-sensitive paths are covered in the
        // integration suite, which serializes env access).
        if std::env::var("CONSENT_IO_CHAOS").is_err() {
            assert!(IoFaultPlan::from_env().is_none());
        }
    }
}
