//! The fault-injecting engine wrapper.

use crate::plan::{Fault, FaultPlan};
use crate::profile::FaultProfile;
use consent_httpsim::{
    split_url, Capture, CaptureOptions, CaptureStatus, Engine, RequestRecord, Vantage,
};
use consent_util::{Day, SeedTree, SimInstant};

/// An [`Engine`] wrapped by a [`FaultPlan`]. With
/// [`FaultProfile::none`] every capture passes through byte-identical;
/// otherwise each attempt first consults the plan and the decided fault
/// overrides or degrades the underlying capture.
pub struct FaultyEngine<'w> {
    inner: Engine<'w>,
    plan: FaultPlan,
}

impl<'w> FaultyEngine<'w> {
    /// Wrap an engine with a fault plan.
    pub fn new(inner: Engine<'w>, plan: FaultPlan) -> FaultyEngine<'w> {
        FaultyEngine { inner, plan }
    }

    /// Convenience constructor: build the engine and the plan from one
    /// seed node (the engine under `"engine"`, the plan under the whole
    /// node, which namespaces itself under `"faultsim"`).
    pub fn from_world(
        world: &'w consent_webgraph::World,
        profile: FaultProfile,
        seed: SeedTree,
    ) -> FaultyEngine<'w> {
        FaultyEngine::new(
            Engine::new(world, seed.child("engine")),
            FaultPlan::new(profile, seed),
        )
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &Engine<'w> {
        &self.inner
    }

    /// The fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Crawl one URL (first attempt). Identical to
    /// [`FaultyEngine::capture_attempt`] with `attempt = 1`.
    pub fn capture(&self, url: &str, day: Day, vantage: Vantage, opts: CaptureOptions) -> Capture {
        self.capture_attempt(url, day, vantage, opts, 1)
    }

    /// Crawl one URL as attempt number `attempt` (1-based). The attempt
    /// number only feeds the fault plan (anti-bot escalation arms on
    /// repeated hits); the underlying engine is attempt-agnostic.
    pub fn capture_attempt(
        &self,
        url: &str,
        day: Day,
        vantage: Vantage,
        opts: CaptureOptions,
        attempt: u8,
    ) -> Capture {
        if self.plan.profile().is_none() {
            return self.inner.capture(url, day, vantage, opts);
        }
        let (host, _) = split_url(url);
        let Some(fault) = self.plan.decide(&host, day, vantage, attempt) else {
            return self.inner.capture(url, day, vantage, opts);
        };
        consent_telemetry::count_labeled("faultsim.injected", &[("fault", fault.name())], 1);
        consent_trace::event("fault.injected", |a| {
            a.push("fault", fault.name());
            a.push("attempt", attempt.to_string());
        });
        match fault {
            // An injected crawler bug: the panic unwinds out of the
            // engine and is contained by the executor's `catch_unwind`
            // (the `fault.injected` trace event above is already
            // recorded). The message is a pure function of the attempt
            // identity so contained outcomes stay deterministic.
            Fault::Panic => {
                panic!(
                    "consent-faultsim: injected panic for {host} day {} attempt {attempt}",
                    day.0
                );
            }
            // Connection-level faults preempt the origin entirely.
            Fault::Brownout | Fault::ConnectionReset => {
                no_content(url, &host, day, vantage, CaptureStatus::ConnectionReset)
            }
            Fault::AntiBotEscalation => interstitial(url, &host, day, vantage),
            // Record-level faults degrade whatever the origin returned;
            // a capture that already failed deterministically keeps its
            // more specific status.
            Fault::Timeout => {
                let c = self.inner.capture(url, day, vantage, opts);
                if c.status != CaptureStatus::Ok {
                    return c;
                }
                let cutoff =
                    1_000 + (self.plan.shape(&host, day, vantage, attempt) * 4_000.0) as u64;
                truncate(c, CaptureStatus::Timeout, CutAt::Millis(cutoff))
            }
            Fault::Truncation => {
                let c = self.inner.capture(url, day, vantage, opts);
                if c.status != CaptureStatus::Ok {
                    return c;
                }
                let keep = 0.3 + self.plan.shape(&host, day, vantage, attempt) * 0.5;
                truncate(c, CaptureStatus::Truncated, CutAt::Fraction(keep))
            }
        }
    }
}

enum CutAt {
    /// Drop requests that started at or after this millisecond.
    Millis(u64),
    /// Keep this fraction of the request log (at least one request).
    Fraction(f64),
}

fn truncate(mut c: Capture, status: CaptureStatus, cut: CutAt) -> Capture {
    match cut {
        CutAt::Millis(ms) => c.requests.retain(|r| r.started.as_millis() < ms),
        CutAt::Fraction(f) => {
            let keep = ((c.requests.len() as f64 * f).ceil() as usize).max(1);
            c.requests.truncate(keep);
        }
    }
    // The surviving request log defines the surviving record: cookies
    // from hosts that were cut are gone, and so is the DOM snapshot.
    c.cookies
        .retain(|cookie| c.requests.iter().any(|r| r.host == cookie.host));
    c.dom = None;
    c.status = status;
    c
}

fn no_content(url: &str, host: &str, day: Day, vantage: Vantage, status: CaptureStatus) -> Capture {
    Capture {
        seed_url: url.to_owned(),
        final_url: url.to_owned(),
        final_host: host.to_owned(),
        day,
        vantage,
        status,
        requests: Vec::new(),
        cookies: Vec::new(),
        dialog_visible: false,
        dom: None,
    }
}

fn interstitial(url: &str, host: &str, day: Day, vantage: Vantage) -> Capture {
    let mut c = no_content(url, host, day, vantage, CaptureStatus::AntiBotInterstitial);
    c.requests.push(RequestRecord {
        url: url.to_owned(),
        host: host.to_owned(),
        status: 403,
        bytes: 2_048,
        started: SimInstant::ZERO,
        third_party: false,
    });
    c.requests.push(RequestRecord {
        url: "https://challenge.cdn-shield.net/turnstile".into(),
        host: "challenge.cdn-shield.net".into(),
        status: 200,
        bytes: 12_288,
        started: SimInstant::from_millis(120),
        third_party: true,
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_webgraph::{AdoptionConfig, GeoBehavior, Reachability, World, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            n_sites: 10_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    }

    fn clean_site(w: &World, day: Day) -> String {
        (1..=10_000)
            .map(|r| w.profile(r))
            .find(|p| {
                p.cmp_on(day).is_some()
                    && p.reachability == Reachability::Ok
                    && p.behavior.as_ref().is_some_and(|b| {
                        !b.anti_bot_cdn && !b.slow_load && b.geo == GeoBehavior::EmbedAlways
                    })
            })
            .map(|p| format!("https://{}/", p.domain))
            .expect("clean adopter exists")
    }

    #[test]
    fn none_profile_is_byte_identical() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let plain = Engine::new(&w, SeedTree::new(4).child("engine"));
        let faulty = FaultyEngine::from_world(&w, FaultProfile::none(), SeedTree::new(4));
        for rank in (1..=600u32).step_by(7) {
            let url = format!("https://{}/", w.profile(rank).domain);
            for vantage in [Vantage::us_cloud(), Vantage::eu_cloud()] {
                let a = plain.capture(&url, day, vantage, CaptureOptions { collect_dom: true });
                let b = faulty.capture(&url, day, vantage, CaptureOptions { collect_dom: true });
                assert_eq!(a, b, "divergence at {url} {}", vantage.label());
            }
        }
    }

    #[test]
    fn injected_faults_are_deterministic() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let a = FaultyEngine::from_world(&w, FaultProfile::heavy(), SeedTree::new(4));
        let b = FaultyEngine::from_world(&w, FaultProfile::heavy(), SeedTree::new(4));
        for rank in (1..=400u32).step_by(3) {
            let url = format!("https://{}/", w.profile(rank).domain);
            for attempt in 1..=4 {
                let ca = a.capture_attempt(
                    &url,
                    day,
                    Vantage::eu_cloud(),
                    CaptureOptions::default(),
                    attempt,
                );
                let cb = b.capture_attempt(
                    &url,
                    day,
                    Vantage::eu_cloud(),
                    CaptureOptions::default(),
                    attempt,
                );
                assert_eq!(ca, cb);
            }
        }
    }

    #[test]
    fn truncation_degrades_but_stays_usable() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let url = clean_site(&w, day);
        let (host, _) = split_url(&url);
        // A truncation-only profile: every attempt is truncated.
        let profile = FaultProfile {
            truncation: 1.0,
            ..FaultProfile::none()
        };
        let faulty = FaultyEngine::from_world(&w, profile, SeedTree::new(4));
        let plain = Engine::new(&w, SeedTree::new(4).child("engine"));
        let full = plain.capture(
            &url,
            day,
            Vantage::eu_cloud(),
            CaptureOptions { collect_dom: true },
        );
        let cut = faulty.capture(
            &url,
            day,
            Vantage::eu_cloud(),
            CaptureOptions { collect_dom: true },
        );
        assert_eq!(cut.status, CaptureStatus::Truncated);
        assert!(cut.usable() && cut.degraded());
        assert!(cut.dom.is_none(), "truncation drops the DOM");
        assert!(
            !cut.requests.is_empty() && cut.requests.len() < full.requests.len(),
            "kept {} of {}",
            cut.requests.len(),
            full.requests.len()
        );
        // Surviving cookies only reference surviving hosts.
        for cookie in &cut.cookies {
            assert!(cut.requests.iter().any(|r| r.host == cookie.host));
        }
        let _ = host;
    }

    #[test]
    fn reset_yields_no_content() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let url = clean_site(&w, day);
        let profile = FaultProfile {
            reset: 1.0,
            ..FaultProfile::none()
        };
        let faulty = FaultyEngine::from_world(&w, profile, SeedTree::new(4));
        let c = faulty.capture(&url, day, Vantage::eu_cloud(), CaptureOptions::default());
        assert_eq!(c.status, CaptureStatus::ConnectionReset);
        assert!(!c.usable());
        assert!(c.requests.is_empty());
    }

    #[test]
    fn escalation_serves_interstitial_on_retries_only() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let url = clean_site(&w, day);
        let profile = FaultProfile {
            escalation_after: 2,
            escalation: 1.0,
            ..FaultProfile::none()
        };
        let faulty = FaultyEngine::from_world(&w, profile, SeedTree::new(4));
        let first =
            faulty.capture_attempt(&url, day, Vantage::eu_cloud(), CaptureOptions::default(), 1);
        assert_eq!(first.status, CaptureStatus::Ok);
        let second =
            faulty.capture_attempt(&url, day, Vantage::eu_cloud(), CaptureOptions::default(), 2);
        assert_eq!(second.status, CaptureStatus::AntiBotInterstitial);
        assert!(second.contacted("challenge.cdn-shield.net"));
    }

    #[test]
    fn timeout_cuts_late_requests() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let url = clean_site(&w, day);
        let profile = FaultProfile {
            timeout: 1.0,
            ..FaultProfile::none()
        };
        let faulty = FaultyEngine::from_world(&w, profile, SeedTree::new(4));
        let c = faulty.capture(&url, day, Vantage::eu_cloud(), CaptureOptions::default());
        assert_eq!(c.status, CaptureStatus::Timeout);
        assert!(c.usable() && c.degraded());
        let last = c
            .requests
            .iter()
            .map(|r| r.started.as_millis())
            .max()
            .unwrap_or(0);
        assert!(
            last < 5_000,
            "cutoff must be below the 5 s window, got {last}"
        );
    }

    #[test]
    fn world_failures_keep_their_status_under_record_faults() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let profile = FaultProfile {
            timeout: 1.0,
            ..FaultProfile::none()
        };
        let faulty = FaultyEngine::from_world(&w, profile, SeedTree::new(4));
        let c = faulty.capture(
            "https://totally-unknown.example/",
            day,
            Vantage::eu_cloud(),
            CaptureOptions::default(),
        );
        assert_eq!(c.status, CaptureStatus::ConnectionFailed);
    }
}
