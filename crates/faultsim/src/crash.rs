//! Deterministic process-crash points for crash-consistency testing.
//!
//! Network faults ([`Fault`](crate::Fault)) model the *world* failing;
//! a [`CrashPlan`] models the *process* failing: the campaign driver
//! dies after the Nth `apply_pair`, or a checkpoint write is torn after
//! N bytes. Both are deterministic, so a sweep can enumerate every
//! crashpoint of a small campaign and assert that resuming from disk
//! reproduces the uninterrupted run byte-for-byte.
//!
//! Crashes are simulated cooperatively: the durable campaign driver
//! consults the plan and returns a `Crashed` outcome (or routes the
//! write through the store's torn-write primitive) instead of calling
//! `abort()`, which keeps the sweep in-process and lets it inspect the
//! on-disk state the "dead" process left behind.

use std::fmt;

/// Where the simulated process dies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Crashpoint {
    /// Die immediately after the Nth successfully applied pair of this
    /// run (1-based; `0` dies before any pair is applied). Nothing
    /// applied after the last completed checkpoint survives.
    AfterApply(u64),
    /// Tear the Nth checkpoint write of this run (1-based), persisting
    /// only the first `keep_bytes` bytes of the serialized file, then
    /// die.
    TruncateWrite {
        /// Which checkpoint write of the run to tear (1-based).
        write: u64,
        /// How many leading bytes of the serialized checkpoint survive.
        keep_bytes: u64,
    },
}

/// A deterministic crash schedule for one driver run.
///
/// [`CrashPlan::none`] (the default) never crashes; resumed runs use it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashPlan {
    point: Option<Crashpoint>,
}

impl CrashPlan {
    /// Never crash.
    pub fn none() -> CrashPlan {
        CrashPlan { point: None }
    }

    /// Crash after the Nth applied pair (see [`Crashpoint::AfterApply`]).
    pub fn after_apply(n: u64) -> CrashPlan {
        CrashPlan {
            point: Some(Crashpoint::AfterApply(n)),
        }
    }

    /// Tear the Nth checkpoint write after `keep_bytes` bytes.
    pub fn truncate_write(write: u64, keep_bytes: u64) -> CrashPlan {
        CrashPlan {
            point: Some(Crashpoint::TruncateWrite { write, keep_bytes }),
        }
    }

    /// The configured crashpoint, if any.
    pub fn point(&self) -> Option<Crashpoint> {
        self.point
    }

    /// True when this plan never crashes.
    pub fn is_none(&self) -> bool {
        self.point.is_none()
    }

    /// The apply-count at which to die, if this is an apply crash.
    pub fn apply_point(&self) -> Option<u64> {
        match self.point {
            Some(Crashpoint::AfterApply(n)) => Some(n),
            _ => None,
        }
    }

    /// If the `write`-th checkpoint write of the run (1-based) should be
    /// torn, the number of bytes that survive.
    pub fn write_truncation(&self, write: u64) -> Option<u64> {
        match self.point {
            Some(Crashpoint::TruncateWrite {
                write: w,
                keep_bytes,
            }) if w == write => Some(keep_bytes),
            _ => None,
        }
    }

    /// Read a plan from the `CONSENT_CRASHPOINT` environment variable:
    /// `apply:N` crashes after the Nth applied pair, `write:K:B` tears
    /// the Kth checkpoint write after B bytes. Unset, empty, or `none`
    /// mean no crash. Malformed values also fall back to no-crash (a
    /// typo must not change the measurement) but are reported via the
    /// `faultsim.crashpoint.unrecognized` counter when telemetry is on.
    pub fn from_env() -> CrashPlan {
        match std::env::var("CONSENT_CRASHPOINT").as_deref() {
            Ok("") | Ok("none") | Err(_) => CrashPlan::none(),
            Ok(spec) => CrashPlan::parse(spec).unwrap_or_else(|| {
                consent_telemetry::count("faultsim.crashpoint.unrecognized", 1);
                CrashPlan::none()
            }),
        }
    }

    /// Parse an `apply:N` / `write:K:B` spec.
    pub fn parse(spec: &str) -> Option<CrashPlan> {
        let mut parts = spec.split(':');
        match (parts.next()?, parts.next(), parts.next(), parts.next()) {
            ("apply", Some(n), None, None) => Some(CrashPlan::after_apply(n.parse().ok()?)),
            ("write", Some(k), Some(b), None) => {
                Some(CrashPlan::truncate_write(k.parse().ok()?, b.parse().ok()?))
            }
            _ => None,
        }
    }

    /// Stable description for logs and `Crashed` outcomes.
    pub fn describe(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for CrashPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.point {
            None => f.write_str("none"),
            Some(Crashpoint::AfterApply(n)) => write!(f, "apply:{n}"),
            Some(Crashpoint::TruncateWrite { write, keep_bytes }) => {
                write!(f, "write:{write}:{keep_bytes}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none() {
        assert!(CrashPlan::default().is_none());
        assert_eq!(CrashPlan::none().apply_point(), None);
        assert_eq!(CrashPlan::none().write_truncation(1), None);
    }

    #[test]
    fn accessors_match_variants() {
        let a = CrashPlan::after_apply(7);
        assert_eq!(a.apply_point(), Some(7));
        assert_eq!(a.write_truncation(1), None);

        let w = CrashPlan::truncate_write(2, 100);
        assert_eq!(w.apply_point(), None);
        assert_eq!(w.write_truncation(1), None);
        assert_eq!(w.write_truncation(2), Some(100));
        assert_eq!(w.write_truncation(3), None);
    }

    #[test]
    fn parse_round_trips_display() {
        for spec in ["apply:0", "apply:12", "write:1:0", "write:3:4096"] {
            let plan = CrashPlan::parse(spec).unwrap();
            assert_eq!(plan.to_string(), spec);
        }
        assert_eq!(CrashPlan::none().to_string(), "none");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for spec in [
            "apply",
            "apply:x",
            "apply:1:2",
            "write:1",
            "write:a:b",
            "boom:3",
            "",
        ] {
            assert!(CrashPlan::parse(spec).is_none(), "{spec:?} parsed");
        }
    }
}
