//! # consent-faultsim
//!
//! A deterministic chaos layer for the capture pipeline. The simulated
//! web (`consent-httpsim`) only produces the world's *deterministic*
//! failure modes — geo blocks, anti-bot CDNs, unreachable hosts. Real
//! crawls also suffer *transient* faults: dropped connections, network
//! timeouts, truncated records, and rate-limit escalation after repeated
//! hits from the same vantage (§3.2 retries "three times over a week"
//! precisely because of these). This crate injects those faults
//! reproducibly: a [`FaultPlan`] seeded from a
//! [`SeedTree`](consent_util::SeedTree) decides, as a pure function of
//! `(host, day, vantage, attempt)`, whether an attempt fails and how, and
//! [`FaultyEngine`] applies the decision to
//! [`Engine::capture`](consent_httpsim::Engine::capture) output.
//!
//! [`FaultProfile::none()`] is the identity: the wrapped engine returns
//! byte-identical captures, so the fault layer can stay permanently wired
//! into the pipeline. The `CONSENT_CHAOS` environment variable (see
//! [`FaultProfile::from_env`]) turns on a named profile for whole-suite
//! chaos runs in CI.
//!
//! Beyond network faults, the crate models the *process itself* failing:
//! an injected [`Fault::Panic`] exercises the executors' panic
//! containment, and a [`CrashPlan`] (see [`crash`], `CONSENT_CRASHPOINT`)
//! schedules deterministic process deaths — after the Nth applied pair,
//! or tearing a checkpoint write after N bytes — for the
//! crash-consistency sweep in `tests/it_durability.rs`.
//!
//! The third failure domain is the *disk*: an [`IoFaultPlan`] (see
//! [`io`], `CONSENT_IO_CHAOS`) schedules deterministic storage faults —
//! `ENOSPC`, `EIO`, silent short writes — keyed on the checkpoint
//! store's global operation index, applied through [`FaultyVfs`] at the
//! store's [`Vfs`](consent_checkpoint::Vfs) seam. The campaign
//! supervisor classifies the resulting errors via [`classify_io_error`]
//! and retries or descends its degradation ladder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod engine;
pub mod io;
pub mod plan;
pub mod profile;

pub use crash::{CrashPlan, Crashpoint};
pub use engine::FaultyEngine;
pub use io::{classify_io_error, FaultyVfs, IoErrorClass, IoFaultKind, IoFaultPlan, IoOp, IoRate};
pub use plan::{Fault, FaultPlan};
pub use profile::FaultProfile;
