//! The deterministic fault decision function.

use crate::profile::FaultProfile;
use consent_httpsim::Vantage;
use consent_util::{Day, SeedTree};

/// One injected fault, in decreasing order of severity. At most one
/// fault applies per attempt; the variants earlier in this enum win
/// when several are drawn for the same attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The capture code itself panics mid-attempt (a crawler bug, not a
    /// network fault). The most severe variant: without containment it
    /// would take a worker thread down with it.
    Panic,
    /// Vantage-wide brownout: the whole capture cluster is down for the
    /// day and the attempt is reset regardless of host.
    Brownout,
    /// The target's anti-bot protection escalated after repeated hits
    /// from this vantage and serves an interstitial.
    AntiBotEscalation,
    /// Connection reset mid-load: no content at all.
    ConnectionReset,
    /// Network-level timeout: the request log is cut off early.
    Timeout,
    /// Truncated record: the tail of the request log is lost and any
    /// DOM snapshot is dropped.
    Truncation,
}

impl Fault {
    /// Stable name for telemetry labels.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::Panic => "panic",
            Fault::Brownout => "brownout",
            Fault::AntiBotEscalation => "antibot_escalation",
            Fault::ConnectionReset => "reset",
            Fault::Timeout => "timeout",
            Fault::Truncation => "truncation",
        }
    }
}

/// A seeded fault plan: a pure function from `(host, day, vantage,
/// attempt)` to an optional [`Fault`]. Because decisions carry no
/// state, a resumed campaign replays the exact fault sequence of an
/// uninterrupted one, and two runs with the same seed and profile are
/// bit-identical.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    profile: FaultProfile,
    seed: SeedTree,
}

impl FaultPlan {
    /// Build a plan from a profile and a seed node. The seed is
    /// namespaced under `"faultsim"` so wiring the plan into an engine
    /// cannot perturb any other subsystem's randomness.
    pub fn new(profile: FaultProfile, seed: SeedTree) -> FaultPlan {
        FaultPlan {
            profile,
            seed: seed.child("faultsim"),
        }
    }

    /// The configured profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Decide the fault (if any) for one capture attempt. `attempt` is
    /// 1-based; escalation arms once `attempt >=
    /// profile.escalation_after`.
    pub fn decide(&self, host: &str, day: Day, vantage: Vantage, attempt: u8) -> Option<Fault> {
        if self.profile.is_none() {
            return None;
        }
        if self.draw_brownout(day, vantage) {
            return Some(Fault::Brownout);
        }
        let node = self
            .seed
            .child(host)
            .child_idx(day.0 as u64)
            .child(&vantage.label())
            .child_idx(u64::from(attempt));
        if self.profile.panic > 0.0 && node.child("panic").unit_f64() < self.profile.panic {
            return Some(Fault::Panic);
        }
        if self.profile.escalation_after > 0
            && attempt >= self.profile.escalation_after
            && node.child("escalation").unit_f64() < self.profile.escalation
        {
            return Some(Fault::AntiBotEscalation);
        }
        if node.child("reset").unit_f64() < self.profile.reset {
            return Some(Fault::ConnectionReset);
        }
        if node.child("timeout").unit_f64() < self.profile.timeout {
            return Some(Fault::Timeout);
        }
        if node.child("truncation").unit_f64() < self.profile.truncation {
            return Some(Fault::Truncation);
        }
        None
    }

    /// True if `vantage` is browned out on `day` (host-independent).
    pub fn draw_brownout(&self, day: Day, vantage: Vantage) -> bool {
        self.profile.brownout > 0.0
            && self
                .seed
                .child("brownout")
                .child_idx(day.0 as u64)
                .child(&vantage.label())
                .unit_f64()
                < self.profile.brownout
    }

    /// A fault-shape parameter in `[0, 1)` for the decided fault —
    /// e.g. where to cut a truncated request log. Deterministic and
    /// independent of the decision draws.
    pub fn shape(&self, host: &str, day: Day, vantage: Vantage, attempt: u8) -> f64 {
        self.seed
            .child(host)
            .child_idx(day.0 as u64)
            .child(&vantage.label())
            .child_idx(u64::from(attempt))
            .child("shape")
            .unit_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day() -> Day {
        Day::from_ymd(2020, 5, 15)
    }

    #[test]
    fn none_profile_never_faults() {
        let plan = FaultPlan::new(FaultProfile::none(), SeedTree::new(1));
        for i in 0..500u64 {
            let host = format!("site{i}.example");
            for attempt in 1..=4 {
                assert_eq!(
                    plan.decide(&host, day() + (i % 9) as i32, Vantage::eu_cloud(), attempt),
                    None
                );
            }
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(FaultProfile::heavy(), SeedTree::new(9));
        let b = FaultPlan::new(FaultProfile::heavy(), SeedTree::new(9));
        for i in 0..2_000u64 {
            let host = format!("site{i}.example");
            assert_eq!(
                a.decide(&host, day(), Vantage::us_cloud(), 1),
                b.decide(&host, day(), Vantage::us_cloud(), 1)
            );
        }
    }

    #[test]
    fn heavy_profile_injects_each_kind() {
        let plan = FaultPlan::new(FaultProfile::heavy(), SeedTree::new(3));
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..5_000u64 {
            let host = format!("site{i}.example");
            for attempt in 1..=4 {
                if let Some(f) =
                    plan.decide(&host, day() + (i % 30) as i32, Vantage::eu_cloud(), attempt)
                {
                    seen.insert(f.name());
                }
            }
        }
        for kind in ["antibot_escalation", "reset", "timeout", "truncation"] {
            assert!(seen.contains(kind), "never drew {kind}: {seen:?}");
        }
    }

    #[test]
    fn brownout_is_vantage_wide() {
        let profile = FaultProfile {
            brownout: 0.25,
            ..FaultProfile::heavy()
        };
        let plan = FaultPlan::new(profile, SeedTree::new(5));
        // Find a browned-out (day, vantage) and check host independence.
        let browned = (0..400)
            .map(|i| day() + i)
            .find(|&d| plan.draw_brownout(d, Vantage::us_cloud()))
            .expect("a brownout day exists at 25 %");
        for i in 0..50u64 {
            let host = format!("site{i}.example");
            assert_eq!(
                plan.decide(&host, browned, Vantage::us_cloud(), 1),
                Some(Fault::Brownout)
            );
        }
    }

    #[test]
    fn escalation_respects_threshold() {
        let profile = FaultProfile {
            timeout: 0.0,
            reset: 0.0,
            truncation: 0.0,
            brownout: 0.0,
            escalation_after: 3,
            escalation: 1.0,
            panic: 0.0,
        };
        let plan = FaultPlan::new(profile, SeedTree::new(7));
        assert_eq!(
            plan.decide("a.example", day(), Vantage::eu_cloud(), 1),
            None
        );
        assert_eq!(
            plan.decide("a.example", day(), Vantage::eu_cloud(), 2),
            None
        );
        assert_eq!(
            plan.decide("a.example", day(), Vantage::eu_cloud(), 3),
            Some(Fault::AntiBotEscalation)
        );
        assert_eq!(
            plan.decide("a.example", day(), Vantage::eu_cloud(), 4),
            Some(Fault::AntiBotEscalation)
        );
    }

    #[test]
    fn panic_fault_is_drawn_and_wins_over_lesser_faults() {
        let profile = FaultProfile {
            panic: 1.0,
            ..FaultProfile::heavy()
        };
        let plan = FaultPlan::new(profile, SeedTree::new(13));
        // Pick a non-browned-out day so the panic draw is reachable.
        let d = (0..60)
            .map(|i| day() + i)
            .find(|&d| !plan.draw_brownout(d, Vantage::eu_cloud()))
            .expect("a clear day exists");
        for i in 0..50u64 {
            let host = format!("site{i}.example");
            assert_eq!(
                plan.decide(&host, d, Vantage::eu_cloud(), 1),
                Some(Fault::Panic)
            );
        }
    }

    #[test]
    fn shape_is_deterministic_and_in_range() {
        let plan = FaultPlan::new(FaultProfile::heavy(), SeedTree::new(11));
        let a = plan.shape("x.example", day(), Vantage::eu_cloud(), 2);
        let b = plan.shape("x.example", day(), Vantage::eu_cloud(), 2);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
    }
}
