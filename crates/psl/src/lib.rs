//! # consent-psl
//!
//! A Public Suffix List (PSL) engine. The paper counts CMP adoption per
//! *effective second-level domain* (eTLD+1), normalizing every final URL
//! with the PSL (§3.2); this crate implements the publicsuffix.org
//! algorithm — plain, wildcard, and exception rules — over a label trie,
//! plus an embedded snapshot sufficient for the synthetic web.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod list;
pub mod rules;
pub mod snapshot;

pub use list::{DomainParts, PublicSuffixList};
pub use rules::{Rule, RuleKind};
