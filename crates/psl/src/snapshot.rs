//! Embedded Public Suffix List snapshot.
//!
//! A curated subset of the real `public_suffix_list.dat` (May 2020 era),
//! covering every suffix the synthetic web generator emits plus the
//! classic tricky cases (wildcards, exceptions, private-section suffixes).
//! The full upstream file is ~13k rules; embedding all of them would bloat
//! the repo without exercising any additional code path — the engine in
//! [`crate::list`] is format-complete and can load the full file at
//! runtime via [`crate::PublicSuffixList::from_text`].

/// PSL snapshot text in the upstream `public_suffix_list.dat` format.
pub const SNAPSHOT: &str = r#"
// ===BEGIN ICANN DOMAINS===
// Generic TLDs
com
org
net
edu
gov
mil
int
info
biz
name
mobi
app
dev
io
co
me
tv
cc
ws
xyz
online
site
store
tech
blog
news
club
live
// Country TLDs used by the synthetic web
de
com.de
fr
asso.fr
com.fr
gouv.fr
nl
es
com.es
org.es
it
eu
at
ac.at
co.at
or.at
ch
be
pl
com.pl
net.pl
org.pl
se
no
fi
dk
pt
ie
gr
cz
hu
ro
sk
bg
hr
si
lt
lv
ee
lu
mt
cy
us
ca
mx
com.mx
br
com.br
net.br
org.br
ar
com.ar
jp
co.jp
ne.jp
or.jp
ac.jp
*.kawasaki.jp
!city.kawasaki.jp
cn
com.cn
net.cn
org.cn
in
co.in
net.in
org.in
au
com.au
net.au
org.au
nz
co.nz
net.nz
org.nz
ru
com.ru
kr
co.kr
za
co.za
// UK
uk
co.uk
org.uk
net.uk
ac.uk
gov.uk
plc.uk
ltd.uk
me.uk
// Wildcard TLD with exception (classic PSL test case)
*.ck
!www.ck
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
// Hosting platforms whose customers get their own registrable domain
github.io
githubusercontent.com
gitlab.io
blogspot.com
blogspot.co.uk
blogspot.de
wordpress.com
tumblr.com
netlify.app
herokuapp.com
azurewebsites.net
cloudfront.net
fastly.net
amazonaws.com
s3.amazonaws.com
appspot.com
firebaseapp.com
web.app
pages.dev
workers.dev
vercel.app
glitch.me
repl.co
neocities.org
readthedocs.io
// URL shorteners / SaaS (appear as seed URLs in the social feed)
bitbucket.io
// ===END PRIVATE DOMAINS===
"#;

#[cfg(test)]
mod tests {
    use crate::PublicSuffixList;

    #[test]
    fn snapshot_parses_cleanly() {
        let psl = PublicSuffixList::from_text(super::SNAPSHOT);
        // Every non-comment, non-blank line must have parsed into a rule.
        let expected = super::SNAPSHOT
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count();
        assert_eq!(psl.len(), expected);
    }

    #[test]
    fn covers_paper_examples() {
        let psl = PublicSuffixList::from_text(super::SNAPSHOT);
        // §3.2: tinyurl.com seed redirecting to foo.example.github.io.
        assert_eq!(
            psl.registrable_domain("foo.example.github.io").as_deref(),
            Some("example.github.io")
        );
        // amazon.com vs amazon.co.uk are distinct registrable domains.
        assert_eq!(
            psl.registrable_domain("www.amazon.co.uk").as_deref(),
            Some("amazon.co.uk")
        );
        assert_eq!(
            psl.registrable_domain("www.amazon.com").as_deref(),
            Some("amazon.com")
        );
    }
}
