//! Public Suffix List rule representation and parsing.
//!
//! The PSL file format (<https://publicsuffix.org/list/>) is a list of rules,
//! one per line: plain rules (`com`, `co.uk`), wildcard rules (`*.ck`) and
//! exception rules (`!www.ck`). Comment lines start with `//`; blank lines
//! are ignored. Rules are matched against a domain's labels right-to-left.

use std::fmt;

/// Kind of a PSL rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuleKind {
    /// A plain rule such as `com` or `co.uk`.
    Normal,
    /// A wildcard rule such as `*.ck`: any single label matches the `*`.
    Wildcard,
    /// An exception rule such as `!www.ck`: overrides a wildcard.
    Exception,
}

/// One parsed PSL rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// Labels of the rule in *reversed* order (TLD first), excluding the
    /// leading `*.` / `!` markers. E.g. `*.ck` stores `["ck"]`.
    pub labels_rev: Vec<String>,
    /// Rule kind.
    pub kind: RuleKind,
}

impl Rule {
    /// Parse a single non-comment, non-empty PSL line.
    ///
    /// Returns `None` for lines that are not valid rules (empty labels,
    /// embedded whitespace, interior wildcards — the real list contains
    /// none of these, but we refuse to guess on malformed input).
    pub fn parse(line: &str) -> Option<Rule> {
        let line = line.trim();
        if line.is_empty() || line.starts_with("//") {
            return None;
        }
        let (kind, body) = if let Some(rest) = line.strip_prefix('!') {
            (RuleKind::Exception, rest)
        } else if let Some(rest) = line.strip_prefix("*.") {
            (RuleKind::Wildcard, rest)
        } else {
            (RuleKind::Normal, line)
        };
        if body.is_empty() {
            return None;
        }
        let mut labels_rev = Vec::new();
        for label in body.rsplit('.') {
            if label.is_empty()
                || label.contains(char::is_whitespace)
                || label.contains('*')
                || label.contains('!')
            {
                return None;
            }
            labels_rev.push(label.to_ascii_lowercase());
        }
        Some(Rule { labels_rev, kind })
    }

    /// Number of labels in the rule *as it counts for specificity*. Per the
    /// PSL algorithm a wildcard rule `*.ck` has two labels.
    pub fn specificity(&self) -> usize {
        self.labels_rev.len() + usize::from(self.kind == RuleKind::Wildcard)
    }

    /// Test whether this rule matches a domain given as reversed labels
    /// (TLD first). Per the PSL spec, a rule matches when the domain
    /// contains at least as many labels as the rule and every rule label
    /// equals the corresponding domain label (with `*` matching anything).
    pub fn matches(&self, domain_labels_rev: &[&str]) -> bool {
        let needed = self.labels_rev.len() + usize::from(self.kind == RuleKind::Wildcard);
        if domain_labels_rev.len() < needed {
            return false;
        }
        self.labels_rev
            .iter()
            .zip(domain_labels_rev.iter())
            .all(|(r, d)| r == d)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            RuleKind::Exception => write!(f, "!")?,
            RuleKind::Wildcard => write!(f, "*.")?,
            RuleKind::Normal => {}
        }
        let mut first = true;
        for label in self.labels_rev.iter().rev() {
            if !first {
                write!(f, ".")?;
            }
            write!(f, "{label}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_normal_rule() {
        let r = Rule::parse("co.uk").unwrap();
        assert_eq!(r.kind, RuleKind::Normal);
        assert_eq!(r.labels_rev, ["uk", "co"]);
        assert_eq!(r.specificity(), 2);
        assert_eq!(r.to_string(), "co.uk");
    }

    #[test]
    fn parses_wildcard_and_exception() {
        let w = Rule::parse("*.ck").unwrap();
        assert_eq!(w.kind, RuleKind::Wildcard);
        assert_eq!(w.labels_rev, ["ck"]);
        assert_eq!(w.specificity(), 2);
        assert_eq!(w.to_string(), "*.ck");

        let e = Rule::parse("!www.ck").unwrap();
        assert_eq!(e.kind, RuleKind::Exception);
        assert_eq!(e.labels_rev, ["ck", "www"]);
        assert_eq!(e.to_string(), "!www.ck");
    }

    #[test]
    fn skips_comments_and_blanks() {
        assert_eq!(Rule::parse("// this is a comment"), None);
        assert_eq!(Rule::parse(""), None);
        assert_eq!(Rule::parse("   "), None);
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(Rule::parse("!"), None);
        assert_eq!(Rule::parse("a..b"), None);
        assert_eq!(Rule::parse("a b.com"), None);
        assert_eq!(Rule::parse("foo.*.bar"), None);
    }

    #[test]
    fn lowercases_labels() {
        let r = Rule::parse("Co.UK").unwrap();
        assert_eq!(r.labels_rev, ["uk", "co"]);
    }

    #[test]
    fn matching_semantics() {
        let ck = Rule::parse("*.ck").unwrap();
        // "foo.ck" has labels_rev ["ck", "foo"] and matches the wildcard.
        assert!(ck.matches(&["ck", "foo"]));
        // Bare "ck" does not (wildcard requires one more label).
        assert!(!ck.matches(&["ck"]));

        let couk = Rule::parse("co.uk").unwrap();
        assert!(couk.matches(&["uk", "co"]));
        assert!(couk.matches(&["uk", "co", "example"]));
        assert!(!couk.matches(&["uk"]));
        assert!(!couk.matches(&["uk", "gov"]));
    }
}
