//! The Public Suffix List lookup engine.
//!
//! The paper normalizes every crawled hostname "to the effective
//! second-level domain using the Public Suffix List", e.g.
//! `foo.example.github.io` → `example.github.io` (§3.2). This module
//! implements that algorithm: parse the list once into a label trie, then
//! answer `public_suffix` / `registrable_domain` queries.

use crate::rules::{Rule, RuleKind};
use std::collections::HashMap;

/// A compiled Public Suffix List.
#[derive(Clone, Debug, Default)]
pub struct PublicSuffixList {
    root: Node,
    rule_count: usize,
}

#[derive(Clone, Debug, Default)]
struct Node {
    children: HashMap<String, Node>,
    /// A normal/exception rule terminates here.
    terminal: Option<RuleKind>,
    /// A wildcard rule `*.<path>` hangs off this node.
    wildcard: bool,
    /// Exceptions under a wildcard, keyed by the excepted label.
    exceptions: Vec<String>,
}

/// Result of splitting a hostname against the list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainParts<'a> {
    /// The public suffix, e.g. `co.uk` for `www.example.co.uk`.
    pub public_suffix: &'a str,
    /// The registrable domain (eTLD+1), e.g. `example.co.uk` — `None` if
    /// the hostname *is* a public suffix.
    pub registrable: Option<&'a str>,
}

impl PublicSuffixList {
    /// Compile a list from PSL text (the `public_suffix_list.dat` format).
    /// Invalid lines are skipped, matching how browsers consume the file.
    pub fn from_text(text: &str) -> PublicSuffixList {
        let mut psl = PublicSuffixList::default();
        for line in text.lines() {
            if let Some(rule) = Rule::parse(line) {
                psl.insert(rule);
            }
        }
        psl
    }

    /// Compile the embedded snapshot (see [`crate::snapshot`]).
    pub fn embedded() -> PublicSuffixList {
        PublicSuffixList::from_text(crate::snapshot::SNAPSHOT)
    }

    /// Number of rules successfully inserted.
    pub fn len(&self) -> usize {
        self.rule_count
    }

    /// True if the list holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rule_count == 0
    }

    fn insert(&mut self, rule: Rule) {
        match rule.kind {
            RuleKind::Normal => {
                let node = descend(&mut self.root, &rule.labels_rev);
                node.terminal = Some(RuleKind::Normal);
            }
            RuleKind::Wildcard => {
                let node = descend(&mut self.root, &rule.labels_rev);
                node.wildcard = true;
            }
            RuleKind::Exception => {
                // `!www.ck`: the exception label is the *last* element of
                // labels_rev (leftmost label of the rule).
                let (exc, path) = rule.labels_rev.split_last().expect("non-empty rule");
                let node = descend(&mut self.root, path);
                if !node.exceptions.contains(exc) {
                    node.exceptions.push(exc.clone());
                }
            }
        }
        self.rule_count += 1;
    }

    /// Length in labels of the public suffix of `labels_rev` (TLD first),
    /// following the PSL algorithm:
    ///
    /// 1. The prevailing rule is the matching rule with the most labels.
    /// 2. Exception rules prevail over any other matching rule; the public
    ///    suffix is then the exception rule minus its leftmost label.
    /// 3. If no rule matches, the prevailing rule is `*` (the TLD itself).
    fn suffix_len(&self, labels_rev: &[&str]) -> usize {
        let mut node = &self.root;
        let mut best = 1; // implicit `*` rule
        for (depth, label) in labels_rev.iter().enumerate() {
            // Wildcard at the current node covers `labels_rev[depth]`.
            if node.wildcard {
                if node.exceptions.iter().any(|e| e == label) {
                    // Exception: public suffix is the wildcard's parent
                    // path, i.e. `depth` labels.
                    best = best.max(depth);
                } else {
                    best = best.max(depth + 1);
                }
            }
            match node.children.get(*label) {
                Some(child) => {
                    if child.terminal == Some(RuleKind::Normal) {
                        best = best.max(depth + 1);
                    }
                    node = child;
                }
                None => return best,
            }
        }
        // Wildcard exactly at the end: `*.ck` does not match bare `ck`,
        // so nothing more to do here.
        best
    }

    /// Split a hostname into public suffix and registrable domain.
    ///
    /// Returns `None` for hostnames that cannot carry a registrable domain
    /// at all: empty input, a lone dot, hosts with empty labels, or IP
    /// addresses (we treat all-numeric final labels as IPs, as the PSL
    /// algorithm requires hostnames).
    ///
    /// ```
    /// use consent_psl::PublicSuffixList;
    /// let psl = PublicSuffixList::embedded();
    /// let parts = psl.split("foo.example.github.io").unwrap();
    /// assert_eq!(parts.public_suffix, "github.io");
    /// assert_eq!(parts.registrable, Some("example.github.io"));
    /// ```
    pub fn split<'a>(&self, host: &'a str) -> Option<DomainParts<'a>> {
        let host = host.strip_suffix('.').unwrap_or(host);
        if host.is_empty() {
            return None;
        }
        let labels: Vec<&str> = host.split('.').collect();
        if labels.iter().any(|l| l.is_empty()) {
            return None;
        }
        // Reject IPv4 literals: every label numeric.
        if labels.iter().all(|l| l.bytes().all(|b| b.is_ascii_digit())) {
            return None;
        }
        // Reject IPv6 literals / ports smuggled in.
        if host.contains(':') || host.contains('[') {
            return None;
        }
        let lower: Vec<String> = labels.iter().map(|l| l.to_ascii_lowercase()).collect();
        let labels_rev: Vec<&str> = lower.iter().rev().map(String::as_str).collect();
        let sfx = self.suffix_len(&labels_rev).min(labels.len());

        let suffix_start = byte_offset_of_last_n_labels(host, sfx);
        let public_suffix = &host[suffix_start..];
        let registrable = if labels.len() > sfx {
            let start = byte_offset_of_last_n_labels(host, sfx + 1);
            Some(&host[start..])
        } else {
            None
        };
        Some(DomainParts {
            public_suffix,
            registrable,
        })
    }

    /// The registrable domain (eTLD+1) of `host`, lowercased — the unit the
    /// paper counts CMP adoption by. `None` when the host is itself a
    /// public suffix or not a valid hostname.
    pub fn registrable_domain(&self, host: &str) -> Option<String> {
        self.split(host)?
            .registrable
            .map(|d| d.to_ascii_lowercase())
    }

    /// The public suffix of `host`, lowercased.
    pub fn public_suffix(&self, host: &str) -> Option<String> {
        Some(self.split(host)?.public_suffix.to_ascii_lowercase())
    }
}

fn descend<'a>(mut node: &'a mut Node, labels: &[String]) -> &'a mut Node {
    for label in labels {
        node = node.children.entry(label.clone()).or_default();
    }
    node
}

/// Byte offset where the last `n` dot-separated labels of `s` begin.
fn byte_offset_of_last_n_labels(s: &str, n: usize) -> usize {
    let mut seen = 0;
    for (i, b) in s.bytes().enumerate().rev() {
        if b == b'.' {
            seen += 1;
            if seen == n {
                return i + 1;
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PublicSuffixList {
        PublicSuffixList::from_text(
            "// test list\ncom\nuk\nco.uk\ngithub.io\n*.ck\n!www.ck\njp\n*.kawasaki.jp\n!city.kawasaki.jp\n",
        )
    }

    #[test]
    fn counts_rules() {
        let psl = tiny();
        assert_eq!(psl.len(), 9);
        assert!(!psl.is_empty());
        assert!(PublicSuffixList::from_text("// nothing\n").is_empty());
    }

    #[test]
    fn basic_splits() {
        let psl = tiny();
        assert_eq!(
            psl.registrable_domain("example.com").as_deref(),
            Some("example.com")
        );
        assert_eq!(
            psl.registrable_domain("www.example.com").as_deref(),
            Some("example.com")
        );
        assert_eq!(
            psl.registrable_domain("a.b.example.co.uk").as_deref(),
            Some("example.co.uk")
        );
        assert_eq!(
            psl.public_suffix("a.b.example.co.uk").as_deref(),
            Some("co.uk")
        );
    }

    #[test]
    fn suffix_itself_has_no_registrable() {
        let psl = tiny();
        let parts = psl.split("co.uk").unwrap();
        assert_eq!(parts.public_suffix, "co.uk");
        assert_eq!(parts.registrable, None);
        assert_eq!(psl.registrable_domain("com"), None);
    }

    #[test]
    fn private_suffix_github_io() {
        // The paper's own example: foo.example.github.io → example.github.io.
        let psl = tiny();
        assert_eq!(
            psl.registrable_domain("foo.example.github.io").as_deref(),
            Some("example.github.io")
        );
    }

    #[test]
    fn wildcard_and_exception() {
        let psl = tiny();
        // *.ck: "anything.ck" is a public suffix.
        assert_eq!(psl.registrable_domain("foo.ck"), None);
        assert_eq!(
            psl.registrable_domain("bar.foo.ck").as_deref(),
            Some("bar.foo.ck")
        );
        // !www.ck: www.ck IS registrable.
        assert_eq!(psl.registrable_domain("www.ck").as_deref(), Some("www.ck"));
        assert_eq!(
            psl.registrable_domain("sub.www.ck").as_deref(),
            Some("www.ck")
        );
        // Japanese geo wildcard with exception.
        assert_eq!(
            psl.registrable_domain("city.kawasaki.jp").as_deref(),
            Some("city.kawasaki.jp")
        );
        assert_eq!(psl.registrable_domain("foo.kawasaki.jp"), None);
        assert_eq!(
            psl.registrable_domain("bar.foo.kawasaki.jp").as_deref(),
            Some("bar.foo.kawasaki.jp")
        );
    }

    #[test]
    fn unknown_tld_uses_star_rule() {
        // No rule matches => prevailing rule is '*': TLD is the suffix.
        let psl = tiny();
        assert_eq!(
            psl.registrable_domain("example.zz").as_deref(),
            Some("example.zz")
        );
        assert_eq!(psl.registrable_domain("zz"), None);
    }

    #[test]
    fn rejects_invalid_hosts() {
        let psl = tiny();
        assert_eq!(psl.split(""), None);
        assert_eq!(psl.split("."), None);
        assert_eq!(psl.split("a..b"), None);
        assert_eq!(psl.split("192.168.0.1"), None);
        assert_eq!(psl.split("[::1]"), None);
    }

    #[test]
    fn case_insensitive_and_trailing_dot() {
        let psl = tiny();
        assert_eq!(
            psl.registrable_domain("WWW.Example.COM.").as_deref(),
            Some("example.com")
        );
    }

    #[test]
    fn embedded_snapshot_loads() {
        let psl = PublicSuffixList::embedded();
        assert!(psl.len() > 50);
        assert_eq!(
            psl.registrable_domain("news.bbc.co.uk").as_deref(),
            Some("bbc.co.uk")
        );
        assert_eq!(
            psl.registrable_domain("cdn.cookielaw.org").as_deref(),
            Some("cookielaw.org")
        );
        assert_eq!(
            psl.registrable_domain("quantcast.mgr.consensu.org")
                .as_deref(),
            Some("consensu.org")
        );
    }
}
