//! Packing: documents in, deduplicated blobs + manifest out.

use std::io;

use consent_checkpoint::validate_name;

use crate::manifest::{BlobRef, BundleSection, Manifest};
use crate::store::BlobStore;

/// One labeled text document destined for a bundle section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BundleDoc {
    /// Label within the section — unique per section, printable ASCII,
    /// no spaces (labels live on manifest lines).
    pub label: String,
    /// Document body.
    pub body: String,
}

impl BundleDoc {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, body: impl Into<String>) -> BundleDoc {
        BundleDoc {
            label: label.into(),
            body: body.into(),
        }
    }
}

/// One named section of documents, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SectionInput {
    /// Section name (checkpoint naming rules).
    pub name: String,
    /// Documents in the order the manifest will list them.
    pub docs: Vec<BundleDoc>,
}

/// Everything a pack writes: metadata plus ordered sections.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BundleInput {
    /// `meta=` lines for the manifest.
    pub meta: Vec<(String, String)>,
    /// Sections in pack order.
    pub sections: Vec<SectionInput>,
}

/// What one [`pack`] call did.
#[derive(Clone, Debug, PartialEq)]
pub struct PackReport {
    /// The manifest as written (its `stats` carry the dedup counts).
    pub manifest: Manifest,
    /// Blobs physically written by this pack.
    pub new_blobs: u64,
    /// References resolved without a write — either duplicated within
    /// this pack or already on disk from a previous one.
    pub deduped_blobs: u64,
}

impl PackReport {
    /// Structural dedup ratio (logical bytes / stored bytes).
    pub fn dedup_ratio(&self) -> f64 {
        self.manifest.stats.dedup_ratio()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        let s = &self.manifest.stats;
        format!(
            "packed {} refs ({} unique blobs, {} written) logical={}B stored={}B dedup={:.2}x",
            s.total_blobs,
            s.unique_blobs,
            self.new_blobs,
            s.logical_bytes,
            s.stored_bytes,
            self.dedup_ratio()
        )
    }
}

fn validate_label(label: &str) -> io::Result<()> {
    let ok = !label.is_empty() && label.bytes().all(|b| (0x21..=0x7e).contains(&b));
    if ok {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid bundle document label: {label:?}"),
        ))
    }
}

/// Write every document of `input` into `store` (write-once, dedup by
/// content address) and atomically publish the manifest.
///
/// Deterministic: the manifest bytes are a pure function of the input —
/// the same documents pack to the same manifest whatever was on disk
/// before, which is what makes "pack at 1/2/4 threads" byte-comparable
/// and a crashed pack safely re-runnable.
pub fn pack(store: &BlobStore, input: &BundleInput) -> io::Result<PackReport> {
    let _span = consent_telemetry::span("bundle.pack");
    let mut manifest = Manifest {
        meta: input.meta.clone(),
        ..Manifest::default()
    };
    let mut new_blobs = 0u64;
    let mut deduped = 0u64;
    for section in &input.sections {
        validate_name(&section.name).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid bundle section name: {e}"),
            )
        })?;
        let mut refs = Vec::with_capacity(section.docs.len());
        let mut seen = std::collections::BTreeSet::new();
        for doc in &section.docs {
            validate_label(&doc.label)?;
            if !seen.insert(doc.label.as_str()) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "duplicate label {:?} in bundle section {}",
                        doc.label, section.name
                    ),
                ));
            }
            let out = store.put(doc.body.as_bytes())?;
            if out.new {
                new_blobs += 1;
            } else {
                deduped += 1;
            }
            refs.push(BlobRef {
                addr: out.addr,
                len: doc.body.len() as u64,
                label: doc.label.clone(),
            });
        }
        manifest.sections.push(BundleSection {
            name: section.name.clone(),
            blobs: refs,
        });
    }
    manifest.compute_stats();
    store.write_manifest(&manifest.serialize())?;
    let s = manifest.stats;
    consent_telemetry::count("bundle.packed", 1);
    consent_telemetry::count("bundle.blobs_written", new_blobs);
    consent_telemetry::count("bundle.blobs_deduped", s.total_blobs - s.unique_blobs);
    consent_telemetry::count("bundle.bytes_logical", s.logical_bytes);
    consent_telemetry::count("bundle.bytes_stored", s.stored_bytes);
    Ok(PackReport {
        manifest,
        new_blobs,
        deduped_blobs: deduped,
    })
}

/// [`pack`] with archive scrubbing: pack, fsck, repair, repeat.
///
/// Storage chaos can fail a pack outright (an injected `EIO`) or —
/// worse — *silently truncate* a blob (a short write reports success
/// and leaves rot in place). Because blobs are write-once and
/// content-addressed, both damage classes are mechanically repairable
/// from the input still in hand: re-run the pack (existing intact blobs
/// are skipped), verify, delete every blob the fsck condemns, and go
/// again. Each round only rewrites the damaged remainder, so under a
/// transient fault rate the loop converges; `max_rounds` bounds it
/// against genuinely dead storage, where the last error (or a
/// scrub-failure summary) is returned instead.
pub fn pack_verified(
    store: &BlobStore,
    input: &BundleInput,
    max_rounds: u32,
) -> io::Result<(PackReport, crate::verify::VerifyReport)> {
    let mut last_err: Option<io::Error> = None;
    for round in 0..max_rounds.max(1) {
        if round > 0 {
            consent_telemetry::count("bundle.scrub.rounds", 1);
        }
        let report = match pack(store, input) {
            Ok(r) => r,
            Err(e) => {
                if e.kind() == io::ErrorKind::InvalidInput {
                    return Err(e); // malformed input never heals
                }
                last_err = Some(e);
                continue;
            }
        };
        let fsck = crate::verify::verify(store)?;
        if fsck.clean() {
            return Ok((report, fsck));
        }
        // Condemned blobs are deleted so the next round's pack rewrites
        // them; a failed delete just leaves the repair for that round.
        let mut repaired = 0u64;
        for bad in fsck.corrupt() {
            if store.remove_blob(&bad.addr).is_ok() {
                repaired += 1;
            }
        }
        for stem in &fsck.orphans {
            if store.remove_orphan(stem).is_ok() {
                repaired += 1;
            }
        }
        consent_telemetry::count("bundle.scrub.repaired", repaired);
        last_err = Some(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "bundle fsck found {} damaged refs, {} orphans",
                fsck.corrupt().len(),
                fsck.orphans.len()
            ),
        ));
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("bundle pack made no attempt")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "consent-bundle-pack-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_input() -> BundleInput {
        BundleInput {
            meta: vec![("day".into(), "2020-05-15".into())],
            sections: vec![
                SectionInput {
                    name: "state".into(),
                    docs: vec![BundleDoc::new("capture-db", "#db v3\nrow\n")],
                },
                SectionInput {
                    name: "artifacts".into(),
                    docs: vec![
                        BundleDoc::new("req/a.example", "GET /\n"),
                        BundleDoc::new("req/b.example", "GET /\n"),
                        BundleDoc::new("req/c.example", "GET /other\n"),
                    ],
                },
            ],
        }
    }

    #[test]
    fn pack_writes_blobs_and_manifest() {
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        let report = pack(&store, &sample_input()).unwrap();
        assert_eq!(report.manifest.stats.total_blobs, 4);
        assert_eq!(report.manifest.stats.unique_blobs, 3, "a==b dedups");
        assert_eq!(report.new_blobs, 3);
        assert_eq!(report.deduped_blobs, 1);
        assert!(report.dedup_ratio() > 1.0);
        assert!(report.summary().contains("dedup="));
        let text = store.read_manifest().unwrap();
        assert_eq!(Manifest::parse(&text).unwrap(), report.manifest);
        // Every referenced blob is readable.
        for s in &report.manifest.sections {
            for b in &s.blobs {
                assert!(store.get(&b.addr).is_ok(), "{} unreadable", b.label);
            }
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn repack_is_idempotent_and_byte_identical() {
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        let first = pack(&store, &sample_input()).unwrap();
        let second = pack(&store, &sample_input()).unwrap();
        assert_eq!(second.new_blobs, 0, "everything already on disk");
        assert_eq!(second.deduped_blobs, 4);
        assert_eq!(first.manifest.serialize(), second.manifest.serialize());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn pack_verified_repairs_silent_corruption() {
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        let input = sample_input();
        let first = pack(&store, &input).unwrap();
        // Silently rot one blob and plant an orphan — the scrub loop
        // must repair both and converge to a clean fsck.
        let victim = first.manifest.sections[1].blobs[0].addr;
        std::fs::write(store.blob_path(&victim), b"rotted").unwrap();
        store.put(b"stray, unreferenced").unwrap();
        let (report, fsck) = pack_verified(&store, &input, 4).unwrap();
        assert!(fsck.clean(), "{}", fsck.render());
        assert_eq!(report.manifest.serialize(), first.manifest.serialize());
        assert_eq!(store.get(&victim).unwrap(), b"GET /\n");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn pack_verified_survives_injected_io_chaos() {
        use consent_faultsim::{FaultyVfs, IoFaultPlan};
        use std::sync::Arc;
        let dir = tmp_dir();
        // A hostile 10% background fault rate over every op kind —
        // ten times the CI `mild` profile.
        let store =
            BlobStore::with_vfs(&dir, Arc::new(FaultyVfs::new(IoFaultPlan::rate(7, 100)))).unwrap();
        let input = sample_input();
        let (report, fsck) = pack_verified(&store, &input, 16).unwrap();
        assert!(fsck.clean(), "{}", fsck.render());
        // The published bundle is byte-identical to a chaos-free pack.
        let calm_dir = tmp_dir();
        let calm = BlobStore::open(&calm_dir).unwrap();
        let baseline = pack(&calm, &input).unwrap();
        assert_eq!(report.manifest.serialize(), baseline.manifest.serialize());
        std::fs::remove_dir_all(dir).unwrap();
        std::fs::remove_dir_all(calm_dir).unwrap();
    }

    #[test]
    fn pack_rejects_bad_names_and_duplicate_labels() {
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        let mut input = sample_input();
        input.sections[0].name = "Bad Name".into();
        assert!(pack(&store, &input).is_err());
        let mut input = sample_input();
        input.sections[1].docs[1].label = "req/a.example".into();
        assert!(pack(&store, &input)
            .unwrap_err()
            .to_string()
            .contains("duplicate label"));
        let mut input = sample_input();
        input.sections[1].docs[0].label = "has space".into();
        assert!(pack(&store, &input).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
