//! # consent-bundle
//!
//! A content-addressed archival container for campaign outputs — the
//! storage layer behind the "measurements must be reproducible *from
//! the archive*" requirement (Web Execution Bundles, Hantke et al.).
//!
//! A bundle is a directory holding a [`Manifest`] plus a flat
//! blob store: every document (a capture-db section, a per-page request
//! log, an analysis export) is serialized to text, addressed by
//! [`BlobAddr::of`] (FNV-1a 64 over the bytes, paired with a CRC-32
//! check value), and stored once under `blobs/`. Identical documents —
//! the same request skeleton captured on two days, the same cookie set
//! from two vantages, the empty log of every failed load — share one
//! blob; the manifest records each reference and counts the dedup
//! savings ([`BundleStats`]).
//!
//! Three robustness layers sit on top:
//!
//! * [`pack`] writes blobs write-once through the same
//!   [`Vfs`](consent_checkpoint::Vfs) seam the checkpoint store uses
//!   (create temp → write → fsync → rename → dir fsync), so
//!   `consent-faultsim`'s `FaultyVfs` can fail every individual
//!   filesystem operation of a pack (`CONSENT_IO_CHAOS`, honored by
//!   [`open_chaos_bundle`]).
//! * [`verify`] is a full fsck: it re-hashes every blob, re-validates
//!   the manifest's self-CRC and reference counts, and localizes any
//!   corruption to the exact blob *and the section that owns it*
//!   ([`VerifyReport`]).
//! * [`read_section`] + [`first_divergence`] are the replay
//!   primitives: a downstream replayer reconstructs section documents
//!   from the bundle alone, re-runs its analyses, and byte-compares
//!   against the archived exports, failing loudly with a
//!   [`DivergenceReport`] naming the first diverging section, document,
//!   and line.
//!
//! The manifest grammar is specified normatively in `docs/BUNDLES.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod address;
mod manifest;
mod pack;
mod replay;
mod store;
mod verify;

pub use address::{fnv64, BlobAddr};
pub use manifest::{
    BlobRef, BundleSection, BundleStats, Manifest, ManifestError, BUNDLE_HEADER, END_MANIFEST,
};
pub use pack::{pack, pack_verified, BundleDoc, BundleInput, PackReport, SectionInput};
pub use replay::{first_divergence, read_section, DivergenceReport};
pub use store::{open_chaos_bundle, BlobStore, PutOutcome};
pub use verify::{verify, BlobStatus, BlobVerdict, VerifyReport};
