//! The on-disk blob store under a bundle directory.
//!
//! Layout:
//!
//! ```text
//! <bundle>/
//!   MANIFEST                  # self-CRC'd manifest (see manifest.rs)
//!   blobs/<xx>/<addr>.blob    # content-addressed bodies, write-once
//! ```
//!
//! Every durable byte moves through the checkpoint store's
//! [`Vfs`] seam with the same discipline: write to a
//! temp name, fsync the file, rename into place, fsync the directory.
//! Blobs are write-once — `put` of content that already exists on disk
//! is a no-op (the dedup hit), so re-packing after a crash converges
//! instead of rewriting.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use consent_checkpoint::{RealVfs, Vfs};
use consent_faultsim::{FaultyVfs, IoFaultPlan};

use crate::address::BlobAddr;

/// The manifest's filename under the bundle directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// What [`BlobStore::put`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PutOutcome {
    /// The content address of the blob.
    pub addr: BlobAddr,
    /// True if the blob was written; false if identical content was
    /// already on disk (a dedup hit).
    pub new: bool,
}

/// A content-addressed blob store rooted at a bundle directory.
#[derive(Debug)]
pub struct BlobStore {
    root: PathBuf,
    vfs: Arc<dyn Vfs>,
}

impl BlobStore {
    /// Open (creating if needed) a bundle directory with the production
    /// filesystem.
    pub fn open(root: impl AsRef<Path>) -> io::Result<BlobStore> {
        BlobStore::with_vfs(root, Arc::new(RealVfs))
    }

    /// Open with an explicit [`Vfs`] (tests inject `FaultyVfs` here).
    pub fn with_vfs(root: impl AsRef<Path>, vfs: Arc<dyn Vfs>) -> io::Result<BlobStore> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(root.join("blobs"))?;
        Ok(BlobStore { root, vfs })
    }

    /// The bundle directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where a blob with `addr` lives (whether or not it exists yet).
    pub fn blob_path(&self, addr: &BlobAddr) -> PathBuf {
        self.root
            .join("blobs")
            .join(addr.shard())
            .join(format!("{addr}.blob"))
    }

    /// The manifest path.
    pub fn manifest_path(&self) -> PathBuf {
        self.root.join(MANIFEST_FILE)
    }

    /// Store `bytes`, returning its address and whether a write
    /// happened. Write-once: existing content is never touched.
    ///
    /// Each durable step retries through transient faults (counted
    /// under `bundle.write.fault`); a silent short write reports
    /// success here and is caught by the fsck instead, which is
    /// `pack_verified`'s job.
    pub fn put(&self, bytes: &[u8]) -> io::Result<PutOutcome> {
        let addr = BlobAddr::of(bytes);
        let path = self.blob_path(&addr);
        if path.is_file() {
            return Ok(PutOutcome { addr, new: false });
        }
        let dir = path.parent().expect("blob path has a shard directory");
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{addr}.tmp"));
        retry_write(|| self.vfs.write(&tmp, bytes))?;
        retry_write(|| self.vfs.sync(&tmp))?;
        retry_write(|| self.vfs.rename(&tmp, &path))?;
        retry_write(|| self.vfs.dir_sync(dir))?;
        Ok(PutOutcome { addr, new: true })
    }

    /// Read the blob at `addr` (whatever bytes are on disk — callers
    /// that care about integrity re-hash, which is `verify`'s job).
    pub fn get(&self, addr: &BlobAddr) -> io::Result<Vec<u8>> {
        self.vfs.read(&self.blob_path(addr))
    }

    /// Remove the blob at `addr` — the scrub path's repair primitive
    /// (delete the damaged copy so the next pack rewrites it).
    pub fn remove_blob(&self, addr: &BlobAddr) -> io::Result<()> {
        retry_write(|| self.vfs.remove_file(&self.blob_path(addr)))
    }

    /// Remove an orphaned blob file by its filename stem (as reported
    /// by [`BlobStore::list_blobs`]); the shard directory is the stem's
    /// first two hex digits.
    pub fn remove_orphan(&self, stem: &str) -> io::Result<()> {
        let shard = stem.get(..2).unwrap_or("00");
        let path = self
            .root
            .join("blobs")
            .join(shard)
            .join(format!("{stem}.blob"));
        retry_write(|| self.vfs.remove_file(&path))
    }

    /// Atomically replace the manifest.
    pub fn write_manifest(&self, text: &str) -> io::Result<()> {
        let tmp = self.root.join("MANIFEST.tmp");
        retry_write(|| self.vfs.write(&tmp, text.as_bytes()))?;
        retry_write(|| self.vfs.sync(&tmp))?;
        retry_write(|| self.vfs.rename(&tmp, &self.manifest_path()))?;
        retry_write(|| self.vfs.dir_sync(&self.root))?;
        Ok(())
    }

    /// Read the manifest text.
    pub fn read_manifest(&self) -> io::Result<String> {
        let bytes = self.vfs.read(&self.manifest_path())?;
        String::from_utf8(bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "manifest is not UTF-8"))
    }

    /// Every `*.blob` filename stem on disk, sorted — the physical side
    /// of the fsck's orphan check. Directory enumeration is read-only
    /// and goes straight to `std::fs` (the [`Vfs`] seam covers durable
    /// writes, not listing).
    pub fn list_blobs(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        let blobs = self.root.join("blobs");
        for shard in std::fs::read_dir(&blobs)? {
            let shard = shard?.path();
            if !shard.is_dir() {
                continue;
            }
            for entry in std::fs::read_dir(&shard)? {
                let path = entry?.path();
                if path.extension().is_some_and(|e| e == "blob") {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        out.push(stem.to_string());
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

/// Retry one filesystem operation through transient injected faults,
/// counting each absorbed fault under `counter`.
///
/// Background-rate chaos (`CONSENT_IO_CHAOS=mild`) faults each
/// operation index independently, so every rate fault is transient by
/// construction — a bounded retry lands on a fresh index and succeeds.
/// Three attempts push the per-operation failure probability from 1%
/// to 1e-6 under the mild profile without masking genuinely dead
/// storage (a persistent `ENOSPC` still surfaces after the budget).
fn retry_io<T>(counter: &'static str, mut attempt: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut last = None;
    for _ in 0..3 {
        match attempt() {
            Ok(v) => return Ok(v),
            Err(e) => {
                consent_telemetry::count(counter, 1);
                last = Some(e);
            }
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// [`retry_io`] for the read paths (`get`, manifest and blob reads
/// during verify/replay).
pub(crate) fn retry_read<T>(attempt: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    retry_io("bundle.read.fault", attempt)
}

/// [`retry_io`] for the durable write paths (`put`, manifest publish,
/// scrub deletes). Without this, a single transient fault anywhere in
/// a several-hundred-operation pack fails the whole round; with it,
/// only multi-fault bursts on one operation escalate to the scrub
/// loop's pack-level retry.
fn retry_write<T>(attempt: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    retry_io("bundle.write.fault", attempt)
}

/// Open a bundle store honoring the `CONSENT_IO_CHAOS` environment
/// variable, mirroring the checkpoint store's `open_chaos_store`: with
/// a plan set, the filesystem seam injects the scheduled storage
/// faults; without one this is exactly [`BlobStore::open`].
pub fn open_chaos_bundle(dir: impl AsRef<Path>) -> io::Result<BlobStore> {
    let plan = IoFaultPlan::from_env();
    if plan.is_none() {
        BlobStore::open(dir)
    } else {
        BlobStore::with_vfs(dir, Arc::new(FaultyVfs::new(plan)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "consent-bundle-store-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn put_get_round_trips() {
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        let out = store.put(b"hello bundle\n").unwrap();
        assert!(out.new);
        assert_eq!(store.get(&out.addr).unwrap(), b"hello bundle\n");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn identical_content_is_stored_once() {
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        let a = store.put(b"same bytes").unwrap();
        let b = store.put(b"same bytes").unwrap();
        assert!(a.new);
        assert!(!b.new, "second put is a dedup hit");
        assert_eq!(a.addr, b.addr);
        assert_eq!(store.list_blobs().unwrap().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn no_temp_files_survive_a_put() {
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        store.put(b"one").unwrap();
        store.put(b"two").unwrap();
        store.write_manifest("m\n").unwrap();
        let mut stack = vec![dir.clone()];
        while let Some(d) = stack.pop() {
            for e in std::fs::read_dir(&d).unwrap() {
                let p = e.unwrap().path();
                if p.is_dir() {
                    stack.push(p);
                } else {
                    assert!(
                        p.extension().is_none_or(|e| e != "tmp"),
                        "leftover temp file {p:?}"
                    );
                }
            }
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn manifest_round_trips_and_replaces() {
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        store.write_manifest("first\n").unwrap();
        store.write_manifest("second\n").unwrap();
        assert_eq!(store.read_manifest().unwrap(), "second\n");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn list_blobs_is_sorted_and_complete() {
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        let mut want: Vec<String> = ["a", "b", "c", "d"]
            .iter()
            .map(|s| store.put(s.as_bytes()).unwrap().addr.to_string())
            .collect();
        want.sort();
        assert_eq!(store.list_blobs().unwrap(), want);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
