//! Replay primitives: reconstruct section documents and byte-compare.
//!
//! The bundle crate stays analysis-agnostic — it reconstructs the
//! archived documents and pinpoints divergence; *what* to recompute is
//! the replayer's business (the crawler's `archive` module re-imports
//! campaign state and re-runs the `experiments::*` exports through a
//! provider callback).

use std::fmt;
use std::io;

use crate::manifest::Manifest;
use crate::pack::BundleDoc;
use crate::store::BlobStore;

/// The first point where a recomputed document differs from the
/// archived one. "Failing loudly" means naming the section, the
/// document, the 1-based line, and both sides of the disagreement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DivergenceReport {
    /// Owning manifest section.
    pub section: String,
    /// Document label within the section.
    pub label: String,
    /// 1-based line number of the first differing line.
    pub line: usize,
    /// The archived line (`None` when the recomputed document is
    /// longer).
    pub expected: Option<String>,
    /// The recomputed line (`None` when the archived document is
    /// longer).
    pub actual: Option<String>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |side: &Option<String>| match side {
            Some(s) => format!("{s:?}"),
            None => "<absent>".to_string(),
        };
        write!(
            f,
            "replay divergence in {}/{} line {}: archived {} vs recomputed {}",
            self.section,
            self.label,
            self.line,
            show(&self.expected),
            show(&self.actual)
        )
    }
}

/// Byte-compare two documents, returning the first diverging line.
///
/// Byte-identical inputs (the goal state) return `None`. Inputs that
/// differ only in trailing bytes after the last newline still diverge —
/// the comparison is over raw lines, then total length.
pub fn first_divergence(
    section: &str,
    label: &str,
    expected: &str,
    actual: &str,
) -> Option<DivergenceReport> {
    if expected == actual {
        return None;
    }
    let mut exp = expected.lines();
    let mut act = actual.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (exp.next(), act.next()) {
            (None, None) => {
                // Same lines, different bytes (e.g. a missing trailing
                // newline): report at the position past the last line.
                return Some(DivergenceReport {
                    section: section.to_string(),
                    label: label.to_string(),
                    line,
                    expected: Some(format!("<{} bytes>", expected.len())),
                    actual: Some(format!("<{} bytes>", actual.len())),
                });
            }
            (e, a) if e != a => {
                return Some(DivergenceReport {
                    section: section.to_string(),
                    label: label.to_string(),
                    line,
                    expected: e.map(str::to_string),
                    actual: a.map(str::to_string),
                });
            }
            _ => {}
        }
    }
}

/// Reconstruct every document of `section` from the blob store, in
/// manifest order. Unknown sections yield an empty list (a bundle may
/// legitimately omit optional sections); unreadable or mismatched
/// blobs are an error — run `verify` to localize them.
pub fn read_section(
    store: &BlobStore,
    manifest: &Manifest,
    section: &str,
) -> io::Result<Vec<BundleDoc>> {
    let Some(sec) = manifest.section(section) else {
        return Ok(Vec::new());
    };
    let mut docs = Vec::with_capacity(sec.blobs.len());
    for b in &sec.blobs {
        let bytes = crate::store::retry_read(|| store.get(&b.addr)).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("bundle section {section}/{}: {e}", b.label),
            )
        })?;
        let body = String::from_utf8(bytes).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bundle section {section}/{} is not UTF-8", b.label),
            )
        })?;
        docs.push(BundleDoc {
            label: b.label.clone(),
            body,
        });
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{pack, BundleInput, SectionInput};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "consent-bundle-replay-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn identical_documents_do_not_diverge() {
        assert!(first_divergence("s", "l", "a\nb\n", "a\nb\n").is_none());
        assert!(first_divergence("s", "l", "", "").is_none());
    }

    #[test]
    fn divergence_names_the_first_differing_line() {
        let d = first_divergence("analysis", "timelines", "a\nb\nc\n", "a\nX\nc\n").unwrap();
        assert_eq!(
            (d.section.as_str(), d.label.as_str()),
            ("analysis", "timelines")
        );
        assert_eq!(d.line, 2);
        assert_eq!(d.expected.as_deref(), Some("b"));
        assert_eq!(d.actual.as_deref(), Some("X"));
        assert!(d.to_string().contains("line 2"));
    }

    #[test]
    fn length_divergence_reports_the_absent_side() {
        let d = first_divergence("s", "l", "a\n", "a\nb\n").unwrap();
        assert_eq!(d.line, 2);
        assert_eq!(d.expected, None);
        assert_eq!(d.actual.as_deref(), Some("b"));
        assert!(d.to_string().contains("<absent>"));

        // Same lines, different trailing bytes.
        let d = first_divergence("s", "l", "a\n", "a").unwrap();
        assert!(d.expected.unwrap().contains("bytes"));
    }

    #[test]
    fn read_section_round_trips_documents() {
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        let input = BundleInput {
            meta: vec![],
            sections: vec![SectionInput {
                name: "analysis".into(),
                docs: vec![
                    BundleDoc::new("timelines", "t1\nt2\n"),
                    BundleDoc::new("quality", "total=5\n"),
                ],
            }],
        };
        let report = pack(&store, &input).unwrap();
        let docs = read_section(&store, &report.manifest, "analysis").unwrap();
        assert_eq!(docs, input.sections[0].docs);
        assert!(read_section(&store, &report.manifest, "absent")
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
