//! Content addresses: FNV-1a 64 paired with a CRC-32 check value.
//!
//! The primary address is the 64-bit FNV-1a hash of the blob's bytes —
//! cheap, dependency-free, and stable across platforms. FNV is not
//! collision-resistant, so every address carries the blob's CRC-32
//! (the same polynomial the checkpoint container uses) as an
//! independent check value: a collision would have to defeat both
//! functions *and* the recorded length simultaneously, and `verify`
//! recomputes all three. This is an integrity scheme against disk rot,
//! not an authentication scheme against adversaries — the threat model
//! of an archival store on trusted hardware.

use std::fmt;

use consent_util::crc32;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The content address of one blob: FNV-1a 64 plus CRC-32.
///
/// Rendered as `<fnv:016x>-<crc:08x>` — 25 characters, filesystem-safe,
/// and what blob filenames and manifest `blob=` lines carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobAddr {
    /// FNV-1a 64 of the content.
    pub fnv: u64,
    /// CRC-32 of the content (independent check value).
    pub crc: u32,
}

impl BlobAddr {
    /// Address `bytes`.
    pub fn of(bytes: &[u8]) -> BlobAddr {
        BlobAddr {
            fnv: fnv64(bytes),
            crc: crc32(bytes),
        }
    }

    /// Parse the `<fnv:016x>-<crc:08x>` rendering.
    pub fn parse(s: &str) -> Option<BlobAddr> {
        let (f, c) = s.split_once('-')?;
        if f.len() != 16 || c.len() != 8 {
            return None;
        }
        Some(BlobAddr {
            fnv: u64::from_str_radix(f, 16).ok()?,
            crc: u32::from_str_radix(c, 16).ok()?,
        })
    }

    /// The two-hex-digit shard prefix blob files are grouped under
    /// (`blobs/<prefix>/<addr>.blob`), from the address's top byte.
    pub fn shard(&self) -> String {
        format!("{:02x}", (self.fnv >> 56) as u8)
    }
}

impl fmt::Display for BlobAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}-{:08x}", self.fnv, self.crc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn address_round_trips_through_display() {
        let addr = BlobAddr::of(b"some blob body\n");
        let parsed = BlobAddr::parse(&addr.to_string()).unwrap();
        assert_eq!(parsed, addr);
        assert_eq!(addr.to_string().len(), 25);
    }

    #[test]
    fn parse_rejects_malformed_addresses() {
        assert!(BlobAddr::parse("").is_none());
        assert!(BlobAddr::parse("deadbeef").is_none());
        assert!(BlobAddr::parse("deadbeef-deadbeef").is_none());
        assert!(BlobAddr::parse("zzzzzzzzzzzzzzzz-00000000").is_none());
        let ok = BlobAddr::parse("00000000000000ff-0000ffff").unwrap();
        assert_eq!((ok.fnv, ok.crc), (0xff, 0xffff));
    }

    #[test]
    fn distinct_content_gets_distinct_addresses() {
        let a = BlobAddr::of(b"a");
        let b = BlobAddr::of(b"b");
        assert_ne!(a, b);
        assert_eq!(BlobAddr::of(b"a"), a, "addressing is pure");
    }

    #[test]
    fn shard_prefix_is_two_hex_digits() {
        let addr = BlobAddr::of(b"shard me");
        let shard = addr.shard();
        assert_eq!(shard.len(), 2);
        assert!(addr.to_string().starts_with(&shard));
    }
}
