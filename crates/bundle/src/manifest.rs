//! The bundle manifest: a self-CRC'd text index of every blob.
//!
//! Grammar (normative copy in `docs/BUNDLES.md`):
//!
//! ```text
//! #consent-bundle v1
//! meta=<key> <value>                         # zero or more
//! section=<name> blobs=<n> bytes=<len>       # one per section, in order
//! blob=<addr> <len> <label>                  #   n reference lines
//! stats total=<n> unique=<n> logical=<b> stored=<b>
//! manifest_crc=<crc32:08x>                   # CRC of everything above
//! #end-manifest
//! ```
//!
//! The layout deliberately mirrors the checkpoint container's header:
//! ordered `section=` declarations with per-item lengths, closed by a
//! self-CRC over every prior byte — so the manifest detects its own
//! corruption exactly the way a checkpoint header does, and `verify`
//! can localize a flipped byte to "the manifest" as precisely as to
//! any blob.

use std::fmt;

use consent_util::crc32;

use crate::address::BlobAddr;

/// First line of every manifest.
pub const BUNDLE_HEADER: &str = "#consent-bundle v1";
/// Last line of every manifest.
pub const END_MANIFEST: &str = "#end-manifest";

/// One reference from a section to a blob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlobRef {
    /// Content address of the referenced blob.
    pub addr: BlobAddr,
    /// Byte length of the content (recorded so fsck can distinguish
    /// truncation from bit rot without reading anything else).
    pub len: u64,
    /// The document label within the owning section (e.g.
    /// `req/2020-05-15/eu-fast-enus/travel.example`).
    pub label: String,
}

/// One named, ordered group of blob references.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BundleSection {
    /// Section name (checkpoint-style: lowercase, digits, `-_.`).
    pub name: String,
    /// References in document order.
    pub blobs: Vec<BlobRef>,
}

impl BundleSection {
    /// Total logical bytes referenced by this section.
    pub fn bytes(&self) -> u64 {
        self.blobs.iter().map(|b| b.len).sum()
    }
}

/// Dedup accounting across the whole bundle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BundleStats {
    /// Blob references across every section.
    pub total_blobs: u64,
    /// Distinct content addresses among them.
    pub unique_blobs: u64,
    /// Bytes the bundle *represents* (sum over references).
    pub logical_bytes: u64,
    /// Bytes actually on disk (sum over distinct addresses).
    pub stored_bytes: u64,
}

impl BundleStats {
    /// Structural dedup ratio: logical over stored bytes (1.0 when
    /// nothing repeats; an empty bundle reports 1.0).
    pub fn dedup_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// Why a manifest failed to parse or validate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line of the offending input (0 for whole-file problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.message)
    }
}

fn err(line: usize, message: impl Into<String>) -> ManifestError {
    ManifestError {
        line,
        message: message.into(),
    }
}

/// The parsed (or to-be-serialized) bundle index.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Free-form metadata (`meta=<key> <value>` lines), in order.
    pub meta: Vec<(String, String)>,
    /// Sections in pack order.
    pub sections: Vec<BundleSection>,
    /// Dedup accounting, recomputed on serialize and cross-checked on
    /// parse.
    pub stats: BundleStats,
}

impl Manifest {
    /// Recompute [`BundleStats`] from the current sections.
    pub fn compute_stats(&mut self) {
        let mut stats = BundleStats::default();
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.sections {
            for b in &s.blobs {
                stats.total_blobs += 1;
                stats.logical_bytes += b.len;
                if seen.insert(b.addr) {
                    stats.unique_blobs += 1;
                    stats.stored_bytes += b.len;
                }
            }
        }
        self.stats = stats;
    }

    /// Look up a section by name.
    pub fn section(&self, name: &str) -> Option<&BundleSection> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Serialize to the manifest text (with a freshly computed
    /// self-CRC).
    pub fn serialize(&self) -> String {
        let mut body = String::new();
        body.push_str(BUNDLE_HEADER);
        body.push('\n');
        for (k, v) in &self.meta {
            body.push_str(&format!("meta={k} {v}\n"));
        }
        for s in &self.sections {
            body.push_str(&format!(
                "section={} blobs={} bytes={}\n",
                s.name,
                s.blobs.len(),
                s.bytes()
            ));
            for b in &s.blobs {
                body.push_str(&format!("blob={} {} {}\n", b.addr, b.len, b.label));
            }
        }
        body.push_str(&format!(
            "stats total={} unique={} logical={} stored={}\n",
            self.stats.total_blobs,
            self.stats.unique_blobs,
            self.stats.logical_bytes,
            self.stats.stored_bytes
        ));
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("manifest_crc={crc:08x}\n"));
        body.push_str(END_MANIFEST);
        body.push('\n');
        body
    }

    /// Parse and validate manifest text: self-CRC, line grammar,
    /// per-section blob counts and byte totals, stats cross-check.
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        // Locate the CRC line first so the checksum covers exactly the
        // bytes above it.
        let crc_at = text
            .find("\nmanifest_crc=")
            .ok_or_else(|| err(0, "missing manifest_crc line"))?;
        let covered = &text[..crc_at + 1];
        let rest = &text[crc_at + 1..];
        let mut tail = rest.lines();
        let crc_line = tail.next().unwrap_or_default();
        let declared = crc_line
            .strip_prefix("manifest_crc=")
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| err(0, format!("malformed crc line: {crc_line:?}")))?;
        let actual = crc32(covered.as_bytes());
        if declared != actual {
            return Err(err(
                0,
                format!("manifest_crc mismatch: declared {declared:08x}, computed {actual:08x}"),
            ));
        }
        if tail.next() != Some(END_MANIFEST) {
            return Err(err(0, format!("missing {END_MANIFEST} terminator")));
        }

        let mut lines = covered.lines().enumerate();
        let (_, first) = lines.next().ok_or_else(|| err(0, "empty manifest"))?;
        if first != BUNDLE_HEADER {
            return Err(err(1, format!("bad header: {first:?}")));
        }
        let mut m = Manifest::default();
        let mut declared_stats: Option<BundleStats> = None;
        let mut open: Option<(BundleSection, u64, u64)> = None; // (section, want_blobs, want_bytes)
        let close = |m: &mut Manifest,
                     open: Option<(BundleSection, u64, u64)>,
                     at: usize|
         -> Result<(), ManifestError> {
            if let Some((s, want_blobs, want_bytes)) = open {
                if s.blobs.len() as u64 != want_blobs {
                    return Err(err(
                        at,
                        format!(
                            "section {} declares {} blobs but lists {}",
                            s.name,
                            want_blobs,
                            s.blobs.len()
                        ),
                    ));
                }
                if s.bytes() != want_bytes {
                    return Err(err(
                        at,
                        format!(
                            "section {} declares {} bytes but lists {}",
                            s.name,
                            want_bytes,
                            s.bytes()
                        ),
                    ));
                }
                m.sections.push(s);
            }
            Ok(())
        };
        for (i, line) in lines {
            let at = i + 1;
            if let Some(rest) = line.strip_prefix("meta=") {
                let (k, v) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(at, format!("malformed meta line: {line:?}")))?;
                m.meta.push((k.to_string(), v.to_string()));
            } else if let Some(rest) = line.strip_prefix("section=") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap_or_default();
                let blobs = parts
                    .next()
                    .and_then(|p| p.strip_prefix("blobs="))
                    .and_then(|n| n.parse().ok());
                let bytes = parts
                    .next()
                    .and_then(|p| p.strip_prefix("bytes="))
                    .and_then(|n| n.parse().ok());
                let (Some(blobs), Some(bytes), None) = (blobs, bytes, parts.next()) else {
                    return Err(err(at, format!("malformed section line: {line:?}")));
                };
                close(&mut m, open.take(), at)?;
                if m.sections.iter().any(|s| s.name == name) {
                    return Err(err(at, format!("duplicate section {name}")));
                }
                open = Some((
                    BundleSection {
                        name: name.to_string(),
                        blobs: Vec::new(),
                    },
                    blobs,
                    bytes,
                ));
            } else if let Some(rest) = line.strip_prefix("blob=") {
                let mut parts = rest.splitn(3, ' ');
                let addr = parts.next().and_then(BlobAddr::parse);
                let len = parts.next().and_then(|n| n.parse().ok());
                let label = parts.next();
                let (Some(addr), Some(len), Some(label)) = (addr, len, label) else {
                    return Err(err(at, format!("malformed blob line: {line:?}")));
                };
                let Some((s, _, _)) = open.as_mut() else {
                    return Err(err(at, "blob line outside any section"));
                };
                s.blobs.push(BlobRef {
                    addr,
                    len,
                    label: label.to_string(),
                });
            } else if let Some(rest) = line.strip_prefix("stats ") {
                close(&mut m, open.take(), at)?;
                let mut want = BundleStats::default();
                for part in rest.split(' ') {
                    let (k, v) = part
                        .split_once('=')
                        .ok_or_else(|| err(at, format!("malformed stats line: {line:?}")))?;
                    let v: u64 = v
                        .parse()
                        .map_err(|_| err(at, format!("malformed stats value: {part:?}")))?;
                    match k {
                        "total" => want.total_blobs = v,
                        "unique" => want.unique_blobs = v,
                        "logical" => want.logical_bytes = v,
                        "stored" => want.stored_bytes = v,
                        _ => return Err(err(at, format!("unknown stats field: {k}"))),
                    }
                }
                declared_stats = Some(want);
            } else {
                return Err(err(at, format!("unrecognized line: {line:?}")));
            }
        }
        close(&mut m, open.take(), 0)?;
        let declared_stats = declared_stats.ok_or_else(|| err(0, "missing stats line"))?;
        m.compute_stats();
        if m.stats != declared_stats {
            return Err(err(
                0,
                format!(
                    "stats mismatch: declared {declared_stats:?}, computed {:?}",
                    m.stats
                ),
            ));
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let doc_a = b"request log a\n";
        let doc_b = b"cookie set b\n";
        let mut m = Manifest {
            meta: vec![
                ("day".into(), "2020-05-15".into()),
                ("seed".into(), "9".into()),
            ],
            sections: vec![
                BundleSection {
                    name: "artifacts".into(),
                    blobs: vec![
                        BlobRef {
                            addr: BlobAddr::of(doc_a),
                            len: doc_a.len() as u64,
                            label: "req/a.example".into(),
                        },
                        BlobRef {
                            addr: BlobAddr::of(doc_a),
                            len: doc_a.len() as u64,
                            label: "req/b.example".into(),
                        },
                    ],
                },
                BundleSection {
                    name: "state".into(),
                    blobs: vec![BlobRef {
                        addr: BlobAddr::of(doc_b),
                        len: doc_b.len() as u64,
                        label: "capture-db".into(),
                    }],
                },
            ],
            stats: BundleStats::default(),
        };
        m.compute_stats();
        m
    }

    #[test]
    fn serialize_parse_round_trips() {
        let m = sample();
        let text = m.serialize();
        assert!(text.starts_with(BUNDLE_HEADER));
        assert!(text.ends_with(&format!("{END_MANIFEST}\n")));
        let back = Manifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.serialize(), text, "byte-stable");
    }

    #[test]
    fn stats_count_dedup_savings() {
        let m = sample();
        assert_eq!(m.stats.total_blobs, 3);
        assert_eq!(m.stats.unique_blobs, 2, "doc_a referenced twice");
        assert!(m.stats.logical_bytes > m.stats.stored_bytes);
        assert!(m.stats.dedup_ratio() > 1.0);
        assert_eq!(BundleStats::default().dedup_ratio(), 1.0);
    }

    #[test]
    fn any_flipped_byte_fails_the_self_crc() {
        let text = m_text();
        for at in 0..text.len() - END_MANIFEST.len() - 1 {
            let mut bad = text.clone().into_bytes();
            bad[at] ^= 0x01;
            let Ok(bad) = String::from_utf8(bad) else {
                continue;
            };
            assert!(
                Manifest::parse(&bad).is_err(),
                "flip at byte {at} went undetected"
            );
        }
    }

    fn m_text() -> String {
        sample().serialize()
    }

    #[test]
    fn parse_rejects_count_and_byte_lies() {
        let text = m_text();
        // Fix up the CRC after each mutation so only the *semantic*
        // check can catch it.
        let relabel = |text: &str, from: &str, to: &str| {
            let body = text.replace(from, to);
            let cut = body.find("\nmanifest_crc=").unwrap() + 1;
            let crc = crc32(body[..cut].as_bytes());
            format!("{}manifest_crc={crc:08x}\n{END_MANIFEST}\n", &body[..cut])
        };
        let lie = relabel(&text, "blobs=2", "blobs=3");
        assert!(Manifest::parse(&lie)
            .unwrap_err()
            .message
            .contains("declares 3 blobs"));
        let lie = relabel(&text, "stats total=3", "stats total=4");
        assert!(Manifest::parse(&lie)
            .unwrap_err()
            .message
            .contains("stats mismatch"));
    }

    #[test]
    fn parse_rejects_structural_damage() {
        assert!(Manifest::parse("").is_err());
        assert!(Manifest::parse("#consent-bundle v1\n").is_err());
        let text = m_text();
        let truncated = &text[..text.len() - 5];
        assert!(Manifest::parse(truncated).is_err());
        // Duplicate section name.
        let mut m = sample();
        m.sections[1].name = "artifacts".into();
        m.compute_stats();
        assert!(Manifest::parse(&m.serialize())
            .unwrap_err()
            .message
            .contains("duplicate section"));
    }

    #[test]
    fn section_lookup_finds_by_name() {
        let m = sample();
        assert_eq!(m.section("state").unwrap().blobs.len(), 1);
        assert!(m.section("missing").is_none());
    }
}
