//! `bundle verify`: a full fsck of a packed bundle.
//!
//! Re-reads the manifest (self-CRC + grammar + stats cross-check),
//! re-hashes every referenced blob (length, CRC-32, FNV-1a — all three
//! must match the address), and sweeps the blob directory for orphans.
//! Corruption is *localized*: every verdict names the owning section,
//! the document label, and the exact blob file, so an operator can tell
//! "one request log of one domain rotted" from "the archive is gone".
//!
//! Verification never panics and never aborts early — a bundle with
//! twelve bad blobs yields twelve verdicts, not one error.

use std::collections::BTreeMap;
use std::io;

use consent_util::{crc32, Json};

use crate::address::{fnv64, BlobAddr};
use crate::manifest::Manifest;
use crate::store::BlobStore;

/// The fsck verdict for one blob reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlobStatus {
    /// Bytes on disk hash back to the address and match the length.
    Ok,
    /// The blob file could not be read at all.
    Unreadable(String),
    /// The bytes on disk do not match the address (detail says how).
    Corrupt(String),
}

/// One verified manifest reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlobVerdict {
    /// Owning section.
    pub section: String,
    /// Document label within the section.
    pub label: String,
    /// The address the manifest declares.
    pub addr: BlobAddr,
    /// The verdict.
    pub status: BlobStatus,
}

impl BlobVerdict {
    /// One-line rendering (`section/label addr: verdict`).
    pub fn describe(&self) -> String {
        let status = match &self.status {
            BlobStatus::Ok => "ok".to_string(),
            BlobStatus::Unreadable(e) => format!("unreadable: {e}"),
            BlobStatus::Corrupt(e) => format!("CORRUPT: {e}"),
        };
        format!("{}/{} {} {status}", self.section, self.label, self.addr)
    }
}

/// The full fsck result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerifyReport {
    /// Whether the manifest itself parsed and self-validated.
    pub manifest_ok: bool,
    /// The manifest failure, when `manifest_ok` is false.
    pub manifest_error: Option<String>,
    /// One verdict per manifest blob reference, in manifest order.
    pub blobs: Vec<BlobVerdict>,
    /// Blob files on disk that no manifest reference points at.
    pub orphans: Vec<String>,
    /// Distinct blob files actually read and hashed.
    pub unique_checked: u64,
}

impl VerifyReport {
    /// True when the manifest validated, every blob hashed clean, and
    /// no orphans were found.
    pub fn clean(&self) -> bool {
        self.manifest_ok
            && self.orphans.is_empty()
            && self.blobs.iter().all(|b| b.status == BlobStatus::Ok)
    }

    /// The references that failed, in manifest order.
    pub fn corrupt(&self) -> Vec<&BlobVerdict> {
        self.blobs
            .iter()
            .filter(|b| b.status != BlobStatus::Ok)
            .collect()
    }

    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::from("bundle verify\n");
        match &self.manifest_error {
            Some(e) => out.push_str(&format!("  manifest: FAILED ({e})\n")),
            None => out.push_str("  manifest: ok\n"),
        }
        out.push_str(&format!(
            "  blobs: {} refs, {} unique, {} bad, {} orphaned\n",
            self.blobs.len(),
            self.unique_checked,
            self.corrupt().len(),
            self.orphans.len()
        ));
        for v in self.corrupt() {
            out.push_str(&format!("  {}\n", v.describe()));
        }
        for o in &self.orphans {
            out.push_str(&format!("  orphan blob {o}\n"));
        }
        if self.clean() {
            out.push_str("  clean\n");
        }
        out
    }

    /// Machine-readable JSON (CI validates this shape).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("manifest_ok".to_string(), Json::Bool(self.manifest_ok)),
            (
                "manifest_error".to_string(),
                match &self.manifest_error {
                    Some(e) => Json::str(e.clone()),
                    None => Json::Null,
                },
            ),
            ("refs".to_string(), Json::int(self.blobs.len() as i64)),
            (
                "unique_checked".to_string(),
                Json::int(self.unique_checked as i64),
            ),
            (
                "corrupt".to_string(),
                Json::array(self.corrupt().iter().map(|v| Json::str(v.describe()))),
            ),
            (
                "orphans".to_string(),
                Json::array(self.orphans.iter().map(|o| Json::str(o.clone()))),
            ),
            ("clean".to_string(), Json::Bool(self.clean())),
        ])
    }
}

/// Run the full fsck over `store`. Only environment-level failures
/// (e.g. an unreadable blob *directory*) return `Err`; damage inside
/// the bundle is reported, not raised.
pub fn verify(store: &BlobStore) -> io::Result<VerifyReport> {
    let _span = consent_telemetry::span("bundle.verify");
    let mut report = VerifyReport::default();
    let manifest = match crate::store::retry_read(|| store.read_manifest())
        .map_err(|e| e.to_string())
        .and_then(|text| match Manifest::parse(&text) {
            Ok(m) => Ok(m),
            Err(e) => Err(e.to_string()),
        }) {
        Ok(m) => {
            report.manifest_ok = true;
            m
        }
        Err(e) => {
            report.manifest_error = Some(e);
            consent_telemetry::count("bundle.verify.failures", 1);
            return Ok(report);
        }
    };
    // Hash each distinct address once; attribute the verdict to every
    // reference so corruption still names all owning sections.
    let mut cache: BTreeMap<BlobAddr, BlobStatus> = BTreeMap::new();
    for section in &manifest.sections {
        for b in &section.blobs {
            let status = cache
                .entry(b.addr)
                .or_insert_with(|| check_blob(store, &b.addr, b.len))
                .clone();
            report.blobs.push(BlobVerdict {
                section: section.name.clone(),
                label: b.label.clone(),
                addr: b.addr,
                status,
            });
        }
    }
    report.unique_checked = cache.len() as u64;
    let referenced: std::collections::BTreeSet<String> =
        cache.keys().map(|a| a.to_string()).collect();
    for stem in store.list_blobs()? {
        if !referenced.contains(&stem) {
            report.orphans.push(stem);
        }
    }
    let bad = report.corrupt().len() as u64 + report.orphans.len() as u64;
    if bad > 0 {
        consent_telemetry::count("bundle.verify.failures", bad);
    }
    Ok(report)
}

fn check_blob(store: &BlobStore, addr: &BlobAddr, want_len: u64) -> BlobStatus {
    let bytes = match crate::store::retry_read(|| store.get(addr)) {
        Ok(b) => b,
        Err(e) => return BlobStatus::Unreadable(e.to_string()),
    };
    if bytes.len() as u64 != want_len {
        return BlobStatus::Corrupt(format!(
            "length mismatch: manifest says {want_len}, disk has {}",
            bytes.len()
        ));
    }
    let crc = crc32(&bytes);
    if crc != addr.crc {
        return BlobStatus::Corrupt(format!(
            "crc mismatch: address says {:08x}, content hashes {crc:08x}",
            addr.crc
        ));
    }
    let fnv = fnv64(&bytes);
    if fnv != addr.fnv {
        return BlobStatus::Corrupt(format!(
            "fnv mismatch: address says {:016x}, content hashes {fnv:016x}",
            addr.fnv
        ));
    }
    BlobStatus::Ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{pack, BundleDoc, BundleInput, SectionInput};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "consent-bundle-verify-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn packed_store() -> (PathBuf, BlobStore) {
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        let input = BundleInput {
            meta: vec![],
            sections: vec![
                SectionInput {
                    name: "state".into(),
                    docs: vec![BundleDoc::new("capture-db", "#db v3\nrow one\nrow two\n")],
                },
                SectionInput {
                    name: "artifacts".into(),
                    docs: vec![
                        BundleDoc::new("req/a.example", "GET / 200\n"),
                        BundleDoc::new("req/b.example", "GET / 200\n"),
                    ],
                },
            ],
        };
        pack(&store, &input).unwrap();
        (dir, store)
    }

    #[test]
    fn clean_bundle_verifies_clean() {
        let (dir, store) = packed_store();
        let report = verify(&store).unwrap();
        assert!(report.clean(), "{}", report.render());
        assert_eq!(report.blobs.len(), 3);
        assert_eq!(report.unique_checked, 2);
        assert!(report.render().contains("clean"));
        assert_eq!(report.to_json().get("clean"), Some(&Json::Bool(true)));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn flipped_byte_is_localized_to_blob_and_section() {
        let (dir, store) = packed_store();
        let manifest = Manifest::parse(&store.read_manifest().unwrap()).unwrap();
        let target = &manifest.section("state").unwrap().blobs[0];
        let path = store.blob_path(&target.addr);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let report = verify(&store).unwrap();
        assert!(!report.clean());
        let bad = report.corrupt();
        assert_eq!(bad.len(), 1, "{}", report.render());
        assert_eq!(bad[0].section, "state");
        assert_eq!(bad[0].label, "capture-db");
        assert!(matches!(bad[0].status, BlobStatus::Corrupt(_)));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn shared_blob_corruption_names_every_owner() {
        let (dir, store) = packed_store();
        let manifest = Manifest::parse(&store.read_manifest().unwrap()).unwrap();
        let shared = &manifest.section("artifacts").unwrap().blobs[0];
        let path = store.blob_path(&shared.addr);
        // Truncate instead of flip: exercises the length check.
        std::fs::write(&path, b"GET").unwrap();
        let report = verify(&store).unwrap();
        let bad = report.corrupt();
        assert_eq!(bad.len(), 2, "both labels implicated");
        assert_eq!(bad[0].label, "req/a.example");
        assert_eq!(bad[1].label, "req/b.example");
        assert!(bad
            .iter()
            .all(|v| matches!(&v.status, BlobStatus::Corrupt(e) if e.contains("length"))));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_blob_reports_unreadable() {
        let (dir, store) = packed_store();
        let manifest = Manifest::parse(&store.read_manifest().unwrap()).unwrap();
        let target = &manifest.section("artifacts").unwrap().blobs[0];
        std::fs::remove_file(store.blob_path(&target.addr)).unwrap();
        let report = verify(&store).unwrap();
        assert!(report
            .corrupt()
            .iter()
            .all(|v| matches!(v.status, BlobStatus::Unreadable(_))));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_its_own_verdict() {
        let (dir, store) = packed_store();
        let path = store.manifest_path();
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let report = verify(&store).unwrap();
        assert!(!report.manifest_ok);
        assert!(!report.clean());
        assert!(report.manifest_error.is_some(), "{}", report.render());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn orphan_blobs_are_reported() {
        let (dir, store) = packed_store();
        store.put(b"never referenced by the manifest").unwrap();
        let report = verify(&store).unwrap();
        assert!(!report.clean());
        assert_eq!(report.orphans.len(), 1);
        assert!(report.render().contains("orphan blob"));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
