/root/repo/target/debug/deps/consent_integration_tests-e8ef866892f9d7f4.d: tests/lib.rs

/root/repo/target/debug/deps/libconsent_integration_tests-e8ef866892f9d7f4.rlib: tests/lib.rs

/root/repo/target/debug/deps/libconsent_integration_tests-e8ef866892f9d7f4.rmeta: tests/lib.rs

tests/lib.rs:
