/root/repo/target/debug/deps/consent_psl-858d74beedd25a58.d: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_psl-858d74beedd25a58.rmeta: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs Cargo.toml

crates/psl/src/lib.rs:
crates/psl/src/list.rs:
crates/psl/src/rules.rs:
crates/psl/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
