/root/repo/target/debug/deps/consent_telemetry-af8bab169d7c0917.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libconsent_telemetry-af8bab169d7c0917.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libconsent_telemetry-af8bab169d7c0917.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
