/root/repo/target/debug/deps/dialog_timing-1f70bfc6f022778e.d: examples/dialog_timing.rs

/root/repo/target/debug/deps/dialog_timing-1f70bfc6f022778e: examples/dialog_timing.rs

examples/dialog_timing.rs:
