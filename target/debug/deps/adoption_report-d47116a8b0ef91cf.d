/root/repo/target/debug/deps/adoption_report-d47116a8b0ef91cf.d: examples/adoption_report.rs

/root/repo/target/debug/deps/adoption_report-d47116a8b0ef91cf: examples/adoption_report.rs

examples/adoption_report.rs:
