/root/repo/target/debug/deps/gvl_audit-03ff19a8e5e3065f.d: examples/gvl_audit.rs

/root/repo/target/debug/deps/gvl_audit-03ff19a8e5e3065f: examples/gvl_audit.rs

examples/gvl_audit.rs:
