/root/repo/target/debug/deps/consent_fingerprint-f947e41ff99c6701.d: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/debug/deps/libconsent_fingerprint-f947e41ff99c6701.rlib: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/debug/deps/libconsent_fingerprint-f947e41ff99c6701.rmeta: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

crates/fingerprint/src/lib.rs:
crates/fingerprint/src/detect.rs:
crates/fingerprint/src/rules.rs:
