/root/repo/target/debug/deps/it_vantage-c564f4f5707d106d.d: tests/it_vantage.rs

/root/repo/target/debug/deps/it_vantage-c564f4f5707d106d: tests/it_vantage.rs

tests/it_vantage.rs:
