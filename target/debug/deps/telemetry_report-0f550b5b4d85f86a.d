/root/repo/target/debug/deps/telemetry_report-0f550b5b4d85f86a.d: examples/telemetry_report.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_report-0f550b5b4d85f86a.rmeta: examples/telemetry_report.rs Cargo.toml

examples/telemetry_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
