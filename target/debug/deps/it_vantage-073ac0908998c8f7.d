/root/repo/target/debug/deps/it_vantage-073ac0908998c8f7.d: tests/it_vantage.rs

/root/repo/target/debug/deps/it_vantage-073ac0908998c8f7: tests/it_vantage.rs

tests/it_vantage.rs:
