/root/repo/target/debug/deps/gvl_audit-b6bb98dc2ce92763.d: examples/gvl_audit.rs Cargo.toml

/root/repo/target/debug/deps/libgvl_audit-b6bb98dc2ce92763.rmeta: examples/gvl_audit.rs Cargo.toml

examples/gvl_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
