/root/repo/target/debug/deps/it_pipeline-684a73df656cfa68.d: tests/it_pipeline.rs

/root/repo/target/debug/deps/it_pipeline-684a73df656cfa68: tests/it_pipeline.rs

tests/it_pipeline.rs:
