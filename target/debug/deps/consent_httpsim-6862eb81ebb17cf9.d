/root/repo/target/debug/deps/consent_httpsim-6862eb81ebb17cf9.d: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs

/root/repo/target/debug/deps/libconsent_httpsim-6862eb81ebb17cf9.rlib: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs

/root/repo/target/debug/deps/libconsent_httpsim-6862eb81ebb17cf9.rmeta: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs

crates/httpsim/src/lib.rs:
crates/httpsim/src/capture.rs:
crates/httpsim/src/engine.rs:
crates/httpsim/src/prober.rs:
crates/httpsim/src/vantage.rs:
