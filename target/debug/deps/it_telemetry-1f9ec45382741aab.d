/root/repo/target/debug/deps/it_telemetry-1f9ec45382741aab.d: tests/it_telemetry.rs

/root/repo/target/debug/deps/it_telemetry-1f9ec45382741aab: tests/it_telemetry.rs

tests/it_telemetry.rs:
