/root/repo/target/debug/deps/consent_dialog-763a9cb3b32ad657.d: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs

/root/repo/target/debug/deps/libconsent_dialog-763a9cb3b32ad657.rlib: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs

/root/repo/target/debug/deps/libconsent_dialog-763a9cb3b32ad657.rmeta: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs

crates/dialog/src/lib.rs:
crates/dialog/src/coalition.rs:
crates/dialog/src/experiment.rs:
crates/dialog/src/quantcast.rs:
crates/dialog/src/trustarc.rs:
crates/dialog/src/user_model.rs:
