/root/repo/target/debug/deps/consent_tcf-fe0a4cfaba238cb4.d: crates/tcf/src/lib.rs crates/tcf/src/bits.rs crates/tcf/src/cmp_api.rs crates/tcf/src/consent_string.rs crates/tcf/src/consent_string_v2.rs crates/tcf/src/gvl.rs crates/tcf/src/gvl_diff.rs crates/tcf/src/gvl_history.rs crates/tcf/src/purposes.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_tcf-fe0a4cfaba238cb4.rmeta: crates/tcf/src/lib.rs crates/tcf/src/bits.rs crates/tcf/src/cmp_api.rs crates/tcf/src/consent_string.rs crates/tcf/src/consent_string_v2.rs crates/tcf/src/gvl.rs crates/tcf/src/gvl_diff.rs crates/tcf/src/gvl_history.rs crates/tcf/src/purposes.rs Cargo.toml

crates/tcf/src/lib.rs:
crates/tcf/src/bits.rs:
crates/tcf/src/cmp_api.rs:
crates/tcf/src/consent_string.rs:
crates/tcf/src/consent_string_v2.rs:
crates/tcf/src/gvl.rs:
crates/tcf/src/gvl_diff.rs:
crates/tcf/src/gvl_history.rs:
crates/tcf/src/purposes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
