/root/repo/target/debug/deps/consent_dialog-b7ba91c788ab3171.d: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs

/root/repo/target/debug/deps/consent_dialog-b7ba91c788ab3171: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs

crates/dialog/src/lib.rs:
crates/dialog/src/coalition.rs:
crates/dialog/src/experiment.rs:
crates/dialog/src/quantcast.rs:
crates/dialog/src/trustarc.rs:
crates/dialog/src/user_model.rs:
