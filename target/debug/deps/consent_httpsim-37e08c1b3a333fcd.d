/root/repo/target/debug/deps/consent_httpsim-37e08c1b3a333fcd.d: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_httpsim-37e08c1b3a333fcd.rmeta: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs Cargo.toml

crates/httpsim/src/lib.rs:
crates/httpsim/src/capture.rs:
crates/httpsim/src/engine.rs:
crates/httpsim/src/prober.rs:
crates/httpsim/src/vantage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
