/root/repo/target/debug/deps/gvl_audit-725adab090c6a75d.d: examples/gvl_audit.rs

/root/repo/target/debug/deps/gvl_audit-725adab090c6a75d: examples/gvl_audit.rs

examples/gvl_audit.rs:
