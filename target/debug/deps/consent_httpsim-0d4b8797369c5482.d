/root/repo/target/debug/deps/consent_httpsim-0d4b8797369c5482.d: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs

/root/repo/target/debug/deps/libconsent_httpsim-0d4b8797369c5482.rlib: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs

/root/repo/target/debug/deps/libconsent_httpsim-0d4b8797369c5482.rmeta: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs

crates/httpsim/src/lib.rs:
crates/httpsim/src/capture.rs:
crates/httpsim/src/engine.rs:
crates/httpsim/src/prober.rs:
crates/httpsim/src/vantage.rs:
