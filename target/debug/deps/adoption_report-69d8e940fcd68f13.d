/root/repo/target/debug/deps/adoption_report-69d8e940fcd68f13.d: examples/adoption_report.rs

/root/repo/target/debug/deps/adoption_report-69d8e940fcd68f13: examples/adoption_report.rs

examples/adoption_report.rs:
