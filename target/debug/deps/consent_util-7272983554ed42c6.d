/root/repo/target/debug/deps/consent_util-7272983554ed42c6.d: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_util-7272983554ed42c6.rmeta: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/date.rs:
crates/util/src/json.rs:
crates/util/src/rng.rs:
crates/util/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
