/root/repo/target/debug/deps/consent_integration_tests-029bb7aa95e7ccbd.d: tests/lib.rs

/root/repo/target/debug/deps/libconsent_integration_tests-029bb7aa95e7ccbd.rlib: tests/lib.rs

/root/repo/target/debug/deps/libconsent_integration_tests-029bb7aa95e7ccbd.rmeta: tests/lib.rs

tests/lib.rs:
