/root/repo/target/debug/deps/consent_bench-6db9a73c67524def.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libconsent_bench-6db9a73c67524def.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libconsent_bench-6db9a73c67524def.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
