/root/repo/target/debug/deps/dialog_timing-8ab6e5f86ae93956.d: examples/dialog_timing.rs

/root/repo/target/debug/deps/dialog_timing-8ab6e5f86ae93956: examples/dialog_timing.rs

examples/dialog_timing.rs:
