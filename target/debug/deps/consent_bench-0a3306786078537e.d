/root/repo/target/debug/deps/consent_bench-0a3306786078537e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libconsent_bench-0a3306786078537e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libconsent_bench-0a3306786078537e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
