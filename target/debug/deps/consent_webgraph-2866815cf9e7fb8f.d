/root/repo/target/debug/deps/consent_webgraph-2866815cf9e7fb8f.d: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs

/root/repo/target/debug/deps/libconsent_webgraph-2866815cf9e7fb8f.rlib: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs

/root/repo/target/debug/deps/libconsent_webgraph-2866815cf9e7fb8f.rmeta: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs

crates/webgraph/src/lib.rs:
crates/webgraph/src/adoption.rs:
crates/webgraph/src/cmp.rs:
crates/webgraph/src/site.rs:
crates/webgraph/src/site_config.rs:
crates/webgraph/src/world.rs:
