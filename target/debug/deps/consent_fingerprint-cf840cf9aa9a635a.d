/root/repo/target/debug/deps/consent_fingerprint-cf840cf9aa9a635a.d: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/debug/deps/libconsent_fingerprint-cf840cf9aa9a635a.rlib: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/debug/deps/libconsent_fingerprint-cf840cf9aa9a635a.rmeta: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

crates/fingerprint/src/lib.rs:
crates/fingerprint/src/detect.rs:
crates/fingerprint/src/rules.rs:
