/root/repo/target/debug/deps/consent_integration_tests-64b1d1fdec03bd42.d: tests/lib.rs

/root/repo/target/debug/deps/consent_integration_tests-64b1d1fdec03bd42: tests/lib.rs

tests/lib.rs:
