/root/repo/target/debug/deps/consent_toplist-ea9bce746a0d5f34.d: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_toplist-ea9bce746a0d5f34.rmeta: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs Cargo.toml

crates/toplist/src/lib.rs:
crates/toplist/src/provider.rs:
crates/toplist/src/seed.rs:
crates/toplist/src/tranco.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
