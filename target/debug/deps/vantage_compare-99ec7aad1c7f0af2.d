/root/repo/target/debug/deps/vantage_compare-99ec7aad1c7f0af2.d: examples/vantage_compare.rs

/root/repo/target/debug/deps/vantage_compare-99ec7aad1c7f0af2: examples/vantage_compare.rs

examples/vantage_compare.rs:
