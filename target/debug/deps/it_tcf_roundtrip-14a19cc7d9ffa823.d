/root/repo/target/debug/deps/it_tcf_roundtrip-14a19cc7d9ffa823.d: tests/it_tcf_roundtrip.rs

/root/repo/target/debug/deps/it_tcf_roundtrip-14a19cc7d9ffa823: tests/it_tcf_roundtrip.rs

tests/it_tcf_roundtrip.rs:
