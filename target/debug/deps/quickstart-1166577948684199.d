/root/repo/target/debug/deps/quickstart-1166577948684199.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-1166577948684199: examples/quickstart.rs

examples/quickstart.rs:
