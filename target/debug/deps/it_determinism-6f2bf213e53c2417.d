/root/repo/target/debug/deps/it_determinism-6f2bf213e53c2417.d: tests/it_determinism.rs

/root/repo/target/debug/deps/it_determinism-6f2bf213e53c2417: tests/it_determinism.rs

tests/it_determinism.rs:
