/root/repo/target/debug/deps/consent_crawler-12ea59e83fb6e9a5.d: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs

/root/repo/target/debug/deps/libconsent_crawler-12ea59e83fb6e9a5.rlib: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs

/root/repo/target/debug/deps/libconsent_crawler-12ea59e83fb6e9a5.rmeta: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs

crates/crawler/src/lib.rs:
crates/crawler/src/campaign.rs:
crates/crawler/src/capture_db.rs:
crates/crawler/src/export.rs:
crates/crawler/src/feed.rs:
crates/crawler/src/platform.rs:
crates/crawler/src/queue.rs:
