/root/repo/target/debug/deps/consent_telemetry-d227579dc8b14c56.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libconsent_telemetry-d227579dc8b14c56.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/libconsent_telemetry-d227579dc8b14c56.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
