/root/repo/target/debug/deps/consent_integration_tests-53791fad271ea941.d: tests/lib.rs

/root/repo/target/debug/deps/libconsent_integration_tests-53791fad271ea941.rlib: tests/lib.rs

/root/repo/target/debug/deps/libconsent_integration_tests-53791fad271ea941.rmeta: tests/lib.rs

tests/lib.rs:
