/root/repo/target/debug/deps/consent_dialog-0a19bf1bc45a0dec.d: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_dialog-0a19bf1bc45a0dec.rmeta: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs Cargo.toml

crates/dialog/src/lib.rs:
crates/dialog/src/coalition.rs:
crates/dialog/src/experiment.rs:
crates/dialog/src/quantcast.rs:
crates/dialog/src/trustarc.rs:
crates/dialog/src/user_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
