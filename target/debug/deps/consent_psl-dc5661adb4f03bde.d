/root/repo/target/debug/deps/consent_psl-dc5661adb4f03bde.d: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs

/root/repo/target/debug/deps/consent_psl-dc5661adb4f03bde: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs

crates/psl/src/lib.rs:
crates/psl/src/list.rs:
crates/psl/src/rules.rs:
crates/psl/src/snapshot.rs:
