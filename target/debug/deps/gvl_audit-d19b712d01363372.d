/root/repo/target/debug/deps/gvl_audit-d19b712d01363372.d: examples/gvl_audit.rs

/root/repo/target/debug/deps/gvl_audit-d19b712d01363372: examples/gvl_audit.rs

examples/gvl_audit.rs:
