/root/repo/target/debug/deps/consent_webgraph-0a69efac72e119da.d: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs

/root/repo/target/debug/deps/consent_webgraph-0a69efac72e119da: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs

crates/webgraph/src/lib.rs:
crates/webgraph/src/adoption.rs:
crates/webgraph/src/cmp.rs:
crates/webgraph/src/site.rs:
crates/webgraph/src/site_config.rs:
crates/webgraph/src/world.rs:
