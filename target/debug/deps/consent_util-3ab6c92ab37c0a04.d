/root/repo/target/debug/deps/consent_util-3ab6c92ab37c0a04.d: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs

/root/repo/target/debug/deps/libconsent_util-3ab6c92ab37c0a04.rlib: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs

/root/repo/target/debug/deps/libconsent_util-3ab6c92ab37c0a04.rmeta: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs

crates/util/src/lib.rs:
crates/util/src/date.rs:
crates/util/src/json.rs:
crates/util/src/rng.rs:
crates/util/src/table.rs:
