/root/repo/target/debug/deps/consent_toplist-16ff389e47044d64.d: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs

/root/repo/target/debug/deps/libconsent_toplist-16ff389e47044d64.rlib: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs

/root/repo/target/debug/deps/libconsent_toplist-16ff389e47044d64.rmeta: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs

crates/toplist/src/lib.rs:
crates/toplist/src/provider.rs:
crates/toplist/src/seed.rs:
crates/toplist/src/tranco.rs:
