/root/repo/target/debug/deps/consent_crawler-b9cc427bcbf0c88e.d: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_crawler-b9cc427bcbf0c88e.rmeta: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs Cargo.toml

crates/crawler/src/lib.rs:
crates/crawler/src/campaign.rs:
crates/crawler/src/capture_db.rs:
crates/crawler/src/export.rs:
crates/crawler/src/feed.rs:
crates/crawler/src/platform.rs:
crates/crawler/src/queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
