/root/repo/target/debug/deps/telemetry_report-572aaeba5a0d2519.d: examples/telemetry_report.rs

/root/repo/target/debug/deps/telemetry_report-572aaeba5a0d2519: examples/telemetry_report.rs

examples/telemetry_report.rs:
