/root/repo/target/debug/deps/consent_fingerprint-66a2c364e620325f.d: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/debug/deps/libconsent_fingerprint-66a2c364e620325f.rlib: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/debug/deps/libconsent_fingerprint-66a2c364e620325f.rmeta: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

crates/fingerprint/src/lib.rs:
crates/fingerprint/src/detect.rs:
crates/fingerprint/src/rules.rs:
