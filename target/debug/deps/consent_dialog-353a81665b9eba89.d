/root/repo/target/debug/deps/consent_dialog-353a81665b9eba89.d: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs

/root/repo/target/debug/deps/libconsent_dialog-353a81665b9eba89.rlib: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs

/root/repo/target/debug/deps/libconsent_dialog-353a81665b9eba89.rmeta: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs

crates/dialog/src/lib.rs:
crates/dialog/src/coalition.rs:
crates/dialog/src/experiment.rs:
crates/dialog/src/quantcast.rs:
crates/dialog/src/trustarc.rs:
crates/dialog/src/user_model.rs:
