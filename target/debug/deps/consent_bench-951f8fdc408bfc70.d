/root/repo/target/debug/deps/consent_bench-951f8fdc408bfc70.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/consent_bench-951f8fdc408bfc70: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
