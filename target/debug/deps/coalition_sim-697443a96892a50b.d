/root/repo/target/debug/deps/coalition_sim-697443a96892a50b.d: examples/coalition_sim.rs

/root/repo/target/debug/deps/coalition_sim-697443a96892a50b: examples/coalition_sim.rs

examples/coalition_sim.rs:
