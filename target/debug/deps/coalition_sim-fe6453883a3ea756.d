/root/repo/target/debug/deps/coalition_sim-fe6453883a3ea756.d: examples/coalition_sim.rs

/root/repo/target/debug/deps/coalition_sim-fe6453883a3ea756: examples/coalition_sim.rs

examples/coalition_sim.rs:
