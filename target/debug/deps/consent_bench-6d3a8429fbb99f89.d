/root/repo/target/debug/deps/consent_bench-6d3a8429fbb99f89.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/consent_bench-6d3a8429fbb99f89: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
