/root/repo/target/debug/deps/consent_psl-36180d0e3a9b4534.d: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs

/root/repo/target/debug/deps/libconsent_psl-36180d0e3a9b4534.rlib: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs

/root/repo/target/debug/deps/libconsent_psl-36180d0e3a9b4534.rmeta: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs

crates/psl/src/lib.rs:
crates/psl/src/list.rs:
crates/psl/src/rules.rs:
crates/psl/src/snapshot.rs:
