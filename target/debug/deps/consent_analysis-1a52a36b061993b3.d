/root/repo/target/debug/deps/consent_analysis-1a52a36b061993b3.d: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs

/root/repo/target/debug/deps/libconsent_analysis-1a52a36b061993b3.rlib: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs

/root/repo/target/debug/deps/libconsent_analysis-1a52a36b061993b3.rmeta: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/customization.rs:
crates/analysis/src/interpolate.rs:
crates/analysis/src/jurisdiction.rs:
crates/analysis/src/marketshare.rs:
crates/analysis/src/quality.rs:
crates/analysis/src/timeseries.rs:
crates/analysis/src/vantage_table.rs:
