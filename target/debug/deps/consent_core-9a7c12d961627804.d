/root/repo/target/debug/deps/consent_core-9a7c12d961627804.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig1.rs crates/core/src/experiments/fig10.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7_8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/i3.rs crates/core/src/experiments/methodology.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tables_a.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libconsent_core-9a7c12d961627804.rlib: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig1.rs crates/core/src/experiments/fig10.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7_8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/i3.rs crates/core/src/experiments/methodology.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tables_a.rs crates/core/src/study.rs

/root/repo/target/debug/deps/libconsent_core-9a7c12d961627804.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig1.rs crates/core/src/experiments/fig10.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7_8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/i3.rs crates/core/src/experiments/methodology.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tables_a.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/fig1.rs:
crates/core/src/experiments/fig10.rs:
crates/core/src/experiments/fig5.rs:
crates/core/src/experiments/fig6.rs:
crates/core/src/experiments/fig7_8.rs:
crates/core/src/experiments/fig9.rs:
crates/core/src/experiments/i3.rs:
crates/core/src/experiments/methodology.rs:
crates/core/src/experiments/table1.rs:
crates/core/src/experiments/tables_a.rs:
crates/core/src/study.rs:
