/root/repo/target/debug/deps/consent_toplist-80139c3696e95896.d: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs

/root/repo/target/debug/deps/libconsent_toplist-80139c3696e95896.rlib: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs

/root/repo/target/debug/deps/libconsent_toplist-80139c3696e95896.rmeta: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs

crates/toplist/src/lib.rs:
crates/toplist/src/provider.rs:
crates/toplist/src/seed.rs:
crates/toplist/src/tranco.rs:
