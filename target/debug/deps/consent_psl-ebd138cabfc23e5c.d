/root/repo/target/debug/deps/consent_psl-ebd138cabfc23e5c.d: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs

/root/repo/target/debug/deps/libconsent_psl-ebd138cabfc23e5c.rlib: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs

/root/repo/target/debug/deps/libconsent_psl-ebd138cabfc23e5c.rmeta: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs

crates/psl/src/lib.rs:
crates/psl/src/list.rs:
crates/psl/src/rules.rs:
crates/psl/src/snapshot.rs:
