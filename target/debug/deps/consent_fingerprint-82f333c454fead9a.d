/root/repo/target/debug/deps/consent_fingerprint-82f333c454fead9a.d: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/debug/deps/consent_fingerprint-82f333c454fead9a: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

crates/fingerprint/src/lib.rs:
crates/fingerprint/src/detect.rs:
crates/fingerprint/src/rules.rs:
