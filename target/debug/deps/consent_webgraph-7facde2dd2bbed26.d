/root/repo/target/debug/deps/consent_webgraph-7facde2dd2bbed26.d: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_webgraph-7facde2dd2bbed26.rmeta: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs Cargo.toml

crates/webgraph/src/lib.rs:
crates/webgraph/src/adoption.rs:
crates/webgraph/src/cmp.rs:
crates/webgraph/src/site.rs:
crates/webgraph/src/site_config.rs:
crates/webgraph/src/world.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
