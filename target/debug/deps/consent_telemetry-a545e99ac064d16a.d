/root/repo/target/debug/deps/consent_telemetry-a545e99ac064d16a.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_telemetry-a545e99ac064d16a.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
