/root/repo/target/debug/deps/consent_httpsim-b74ed1183e720959.d: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs

/root/repo/target/debug/deps/consent_httpsim-b74ed1183e720959: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs

crates/httpsim/src/lib.rs:
crates/httpsim/src/capture.rs:
crates/httpsim/src/engine.rs:
crates/httpsim/src/prober.rs:
crates/httpsim/src/vantage.rs:
