/root/repo/target/debug/deps/consent_util-65ff406c2b6984c0.d: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs

/root/repo/target/debug/deps/consent_util-65ff406c2b6984c0: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs

crates/util/src/lib.rs:
crates/util/src/date.rs:
crates/util/src/json.rs:
crates/util/src/rng.rs:
crates/util/src/table.rs:
