/root/repo/target/debug/deps/quickstart-6464563367079773.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-6464563367079773: examples/quickstart.rs

examples/quickstart.rs:
