/root/repo/target/debug/deps/consent_fingerprint-28abcb90accccc8a.d: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_fingerprint-28abcb90accccc8a.rmeta: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs Cargo.toml

crates/fingerprint/src/lib.rs:
crates/fingerprint/src/detect.rs:
crates/fingerprint/src/rules.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
