/root/repo/target/debug/deps/adoption_report-4cbe72cf44480833.d: examples/adoption_report.rs

/root/repo/target/debug/deps/adoption_report-4cbe72cf44480833: examples/adoption_report.rs

examples/adoption_report.rs:
