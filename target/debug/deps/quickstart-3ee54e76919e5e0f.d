/root/repo/target/debug/deps/quickstart-3ee54e76919e5e0f.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-3ee54e76919e5e0f: examples/quickstart.rs

examples/quickstart.rs:
