/root/repo/target/debug/deps/telemetry_report-1bc6132414ca15ae.d: examples/telemetry_report.rs

/root/repo/target/debug/deps/telemetry_report-1bc6132414ca15ae: examples/telemetry_report.rs

examples/telemetry_report.rs:
