/root/repo/target/debug/deps/consent_integration_tests-95ab42a67447f573.d: tests/lib.rs

/root/repo/target/debug/deps/consent_integration_tests-95ab42a67447f573: tests/lib.rs

tests/lib.rs:
