/root/repo/target/debug/deps/it_extensions-f227c813d3df77c0.d: tests/it_extensions.rs

/root/repo/target/debug/deps/it_extensions-f227c813d3df77c0: tests/it_extensions.rs

tests/it_extensions.rs:
