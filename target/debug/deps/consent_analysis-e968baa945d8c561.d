/root/repo/target/debug/deps/consent_analysis-e968baa945d8c561.d: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs

/root/repo/target/debug/deps/libconsent_analysis-e968baa945d8c561.rlib: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs

/root/repo/target/debug/deps/libconsent_analysis-e968baa945d8c561.rmeta: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/customization.rs:
crates/analysis/src/interpolate.rs:
crates/analysis/src/jurisdiction.rs:
crates/analysis/src/marketshare.rs:
crates/analysis/src/quality.rs:
crates/analysis/src/timeseries.rs:
crates/analysis/src/vantage_table.rs:
