/root/repo/target/debug/deps/it_experiments-3792079c3dbbf69d.d: tests/it_experiments.rs

/root/repo/target/debug/deps/it_experiments-3792079c3dbbf69d: tests/it_experiments.rs

tests/it_experiments.rs:
