/root/repo/target/debug/deps/it_experiments-17f41c2726624da7.d: tests/it_experiments.rs

/root/repo/target/debug/deps/it_experiments-17f41c2726624da7: tests/it_experiments.rs

tests/it_experiments.rs:
