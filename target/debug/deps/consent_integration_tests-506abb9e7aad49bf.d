/root/repo/target/debug/deps/consent_integration_tests-506abb9e7aad49bf.d: tests/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_integration_tests-506abb9e7aad49bf.rmeta: tests/lib.rs Cargo.toml

tests/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
