/root/repo/target/debug/deps/it_telemetry-6044d1365121641c.d: tests/it_telemetry.rs

/root/repo/target/debug/deps/it_telemetry-6044d1365121641c: tests/it_telemetry.rs

tests/it_telemetry.rs:
