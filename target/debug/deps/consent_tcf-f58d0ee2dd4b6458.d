/root/repo/target/debug/deps/consent_tcf-f58d0ee2dd4b6458.d: crates/tcf/src/lib.rs crates/tcf/src/bits.rs crates/tcf/src/cmp_api.rs crates/tcf/src/consent_string.rs crates/tcf/src/consent_string_v2.rs crates/tcf/src/gvl.rs crates/tcf/src/gvl_diff.rs crates/tcf/src/gvl_history.rs crates/tcf/src/purposes.rs

/root/repo/target/debug/deps/libconsent_tcf-f58d0ee2dd4b6458.rlib: crates/tcf/src/lib.rs crates/tcf/src/bits.rs crates/tcf/src/cmp_api.rs crates/tcf/src/consent_string.rs crates/tcf/src/consent_string_v2.rs crates/tcf/src/gvl.rs crates/tcf/src/gvl_diff.rs crates/tcf/src/gvl_history.rs crates/tcf/src/purposes.rs

/root/repo/target/debug/deps/libconsent_tcf-f58d0ee2dd4b6458.rmeta: crates/tcf/src/lib.rs crates/tcf/src/bits.rs crates/tcf/src/cmp_api.rs crates/tcf/src/consent_string.rs crates/tcf/src/consent_string_v2.rs crates/tcf/src/gvl.rs crates/tcf/src/gvl_diff.rs crates/tcf/src/gvl_history.rs crates/tcf/src/purposes.rs

crates/tcf/src/lib.rs:
crates/tcf/src/bits.rs:
crates/tcf/src/cmp_api.rs:
crates/tcf/src/consent_string.rs:
crates/tcf/src/consent_string_v2.rs:
crates/tcf/src/gvl.rs:
crates/tcf/src/gvl_diff.rs:
crates/tcf/src/gvl_history.rs:
crates/tcf/src/purposes.rs:
