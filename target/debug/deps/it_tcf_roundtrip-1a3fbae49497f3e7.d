/root/repo/target/debug/deps/it_tcf_roundtrip-1a3fbae49497f3e7.d: tests/it_tcf_roundtrip.rs

/root/repo/target/debug/deps/it_tcf_roundtrip-1a3fbae49497f3e7: tests/it_tcf_roundtrip.rs

tests/it_tcf_roundtrip.rs:
