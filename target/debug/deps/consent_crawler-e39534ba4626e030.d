/root/repo/target/debug/deps/consent_crawler-e39534ba4626e030.d: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs

/root/repo/target/debug/deps/consent_crawler-e39534ba4626e030: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs

crates/crawler/src/lib.rs:
crates/crawler/src/campaign.rs:
crates/crawler/src/capture_db.rs:
crates/crawler/src/export.rs:
crates/crawler/src/feed.rs:
crates/crawler/src/platform.rs:
crates/crawler/src/queue.rs:
