/root/repo/target/debug/deps/coalition_sim-807ec14344b013f1.d: examples/coalition_sim.rs

/root/repo/target/debug/deps/coalition_sim-807ec14344b013f1: examples/coalition_sim.rs

examples/coalition_sim.rs:
