/root/repo/target/debug/deps/consent_stats-08f3e78b6113a939.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/distributions.rs crates/stats/src/histogram.rs crates/stats/src/mann_whitney.rs crates/stats/src/normal.rs crates/stats/src/proportion.rs

/root/repo/target/debug/deps/consent_stats-08f3e78b6113a939: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/distributions.rs crates/stats/src/histogram.rs crates/stats/src/mann_whitney.rs crates/stats/src/normal.rs crates/stats/src/proportion.rs

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/distributions.rs:
crates/stats/src/histogram.rs:
crates/stats/src/mann_whitney.rs:
crates/stats/src/normal.rs:
crates/stats/src/proportion.rs:
