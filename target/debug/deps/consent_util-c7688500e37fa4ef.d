/root/repo/target/debug/deps/consent_util-c7688500e37fa4ef.d: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs

/root/repo/target/debug/deps/libconsent_util-c7688500e37fa4ef.rlib: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs

/root/repo/target/debug/deps/libconsent_util-c7688500e37fa4ef.rmeta: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs

crates/util/src/lib.rs:
crates/util/src/date.rs:
crates/util/src/json.rs:
crates/util/src/rng.rs:
crates/util/src/table.rs:
