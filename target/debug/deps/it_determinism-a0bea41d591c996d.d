/root/repo/target/debug/deps/it_determinism-a0bea41d591c996d.d: tests/it_determinism.rs

/root/repo/target/debug/deps/it_determinism-a0bea41d591c996d: tests/it_determinism.rs

tests/it_determinism.rs:
