/root/repo/target/debug/deps/consent_analysis-e41bde1a7cf7b259.d: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs

/root/repo/target/debug/deps/consent_analysis-e41bde1a7cf7b259: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/customization.rs:
crates/analysis/src/interpolate.rs:
crates/analysis/src/jurisdiction.rs:
crates/analysis/src/marketshare.rs:
crates/analysis/src/quality.rs:
crates/analysis/src/timeseries.rs:
crates/analysis/src/vantage_table.rs:
