/root/repo/target/debug/deps/vantage_compare-5470fdfc72bbe6c1.d: examples/vantage_compare.rs

/root/repo/target/debug/deps/vantage_compare-5470fdfc72bbe6c1: examples/vantage_compare.rs

examples/vantage_compare.rs:
