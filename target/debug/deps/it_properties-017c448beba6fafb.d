/root/repo/target/debug/deps/it_properties-017c448beba6fafb.d: tests/it_properties.rs

/root/repo/target/debug/deps/it_properties-017c448beba6fafb: tests/it_properties.rs

tests/it_properties.rs:
