/root/repo/target/debug/deps/dialog_timing-7b5ee08d1d59316e.d: examples/dialog_timing.rs

/root/repo/target/debug/deps/dialog_timing-7b5ee08d1d59316e: examples/dialog_timing.rs

examples/dialog_timing.rs:
