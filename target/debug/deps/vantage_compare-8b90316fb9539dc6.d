/root/repo/target/debug/deps/vantage_compare-8b90316fb9539dc6.d: examples/vantage_compare.rs

/root/repo/target/debug/deps/vantage_compare-8b90316fb9539dc6: examples/vantage_compare.rs

examples/vantage_compare.rs:
