/root/repo/target/debug/deps/consent_webgraph-8e7bdd071b00d410.d: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs

/root/repo/target/debug/deps/libconsent_webgraph-8e7bdd071b00d410.rlib: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs

/root/repo/target/debug/deps/libconsent_webgraph-8e7bdd071b00d410.rmeta: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs

crates/webgraph/src/lib.rs:
crates/webgraph/src/adoption.rs:
crates/webgraph/src/cmp.rs:
crates/webgraph/src/site.rs:
crates/webgraph/src/site_config.rs:
crates/webgraph/src/world.rs:
