/root/repo/target/debug/deps/consent_telemetry-b09b775d974662e9.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/consent_telemetry-b09b775d974662e9: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
