/root/repo/target/debug/deps/vantage_compare-bd27f427fe3a39e3.d: examples/vantage_compare.rs Cargo.toml

/root/repo/target/debug/deps/libvantage_compare-bd27f427fe3a39e3.rmeta: examples/vantage_compare.rs Cargo.toml

examples/vantage_compare.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
