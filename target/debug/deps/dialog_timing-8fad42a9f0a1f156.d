/root/repo/target/debug/deps/dialog_timing-8fad42a9f0a1f156.d: examples/dialog_timing.rs Cargo.toml

/root/repo/target/debug/deps/libdialog_timing-8fad42a9f0a1f156.rmeta: examples/dialog_timing.rs Cargo.toml

examples/dialog_timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
