/root/repo/target/debug/deps/consent_fingerprint-e6c1f79aa500f37a.d: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/debug/deps/consent_fingerprint-e6c1f79aa500f37a: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

crates/fingerprint/src/lib.rs:
crates/fingerprint/src/detect.rs:
crates/fingerprint/src/rules.rs:
