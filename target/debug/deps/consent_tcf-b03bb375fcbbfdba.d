/root/repo/target/debug/deps/consent_tcf-b03bb375fcbbfdba.d: crates/tcf/src/lib.rs crates/tcf/src/bits.rs crates/tcf/src/cmp_api.rs crates/tcf/src/consent_string.rs crates/tcf/src/consent_string_v2.rs crates/tcf/src/gvl.rs crates/tcf/src/gvl_diff.rs crates/tcf/src/gvl_history.rs crates/tcf/src/purposes.rs

/root/repo/target/debug/deps/libconsent_tcf-b03bb375fcbbfdba.rlib: crates/tcf/src/lib.rs crates/tcf/src/bits.rs crates/tcf/src/cmp_api.rs crates/tcf/src/consent_string.rs crates/tcf/src/consent_string_v2.rs crates/tcf/src/gvl.rs crates/tcf/src/gvl_diff.rs crates/tcf/src/gvl_history.rs crates/tcf/src/purposes.rs

/root/repo/target/debug/deps/libconsent_tcf-b03bb375fcbbfdba.rmeta: crates/tcf/src/lib.rs crates/tcf/src/bits.rs crates/tcf/src/cmp_api.rs crates/tcf/src/consent_string.rs crates/tcf/src/consent_string_v2.rs crates/tcf/src/gvl.rs crates/tcf/src/gvl_diff.rs crates/tcf/src/gvl_history.rs crates/tcf/src/purposes.rs

crates/tcf/src/lib.rs:
crates/tcf/src/bits.rs:
crates/tcf/src/cmp_api.rs:
crates/tcf/src/consent_string.rs:
crates/tcf/src/consent_string_v2.rs:
crates/tcf/src/gvl.rs:
crates/tcf/src/gvl_diff.rs:
crates/tcf/src/gvl_history.rs:
crates/tcf/src/purposes.rs:
