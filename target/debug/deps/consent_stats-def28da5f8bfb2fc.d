/root/repo/target/debug/deps/consent_stats-def28da5f8bfb2fc.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/distributions.rs crates/stats/src/histogram.rs crates/stats/src/mann_whitney.rs crates/stats/src/normal.rs crates/stats/src/proportion.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_stats-def28da5f8bfb2fc.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/distributions.rs crates/stats/src/histogram.rs crates/stats/src/mann_whitney.rs crates/stats/src/normal.rs crates/stats/src/proportion.rs Cargo.toml

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/distributions.rs:
crates/stats/src/histogram.rs:
crates/stats/src/mann_whitney.rs:
crates/stats/src/normal.rs:
crates/stats/src/proportion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
