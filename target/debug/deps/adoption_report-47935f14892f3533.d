/root/repo/target/debug/deps/adoption_report-47935f14892f3533.d: examples/adoption_report.rs Cargo.toml

/root/repo/target/debug/deps/libadoption_report-47935f14892f3533.rmeta: examples/adoption_report.rs Cargo.toml

examples/adoption_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
