/root/repo/target/debug/deps/consent_bench-17b636d6d0dd9540.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_bench-17b636d6d0dd9540.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
