/root/repo/target/debug/deps/consent_core-9c0ba2f6dfa9c60d.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig1.rs crates/core/src/experiments/fig10.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7_8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/i3.rs crates/core/src/experiments/methodology.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tables_a.rs crates/core/src/study.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_core-9c0ba2f6dfa9c60d.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig1.rs crates/core/src/experiments/fig10.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7_8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/i3.rs crates/core/src/experiments/methodology.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tables_a.rs crates/core/src/study.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/fig1.rs:
crates/core/src/experiments/fig10.rs:
crates/core/src/experiments/fig5.rs:
crates/core/src/experiments/fig6.rs:
crates/core/src/experiments/fig7_8.rs:
crates/core/src/experiments/fig9.rs:
crates/core/src/experiments/i3.rs:
crates/core/src/experiments/methodology.rs:
crates/core/src/experiments/table1.rs:
crates/core/src/experiments/tables_a.rs:
crates/core/src/study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
