/root/repo/target/debug/deps/it_extensions-eafb3c62eb5eaab0.d: tests/it_extensions.rs

/root/repo/target/debug/deps/it_extensions-eafb3c62eb5eaab0: tests/it_extensions.rs

tests/it_extensions.rs:
