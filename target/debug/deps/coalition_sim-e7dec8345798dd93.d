/root/repo/target/debug/deps/coalition_sim-e7dec8345798dd93.d: examples/coalition_sim.rs Cargo.toml

/root/repo/target/debug/deps/libcoalition_sim-e7dec8345798dd93.rmeta: examples/coalition_sim.rs Cargo.toml

examples/coalition_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
