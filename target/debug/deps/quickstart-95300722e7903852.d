/root/repo/target/debug/deps/quickstart-95300722e7903852.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-95300722e7903852.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
