/root/repo/target/debug/deps/consent_toplist-1e59f5a2a71a28f2.d: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs

/root/repo/target/debug/deps/consent_toplist-1e59f5a2a71a28f2: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs

crates/toplist/src/lib.rs:
crates/toplist/src/provider.rs:
crates/toplist/src/seed.rs:
crates/toplist/src/tranco.rs:
