/root/repo/target/debug/deps/consent_analysis-b2fde8c483eb1af0.d: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs Cargo.toml

/root/repo/target/debug/deps/libconsent_analysis-b2fde8c483eb1af0.rmeta: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/customization.rs:
crates/analysis/src/interpolate.rs:
crates/analysis/src/jurisdiction.rs:
crates/analysis/src/marketshare.rs:
crates/analysis/src/quality.rs:
crates/analysis/src/timeseries.rs:
crates/analysis/src/vantage_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
