/root/repo/target/debug/deps/it_properties-e19f64702a817a90.d: tests/it_properties.rs

/root/repo/target/debug/deps/it_properties-e19f64702a817a90: tests/it_properties.rs

tests/it_properties.rs:
