/root/repo/target/debug/deps/it_pipeline-b71f5541b9de4c15.d: tests/it_pipeline.rs

/root/repo/target/debug/deps/it_pipeline-b71f5541b9de4c15: tests/it_pipeline.rs

tests/it_pipeline.rs:
