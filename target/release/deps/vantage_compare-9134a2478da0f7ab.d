/root/repo/target/release/deps/vantage_compare-9134a2478da0f7ab.d: examples/vantage_compare.rs

/root/repo/target/release/deps/vantage_compare-9134a2478da0f7ab: examples/vantage_compare.rs

examples/vantage_compare.rs:
