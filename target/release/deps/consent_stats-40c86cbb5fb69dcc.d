/root/repo/target/release/deps/consent_stats-40c86cbb5fb69dcc.d: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/distributions.rs crates/stats/src/histogram.rs crates/stats/src/mann_whitney.rs crates/stats/src/normal.rs crates/stats/src/proportion.rs

/root/repo/target/release/deps/libconsent_stats-40c86cbb5fb69dcc.rlib: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/distributions.rs crates/stats/src/histogram.rs crates/stats/src/mann_whitney.rs crates/stats/src/normal.rs crates/stats/src/proportion.rs

/root/repo/target/release/deps/libconsent_stats-40c86cbb5fb69dcc.rmeta: crates/stats/src/lib.rs crates/stats/src/bootstrap.rs crates/stats/src/descriptive.rs crates/stats/src/distributions.rs crates/stats/src/histogram.rs crates/stats/src/mann_whitney.rs crates/stats/src/normal.rs crates/stats/src/proportion.rs

crates/stats/src/lib.rs:
crates/stats/src/bootstrap.rs:
crates/stats/src/descriptive.rs:
crates/stats/src/distributions.rs:
crates/stats/src/histogram.rs:
crates/stats/src/mann_whitney.rs:
crates/stats/src/normal.rs:
crates/stats/src/proportion.rs:
