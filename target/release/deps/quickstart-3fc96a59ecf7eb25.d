/root/repo/target/release/deps/quickstart-3fc96a59ecf7eb25.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-3fc96a59ecf7eb25: examples/quickstart.rs

examples/quickstart.rs:
