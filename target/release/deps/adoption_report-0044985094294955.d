/root/repo/target/release/deps/adoption_report-0044985094294955.d: examples/adoption_report.rs

/root/repo/target/release/deps/adoption_report-0044985094294955: examples/adoption_report.rs

examples/adoption_report.rs:
