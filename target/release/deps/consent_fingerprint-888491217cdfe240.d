/root/repo/target/release/deps/consent_fingerprint-888491217cdfe240.d: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/release/deps/libconsent_fingerprint-888491217cdfe240.rlib: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/release/deps/libconsent_fingerprint-888491217cdfe240.rmeta: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

crates/fingerprint/src/lib.rs:
crates/fingerprint/src/detect.rs:
crates/fingerprint/src/rules.rs:
