/root/repo/target/release/deps/consent_crawler-ad7ad3fd378022cc.d: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs

/root/repo/target/release/deps/libconsent_crawler-ad7ad3fd378022cc.rlib: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs

/root/repo/target/release/deps/libconsent_crawler-ad7ad3fd378022cc.rmeta: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs

crates/crawler/src/lib.rs:
crates/crawler/src/campaign.rs:
crates/crawler/src/capture_db.rs:
crates/crawler/src/export.rs:
crates/crawler/src/feed.rs:
crates/crawler/src/platform.rs:
crates/crawler/src/queue.rs:
