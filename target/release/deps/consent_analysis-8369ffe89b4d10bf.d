/root/repo/target/release/deps/consent_analysis-8369ffe89b4d10bf.d: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs

/root/repo/target/release/deps/libconsent_analysis-8369ffe89b4d10bf.rlib: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs

/root/repo/target/release/deps/libconsent_analysis-8369ffe89b4d10bf.rmeta: crates/analysis/src/lib.rs crates/analysis/src/customization.rs crates/analysis/src/interpolate.rs crates/analysis/src/jurisdiction.rs crates/analysis/src/marketshare.rs crates/analysis/src/quality.rs crates/analysis/src/timeseries.rs crates/analysis/src/vantage_table.rs

crates/analysis/src/lib.rs:
crates/analysis/src/customization.rs:
crates/analysis/src/interpolate.rs:
crates/analysis/src/jurisdiction.rs:
crates/analysis/src/marketshare.rs:
crates/analysis/src/quality.rs:
crates/analysis/src/timeseries.rs:
crates/analysis/src/vantage_table.rs:
