/root/repo/target/release/deps/fig4_fig6_adoption-d6ba6530f3fc0f4e.d: crates/bench/benches/fig4_fig6_adoption.rs

/root/repo/target/release/deps/fig4_fig6_adoption-d6ba6530f3fc0f4e: crates/bench/benches/fig4_fig6_adoption.rs

crates/bench/benches/fig4_fig6_adoption.rs:
