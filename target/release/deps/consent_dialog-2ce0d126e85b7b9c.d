/root/repo/target/release/deps/consent_dialog-2ce0d126e85b7b9c.d: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs

/root/repo/target/release/deps/libconsent_dialog-2ce0d126e85b7b9c.rlib: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs

/root/repo/target/release/deps/libconsent_dialog-2ce0d126e85b7b9c.rmeta: crates/dialog/src/lib.rs crates/dialog/src/coalition.rs crates/dialog/src/experiment.rs crates/dialog/src/quantcast.rs crates/dialog/src/trustarc.rs crates/dialog/src/user_model.rs

crates/dialog/src/lib.rs:
crates/dialog/src/coalition.rs:
crates/dialog/src/experiment.rs:
crates/dialog/src/quantcast.rs:
crates/dialog/src/trustarc.rs:
crates/dialog/src/user_model.rs:
