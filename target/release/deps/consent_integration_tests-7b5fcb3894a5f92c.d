/root/repo/target/release/deps/consent_integration_tests-7b5fcb3894a5f92c.d: tests/lib.rs

/root/repo/target/release/deps/libconsent_integration_tests-7b5fcb3894a5f92c.rlib: tests/lib.rs

/root/repo/target/release/deps/libconsent_integration_tests-7b5fcb3894a5f92c.rmeta: tests/lib.rs

tests/lib.rs:
