/root/repo/target/release/deps/coalition_sim-ecf73dfb94d427a3.d: examples/coalition_sim.rs

/root/repo/target/release/deps/coalition_sim-ecf73dfb94d427a3: examples/coalition_sim.rs

examples/coalition_sim.rs:
