/root/repo/target/release/deps/consent_telemetry-3c61b4c5c7158d92.d: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libconsent_telemetry-3c61b4c5c7158d92.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libconsent_telemetry-3c61b4c5c7158d92.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counter.rs crates/telemetry/src/histogram.rs crates/telemetry/src/registry.rs crates/telemetry/src/report.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counter.rs:
crates/telemetry/src/histogram.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/report.rs:
crates/telemetry/src/span.rs:
