/root/repo/target/release/deps/adoption_report-dc82590faea026da.d: examples/adoption_report.rs

/root/repo/target/release/deps/adoption_report-dc82590faea026da: examples/adoption_report.rs

examples/adoption_report.rs:
