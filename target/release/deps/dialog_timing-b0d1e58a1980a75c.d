/root/repo/target/release/deps/dialog_timing-b0d1e58a1980a75c.d: examples/dialog_timing.rs

/root/repo/target/release/deps/dialog_timing-b0d1e58a1980a75c: examples/dialog_timing.rs

examples/dialog_timing.rs:
