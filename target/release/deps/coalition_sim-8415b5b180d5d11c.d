/root/repo/target/release/deps/coalition_sim-8415b5b180d5d11c.d: examples/coalition_sim.rs

/root/repo/target/release/deps/coalition_sim-8415b5b180d5d11c: examples/coalition_sim.rs

examples/coalition_sim.rs:
