/root/repo/target/release/deps/consent_crawler-710a96f3a33c1b94.d: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs

/root/repo/target/release/deps/libconsent_crawler-710a96f3a33c1b94.rlib: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs

/root/repo/target/release/deps/libconsent_crawler-710a96f3a33c1b94.rmeta: crates/crawler/src/lib.rs crates/crawler/src/campaign.rs crates/crawler/src/capture_db.rs crates/crawler/src/export.rs crates/crawler/src/feed.rs crates/crawler/src/platform.rs crates/crawler/src/queue.rs

crates/crawler/src/lib.rs:
crates/crawler/src/campaign.rs:
crates/crawler/src/capture_db.rs:
crates/crawler/src/export.rs:
crates/crawler/src/feed.rs:
crates/crawler/src/platform.rs:
crates/crawler/src/queue.rs:
