/root/repo/target/release/deps/telemetry_report-37e7bc7f3725ef62.d: examples/telemetry_report.rs

/root/repo/target/release/deps/telemetry_report-37e7bc7f3725ef62: examples/telemetry_report.rs

examples/telemetry_report.rs:
