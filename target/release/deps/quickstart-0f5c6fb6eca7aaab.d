/root/repo/target/release/deps/quickstart-0f5c6fb6eca7aaab.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-0f5c6fb6eca7aaab: examples/quickstart.rs

examples/quickstart.rs:
