/root/repo/target/release/deps/consent_util-214d07e934a3a986.d: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs

/root/repo/target/release/deps/libconsent_util-214d07e934a3a986.rlib: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs

/root/repo/target/release/deps/libconsent_util-214d07e934a3a986.rmeta: crates/util/src/lib.rs crates/util/src/date.rs crates/util/src/json.rs crates/util/src/rng.rs crates/util/src/table.rs

crates/util/src/lib.rs:
crates/util/src/date.rs:
crates/util/src/json.rs:
crates/util/src/rng.rs:
crates/util/src/table.rs:
