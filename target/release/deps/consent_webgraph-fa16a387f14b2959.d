/root/repo/target/release/deps/consent_webgraph-fa16a387f14b2959.d: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs

/root/repo/target/release/deps/libconsent_webgraph-fa16a387f14b2959.rlib: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs

/root/repo/target/release/deps/libconsent_webgraph-fa16a387f14b2959.rmeta: crates/webgraph/src/lib.rs crates/webgraph/src/adoption.rs crates/webgraph/src/cmp.rs crates/webgraph/src/site.rs crates/webgraph/src/site_config.rs crates/webgraph/src/world.rs

crates/webgraph/src/lib.rs:
crates/webgraph/src/adoption.rs:
crates/webgraph/src/cmp.rs:
crates/webgraph/src/site.rs:
crates/webgraph/src/site_config.rs:
crates/webgraph/src/world.rs:
