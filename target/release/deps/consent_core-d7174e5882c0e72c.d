/root/repo/target/release/deps/consent_core-d7174e5882c0e72c.d: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig1.rs crates/core/src/experiments/fig10.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7_8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/i3.rs crates/core/src/experiments/methodology.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tables_a.rs crates/core/src/study.rs

/root/repo/target/release/deps/libconsent_core-d7174e5882c0e72c.rlib: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig1.rs crates/core/src/experiments/fig10.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7_8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/i3.rs crates/core/src/experiments/methodology.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tables_a.rs crates/core/src/study.rs

/root/repo/target/release/deps/libconsent_core-d7174e5882c0e72c.rmeta: crates/core/src/lib.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/fig1.rs crates/core/src/experiments/fig10.rs crates/core/src/experiments/fig5.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7_8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/i3.rs crates/core/src/experiments/methodology.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/tables_a.rs crates/core/src/study.rs

crates/core/src/lib.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/fig1.rs:
crates/core/src/experiments/fig10.rs:
crates/core/src/experiments/fig5.rs:
crates/core/src/experiments/fig6.rs:
crates/core/src/experiments/fig7_8.rs:
crates/core/src/experiments/fig9.rs:
crates/core/src/experiments/i3.rs:
crates/core/src/experiments/methodology.rs:
crates/core/src/experiments/table1.rs:
crates/core/src/experiments/tables_a.rs:
crates/core/src/study.rs:
