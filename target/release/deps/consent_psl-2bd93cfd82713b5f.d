/root/repo/target/release/deps/consent_psl-2bd93cfd82713b5f.d: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs

/root/repo/target/release/deps/libconsent_psl-2bd93cfd82713b5f.rlib: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs

/root/repo/target/release/deps/libconsent_psl-2bd93cfd82713b5f.rmeta: crates/psl/src/lib.rs crates/psl/src/list.rs crates/psl/src/rules.rs crates/psl/src/snapshot.rs

crates/psl/src/lib.rs:
crates/psl/src/list.rs:
crates/psl/src/rules.rs:
crates/psl/src/snapshot.rs:
