/root/repo/target/release/deps/vantage_compare-9e0885e27a02d434.d: examples/vantage_compare.rs

/root/repo/target/release/deps/vantage_compare-9e0885e27a02d434: examples/vantage_compare.rs

examples/vantage_compare.rs:
