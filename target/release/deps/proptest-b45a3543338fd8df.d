/root/repo/target/release/deps/proptest-b45a3543338fd8df.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-b45a3543338fd8df.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-b45a3543338fd8df.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
