/root/repo/target/release/deps/dialog_timing-f18def126d097c35.d: examples/dialog_timing.rs

/root/repo/target/release/deps/dialog_timing-f18def126d097c35: examples/dialog_timing.rs

examples/dialog_timing.rs:
