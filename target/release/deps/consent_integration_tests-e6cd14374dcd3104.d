/root/repo/target/release/deps/consent_integration_tests-e6cd14374dcd3104.d: tests/lib.rs

/root/repo/target/release/deps/libconsent_integration_tests-e6cd14374dcd3104.rlib: tests/lib.rs

/root/repo/target/release/deps/libconsent_integration_tests-e6cd14374dcd3104.rmeta: tests/lib.rs

tests/lib.rs:
