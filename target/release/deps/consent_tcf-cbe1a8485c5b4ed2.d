/root/repo/target/release/deps/consent_tcf-cbe1a8485c5b4ed2.d: crates/tcf/src/lib.rs crates/tcf/src/bits.rs crates/tcf/src/cmp_api.rs crates/tcf/src/consent_string.rs crates/tcf/src/consent_string_v2.rs crates/tcf/src/gvl.rs crates/tcf/src/gvl_diff.rs crates/tcf/src/gvl_history.rs crates/tcf/src/purposes.rs

/root/repo/target/release/deps/libconsent_tcf-cbe1a8485c5b4ed2.rlib: crates/tcf/src/lib.rs crates/tcf/src/bits.rs crates/tcf/src/cmp_api.rs crates/tcf/src/consent_string.rs crates/tcf/src/consent_string_v2.rs crates/tcf/src/gvl.rs crates/tcf/src/gvl_diff.rs crates/tcf/src/gvl_history.rs crates/tcf/src/purposes.rs

/root/repo/target/release/deps/libconsent_tcf-cbe1a8485c5b4ed2.rmeta: crates/tcf/src/lib.rs crates/tcf/src/bits.rs crates/tcf/src/cmp_api.rs crates/tcf/src/consent_string.rs crates/tcf/src/consent_string_v2.rs crates/tcf/src/gvl.rs crates/tcf/src/gvl_diff.rs crates/tcf/src/gvl_history.rs crates/tcf/src/purposes.rs

crates/tcf/src/lib.rs:
crates/tcf/src/bits.rs:
crates/tcf/src/cmp_api.rs:
crates/tcf/src/consent_string.rs:
crates/tcf/src/consent_string_v2.rs:
crates/tcf/src/gvl.rs:
crates/tcf/src/gvl_diff.rs:
crates/tcf/src/gvl_history.rs:
crates/tcf/src/purposes.rs:
