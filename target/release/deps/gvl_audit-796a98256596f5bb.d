/root/repo/target/release/deps/gvl_audit-796a98256596f5bb.d: examples/gvl_audit.rs

/root/repo/target/release/deps/gvl_audit-796a98256596f5bb: examples/gvl_audit.rs

examples/gvl_audit.rs:
