/root/repo/target/release/deps/consent_bench-924ffbd633219e5e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libconsent_bench-924ffbd633219e5e.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libconsent_bench-924ffbd633219e5e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
