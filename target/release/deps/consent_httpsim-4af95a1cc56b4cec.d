/root/repo/target/release/deps/consent_httpsim-4af95a1cc56b4cec.d: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs

/root/repo/target/release/deps/libconsent_httpsim-4af95a1cc56b4cec.rlib: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs

/root/repo/target/release/deps/libconsent_httpsim-4af95a1cc56b4cec.rmeta: crates/httpsim/src/lib.rs crates/httpsim/src/capture.rs crates/httpsim/src/engine.rs crates/httpsim/src/prober.rs crates/httpsim/src/vantage.rs

crates/httpsim/src/lib.rs:
crates/httpsim/src/capture.rs:
crates/httpsim/src/engine.rs:
crates/httpsim/src/prober.rs:
crates/httpsim/src/vantage.rs:
