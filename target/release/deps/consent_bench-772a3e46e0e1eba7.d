/root/repo/target/release/deps/consent_bench-772a3e46e0e1eba7.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libconsent_bench-772a3e46e0e1eba7.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libconsent_bench-772a3e46e0e1eba7.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
