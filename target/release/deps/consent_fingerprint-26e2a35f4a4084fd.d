/root/repo/target/release/deps/consent_fingerprint-26e2a35f4a4084fd.d: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/release/deps/libconsent_fingerprint-26e2a35f4a4084fd.rlib: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

/root/repo/target/release/deps/libconsent_fingerprint-26e2a35f4a4084fd.rmeta: crates/fingerprint/src/lib.rs crates/fingerprint/src/detect.rs crates/fingerprint/src/rules.rs

crates/fingerprint/src/lib.rs:
crates/fingerprint/src/detect.rs:
crates/fingerprint/src/rules.rs:
