/root/repo/target/release/deps/rand-0cd43c3a3fbd8e91.d: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-0cd43c3a3fbd8e91.rlib: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

/root/repo/target/release/deps/librand-0cd43c3a3fbd8e91.rmeta: vendor/rand/src/lib.rs vendor/rand/src/rngs.rs vendor/rand/src/seq.rs

vendor/rand/src/lib.rs:
vendor/rand/src/rngs.rs:
vendor/rand/src/seq.rs:
