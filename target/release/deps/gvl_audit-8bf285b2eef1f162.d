/root/repo/target/release/deps/gvl_audit-8bf285b2eef1f162.d: examples/gvl_audit.rs

/root/repo/target/release/deps/gvl_audit-8bf285b2eef1f162: examples/gvl_audit.rs

examples/gvl_audit.rs:
