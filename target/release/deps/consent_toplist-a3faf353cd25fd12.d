/root/repo/target/release/deps/consent_toplist-a3faf353cd25fd12.d: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs

/root/repo/target/release/deps/libconsent_toplist-a3faf353cd25fd12.rlib: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs

/root/repo/target/release/deps/libconsent_toplist-a3faf353cd25fd12.rmeta: crates/toplist/src/lib.rs crates/toplist/src/provider.rs crates/toplist/src/seed.rs crates/toplist/src/tranco.rs

crates/toplist/src/lib.rs:
crates/toplist/src/provider.rs:
crates/toplist/src/seed.rs:
crates/toplist/src/tranco.rs:
