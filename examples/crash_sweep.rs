//! Crash-consistency sweep: kill a durable campaign at every
//! deterministic crashpoint, resume it, and prove the bytes never
//! change.
//!
//! For each crash-after-apply index and each torn-write cut, the sweep
//! runs a campaign against a fresh [`CheckpointStore`], lets the
//! configured [`CrashPlan`] kill it, simulates the process death (the
//! in-memory trace log dies; only the store directory survives), then
//! resumes and asserts the final `CampaignState` export **and** the
//! trace JSONL are byte-identical to an uninterrupted run — at both 1
//! and 4 worker threads, under whatever `CONSENT_CHAOS` profile is set.
//!
//! ```sh
//! CONSENT_CHAOS=mild cargo run --release --bin crash_sweep
//! ```
//!
//! Outputs (the CI crash-consistency job uploads all three):
//!
//! * `SWEEP_OUT` (default `crash_sweep.json`) — summary document;
//! * `SWEEP_REPORTS` (default `crash_sweep.salvage.jsonl`) — one JSON
//!   salvage report per resumed run, labeled by crashpoint;
//! * `SWEEP_CHAIN_DIR` (default `crash_sweep.chain`) — a checkpoint
//!   store holding a real base-plus-deltas generation chain from a
//!   [`CheckpointMode::Delta`] run whose bytes were verified identical
//!   to the Full-mode campaign.
//!
//! If `CONSENT_CRASHPOINT` is set (`apply:N` or `write:K:B`), that plan
//! is swept as an extra case, so the production knob stays exercised.

use consent_checkpoint::CheckpointStore;
use consent_crawler::{
    build_toplist, run_durable_campaign, CampaignConfig, CheckpointMode, DurableOpts,
    DurableOutcome, DurableRun,
};
use consent_faultsim::{CrashPlan, FaultProfile};
use consent_httpsim::Vantage;
use consent_util::{Day, Json, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const DOMAINS: usize = 10;
const CHECKPOINT_EVERY: u64 = 5;

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "consent-crash-sweep-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

struct Sweep {
    world: World,
    list: Vec<String>,
    vantages: Vec<Vantage>,
    profile: FaultProfile,
}

impl Sweep {
    fn run(
        &self,
        store: &CheckpointStore,
        threads: usize,
        crash: CrashPlan,
        mode: CheckpointMode,
    ) -> DurableRun {
        run_durable_campaign(
            &self.world,
            &self.list,
            Day::from_ymd(2020, 5, 15),
            &self.vantages,
            SeedTree::new(9),
            store,
            &DurableOpts {
                threads,
                config: CampaignConfig {
                    fault_profile: self.profile,
                    ..CampaignConfig::default()
                },
                checkpoint_every: CHECKPOINT_EVERY,
                crash,
                sampler: None,
                mode,
                ..DurableOpts::default()
            },
        )
        .expect("durable campaign io")
    }
}

fn main() {
    consent_trace::enable();
    let chaos = std::env::var("CONSENT_CHAOS").unwrap_or_else(|_| "none".to_string());
    let sweep = {
        let world = World::new(WorldConfig {
            n_sites: 2_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        });
        let list = build_toplist(&world, DOMAINS, SeedTree::new(7));
        Sweep {
            world,
            list,
            vantages: vec![Vantage::eu_cloud(), Vantage::us_cloud()],
            profile: FaultProfile::from_env(),
        }
    };
    let pairs = (DOMAINS * sweep.vantages.len()) as u64;

    // The uninterrupted run: the bytes every crashed-and-resumed
    // variant must reproduce. Its generation files also give each
    // checkpoint write's exact size (the sweep re-writes identical
    // generations), which the torn-write cuts are derived from.
    let base_dir = tmp_dir();
    let base_store = CheckpointStore::open(&base_dir).expect("open store");
    consent_trace::clear();
    let base = sweep.run(&base_store, 1, CrashPlan::none(), CheckpointMode::Full);
    assert_eq!(base.outcome, DurableOutcome::Complete);
    let state_bytes = base.state.export();
    let trace_bytes = consent_trace::global().export_jsonl();
    let write_sizes: Vec<u64> = base_store
        .generations()
        .expect("list generations")
        .iter()
        .map(|&g| {
            std::fs::metadata(base_store.path_for(g))
                .expect("stat generation")
                .len()
        })
        .collect();
    std::fs::remove_dir_all(&base_dir).ok();

    let mut plans: Vec<CrashPlan> = (1..=pairs).map(CrashPlan::after_apply).collect();
    for (i, &size) in write_sizes.iter().enumerate() {
        let write = (i + 1) as u64;
        for cut in [0, 1, size / 2, size - 1] {
            plans.push(CrashPlan::truncate_write(write, cut));
        }
    }
    if !CrashPlan::from_env().is_none() {
        plans.push(CrashPlan::from_env());
    }

    println!("crash-consistency sweep");
    println!("=======================");
    println!(
        "{} domains x {} vantages = {pairs} pairs, checkpoint every {CHECKPOINT_EVERY}, chaos={chaos}",
        DOMAINS,
        sweep.vantages.len()
    );
    println!(
        "{} crashpoints x 2 thread counts = {} crash/resume cycles\n",
        plans.len(),
        plans.len() * 2
    );

    let mut report_lines = String::new();
    let mut verified = 0u64;
    let mut quarantined_total = 0u64;
    for threads in [1usize, 4] {
        for plan in &plans {
            let label = format!("{} @ {threads} threads", plan.describe());
            let dir = tmp_dir();
            let store = CheckpointStore::open(&dir).expect("open store");
            consent_trace::clear();
            let crashed = sweep.run(&store, threads, *plan, CheckpointMode::Full);
            let durable_pairs = match crashed.outcome {
                DurableOutcome::Crashed { durable_pairs, .. } => durable_pairs,
                _ => panic!("{label}: crashpoint never fired"),
            };
            // The process dies: the in-memory trace log goes with it.
            consent_trace::clear();
            let resumed = sweep.run(&store, threads, CrashPlan::none(), CheckpointMode::Full);
            assert_eq!(resumed.outcome, DurableOutcome::Complete, "{label}");
            assert!(
                resumed.state.export() == state_bytes,
                "{label}: state diverged after resume"
            );
            assert!(
                consent_trace::global().export_jsonl() == trace_bytes,
                "{label}: trace diverged after resume"
            );
            verified += 1;
            quarantined_total += resumed.salvage.quarantined.len() as u64;
            let line = Json::object([
                ("crashpoint".to_string(), Json::str(plan.describe())),
                ("threads".to_string(), Json::int(threads as i64)),
                ("durable_pairs".to_string(), Json::int(durable_pairs as i64)),
                ("salvage".to_string(), resumed.salvage.to_json()),
            ]);
            report_lines.push_str(&line.to_compact());
            report_lines.push('\n');
            std::fs::remove_dir_all(&dir).ok();
        }
        println!(
            "threads={threads}: {} crashpoints resumed byte-identical",
            plans.len()
        );
    }

    // Sample delta chain: re-run the same campaign in Delta mode
    // against a store directory that is *kept* on disk, so CI can
    // upload a real base-plus-deltas generation chain as an
    // inspectable artifact. The run doubles as a cross-mode check:
    // delta checkpoints must reproduce the Full-mode bytes exactly.
    let chain_dir =
        std::env::var("SWEEP_CHAIN_DIR").unwrap_or_else(|_| "crash_sweep.chain".to_string());
    std::fs::remove_dir_all(&chain_dir).ok();
    let chain_store = CheckpointStore::open(&chain_dir).expect("open chain store");
    consent_trace::clear();
    let chain = sweep.run(
        &chain_store,
        1,
        CrashPlan::none(),
        CheckpointMode::Delta { rebase_every: 64 },
    );
    assert_eq!(chain.outcome, DurableOutcome::Complete);
    assert!(
        chain.state.export() == state_bytes,
        "delta-mode state diverged from full-mode bytes"
    );
    assert!(
        consent_trace::global().export_jsonl() == trace_bytes,
        "delta-mode trace diverged from full-mode bytes"
    );
    let chain_gens = chain_store.generations().expect("list chain generations");
    assert!(
        chain_gens.len() >= 2,
        "sample chain must hold a base and at least one delta: {chain_gens:?}"
    );
    println!(
        "sample delta chain: {} generations (base + {} deltas) kept in {chain_dir}",
        chain_gens.len(),
        chain_gens.len() - 1
    );

    let summary = Json::object([
        ("sweep".to_string(), Json::str("crash_consistency")),
        ("schema".to_string(), Json::int(1)),
        ("chaos".to_string(), Json::str(chaos)),
        ("pairs".to_string(), Json::int(pairs as i64)),
        (
            "checkpoint_every".to_string(),
            Json::int(CHECKPOINT_EVERY as i64),
        ),
        ("crashpoints".to_string(), Json::int(plans.len() as i64)),
        ("cycles_verified".to_string(), Json::int(verified as i64)),
        (
            "generations_quarantined".to_string(),
            Json::int(quarantined_total as i64),
        ),
        ("delta_chain_dir".to_string(), Json::str(&chain_dir)),
        (
            "delta_chain_generations".to_string(),
            Json::int(chain_gens.len() as i64),
        ),
    ]);
    let out = std::env::var("SWEEP_OUT").unwrap_or_else(|_| "crash_sweep.json".to_string());
    let reports =
        std::env::var("SWEEP_REPORTS").unwrap_or_else(|_| "crash_sweep.salvage.jsonl".to_string());
    std::fs::write(&out, format!("{}\n", summary.to_pretty()))
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    std::fs::write(&reports, report_lines).unwrap_or_else(|e| panic!("writing {reports}: {e}"));
    println!(
        "\n{verified} cycles verified, {quarantined_total} generations quarantined and salvaged"
    );
    println!("wrote {out}, {reports} and {chain_dir}/");
}
