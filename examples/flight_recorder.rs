//! Campaign flight recorder: run a durable campaign under mild chaos
//! with both sampling planes armed, then print the post-run flight
//! report.
//!
//! Two samplers watch the same global telemetry registry:
//!
//! * a **logical-tick** sampler wired into [`DurableOpts::sampler`] —
//!   the durable driver ticks it after every checkpoint write, so its
//!   `OBS` JSONL export is deterministic (byte-identical across thread
//!   counts and kill-halfway resumes; see `tests/it_obs.rs`);
//! * a **wall-clock** sampler on a background thread — gauges, latency
//!   quantiles, and real pairs/sec, outside the byte-identity
//!   guarantee, feeding the human-facing flight report.
//!
//! ```sh
//! CONSENT_CHAOS=mild cargo run --release --bin flight_recorder
//! CONSENT_IO_CHAOS=mild cargo run --release --bin flight_recorder  # + storage faults
//! ```
//!
//! Outputs land under `target/` so a casual run never litters the repo
//! root (the CI chaos job uploads all three):
//!
//! * `FLIGHT_OBS_OUT` (default `target/OBS_campaign.jsonl`) —
//!   deterministic per-checkpoint samples, one JSON object per line;
//! * `FLIGHT_REPORT_OUT` (default `target/flight_report.json`) — the
//!   flight report document rendered to stdout;
//! * `FLIGHT_PROM_OUT` (default `target/metrics.prom`) — Prometheus
//!   text exposition of the end-of-run registry, what a live scrape
//!   endpoint would have served.

use consent_crawler::{
    build_toplist, open_chaos_store, run_durable_campaign, CampaignConfig, DurableOpts,
};
use consent_faultsim::{CrashPlan, FaultProfile};
use consent_httpsim::Vantage;
use consent_obs::{FlightReport, ObsConfig, Sampler};
use consent_util::{Day, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::time::Duration;

const DOMAINS: usize = 60;
const CHECKPOINT_EVERY: u64 = 25;

fn out_path(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| {
        // Default artifacts live under target/ — already gitignored,
        // and created here in case the example runs before any build.
        let _ = std::fs::create_dir_all("target");
        format!("target/{default}")
    })
}

fn main() {
    // Mild chaos unless CONSENT_CHAOS says otherwise: a flight report
    // with an empty fault heatmap demonstrates very little.
    let profile = if std::env::var("CONSENT_CHAOS").is_ok() {
        FaultProfile::from_env()
    } else {
        FaultProfile::mild()
    };
    consent_telemetry::enable();
    consent_trace::enable();

    let world = World::new(WorldConfig {
        n_sites: 4_000,
        seed: 42,
        adoption: AdoptionConfig::default(),
    });
    let list = build_toplist(&world, DOMAINS, SeedTree::new(7));
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];

    let registry = consent_telemetry::global();
    let before = registry.snapshot();
    let logical = Sampler::attach(registry, ObsConfig::deterministic());
    let wall = Sampler::attach(registry, ObsConfig::wall(Duration::from_millis(10)));
    let live = wall.start();

    let dir = std::env::temp_dir().join(format!("consent-flight-recorder-{}", std::process::id()));
    // `CONSENT_IO_CHAOS` routes the store through a fault-injecting
    // filesystem; the supervisor's degradations then show up in the
    // flight report's storage-health section.
    let store = open_chaos_store(&dir).expect("open checkpoint store");
    let run = run_durable_campaign(
        &world,
        &list,
        Day::from_ymd(2020, 5, 15),
        &vantages,
        SeedTree::new(9),
        &store,
        &DurableOpts {
            threads: 4,
            config: CampaignConfig {
                fault_profile: profile,
                ..CampaignConfig::default()
            },
            checkpoint_every: CHECKPOINT_EVERY,
            crash: CrashPlan::none(),
            sampler: Some(logical.clone()),
            ..DurableOpts::default()
        },
    )
    .expect("durable campaign io");
    assert!(run.outcome.finished(), "campaign wedged: {:?}", run.outcome);
    if !run.health.is_healthy() {
        eprintln!("storage degraded: {}", run.health.summary());
    }
    live.stop();
    let total = registry.delta(&before);

    // The wall series has real rates and per-window latency; fall back
    // to the deterministic series if the campaign outran the interval.
    let wall_series = wall.series();
    let series = if wall_series.is_empty() {
        logical.series()
    } else {
        wall_series
    };
    let report = FlightReport::build(&series, &total);
    print!("{}", report.render());
    println!(
        "\n{} pairs durable across {} checkpoint generations ({} logical windows, {} wall samples)",
        run.state.pairs_done,
        store.generations().expect("list generations").len(),
        logical.len(),
        wall.len(),
    );

    let obs_out = out_path("FLIGHT_OBS_OUT", "OBS_campaign.jsonl");
    std::fs::write(&obs_out, logical.export_jsonl()).expect("write OBS jsonl");
    let report_out = out_path("FLIGHT_REPORT_OUT", "flight_report.json");
    std::fs::write(&report_out, format!("{}\n", report.to_json().to_pretty()))
        .expect("write flight report");
    let prom_out = out_path("FLIGHT_PROM_OUT", "metrics.prom");
    std::fs::write(&prom_out, wall.prometheus()).expect("write prometheus exposition");
    eprintln!("wrote {obs_out}, {report_out}, {prom_out}");

    std::fs::remove_dir_all(&dir).expect("clean up store");
}
