//! Consent-coalition dynamics (§5.2 "The Future of Consent Management").
//!
//! Simulates users browsing across CMP coalitions with globally shared
//! consent, quantifying the "commodification of consent": larger
//! coalitions prompt users less and inherit more pre-existing consent —
//! the network effect behind the predicted winner-takes-all dynamics.
//!
//! ```sh
//! cargo run --release --bin coalition_sim
//! ```

use consent_dialog::{simulate_coalitions, CoalitionConfig};
use consent_util::table::{pct, Table};
use consent_util::SeedTree;
use consent_webgraph::ALL_CMPS;

fn main() {
    let seed = SeedTree::new(2020);

    for (label, global) in [
        ("global consent (TCF v1 scope)", true),
        ("service-specific (v2 mode)", false),
    ] {
        let config = CoalitionConfig {
            global_scope: global,
            ..CoalitionConfig::default()
        };
        let r = simulate_coalitions(&config, seed);
        let mut t = Table::with_columns(&[
            "CMP",
            "Coalition size",
            "Visits",
            "Prompt rate",
            "Pre-existing consent",
        ]);
        t.numeric().title(format!("Coalition simulation — {label}"));
        for cmp in ALL_CMPS {
            let Some(stats) = r.per_cmp.get(&cmp) else {
                continue;
            };
            t.row(vec![
                cmp.name().into(),
                config.coalition_sizes[&cmp].to_string(),
                stats.visits.to_string(),
                pct(stats.prompt_rate()),
                pct(stats.preexisting_rate()),
            ]);
        }
        println!("{t}");
        println!(
            "Overall prompts per visit: {}\n",
            pct(r.overall_prompt_rate())
        );
    }

    println!(
        "Takeaway: under global scope the largest coalition's users are prompted\n\
         least — consent collected once is reused across the whole coalition,\n\
         the network effect behind the paper's winner-takes-all prediction."
    );
}
