//! Trace explain: run a small traced campaign and show every layer of
//! the observability stack for one `(domain, vantage)` pair — the
//! causal tree, the distilled provenance record, the byte-stable JSONL
//! export, and a Chrome `trace_event` file loadable in Perfetto or
//! `chrome://tracing`.
//!
//! ```sh
//! cargo run --release --bin trace_explain
//! CONSENT_CHAOS=mild cargo run --release --bin trace_explain
//! ```
//!
//! The fault profile is read from `CONSENT_CHAOS` (`mild`, `heavy`, or
//! unset for none); the Chrome document is written to
//! `trace_explain.chrome.json` (override with `TRACE_EXPLAIN_OUT`).

use consent_core::{experiments, Study};
use consent_crawler::{build_toplist, run_campaign_with, CampaignConfig, CampaignRun, RetryPolicy};
use consent_faultsim::FaultProfile;
use consent_httpsim::Vantage;
use consent_trace::{Provenance, TraceTree};
use consent_util::Day;

fn main() {
    println!("consent-observatory trace explain");
    println!("=================================\n");
    let study = Study::quick();
    let profile = FaultProfile::from_env();
    println!(
        "fault profile: {}\n",
        if profile.is_none() {
            "none"
        } else {
            "chaos (CONSENT_CHAOS)"
        }
    );

    // A small two-vantage campaign with the global trace log recording;
    // run_traced hands back the byte-stable JSONL alongside the run.
    let toplist = build_toplist(study.world(), 40, study.seed().child("trace-top"));
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let config = CampaignConfig {
        fault_profile: profile,
        retry: RetryPolicy::paper(),
        ..CampaignConfig::default()
    };
    let (run, jsonl): (CampaignRun, String) = experiments::run_traced(|| {
        run_campaign_with(
            study.world(),
            &toplist,
            Day::from_ymd(2020, 5, 15),
            &vantages,
            study.seed().child("trace-campaign"),
            &config,
        )
    });
    let log = consent_trace::global();
    let ids = log.trace_ids();
    println!(
        "{} traces, {} events, {} provenance records\n",
        ids.len(),
        log.len(),
        run.state.provenance.len()
    );

    // Pick the most interesting pair to explain: the one with the most
    // attempts (ties broken by trace id, so the choice is stable).
    let pick = run
        .state
        .provenance
        .records()
        .iter()
        .max_by_key(|p| (p.attempts.len(), p.trace_id))
        .expect("campaign recorded no pairs");
    let tree = TraceTree::build(&log.trace(pick.trace_id)).expect("pair trace builds");
    println!("causal tree of {} @ {}:", pick.domain, pick.vantage);
    println!("{}", tree.render());

    // The trace distills to the exact record the campaign persisted.
    let distilled = Provenance::from_tree(&tree).expect("pair trace distills");
    assert_eq!(
        &distilled, pick,
        "distilled provenance must equal the stored record"
    );
    println!("provenance (stored == distilled from the trace):");
    println!("{}\n", pick.to_json().to_compact());

    println!("JSONL export: {} lines, first two:", jsonl.lines().count());
    for line in jsonl.lines().take(2) {
        println!("  {line}");
    }

    // Chrome trace_event document: one thread track per vantage.
    let chrome = consent_trace::export_chrome_string(&log.snapshot());
    let out = std::env::var("TRACE_EXPLAIN_OUT")
        .unwrap_or_else(|_| "trace_explain.chrome.json".to_string());
    std::fs::write(&out, &chrome).expect("write chrome trace");
    println!(
        "\nwrote {} ({} bytes) — load it in Perfetto or chrome://tracing",
        out,
        chrome.len()
    );
    consent_trace::clear();
}
