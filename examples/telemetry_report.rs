//! Telemetry report: run a reduced-scale study end-to-end with metric
//! recording on, then print the per-experiment run reports, the study
//! summary, and the full registry — the simulator's analogue of the
//! paper's §3.5 data-quality accounting.
//!
//! ```sh
//! cargo run --release --bin telemetry_report
//! ```

use consent_core::{experiments, Study};
use consent_crawler::{FeedConfig, Platform};
use consent_telemetry::{global, RunReport};
use consent_util::Day;

fn main() {
    consent_telemetry::enable();
    println!("consent-observatory telemetry report");
    println!("====================================\n");
    let study = Study::quick();

    // Run a slice of the paper's experiments through the reporting
    // wrappers; each records a RunReport on the study.
    let t1 = experiments::table1::table1_reported(&study);
    let f6 = experiments::fig6::fig6_reported(&study);
    let _f9 = experiments::fig9::fig9_reported(&study);
    let _i3 = experiments::i3::i3_customization_reported(&study, &t1);
    let _meth = experiments::methodology::methodology_reported(&study, &f6);

    for report in study.reports() {
        println!("{}", report.render());
        println!();
    }
    println!("{}\n", study.report_summary());

    // Reconciliation: run the social-feed platform under a report and
    // check that the capture_db.insert counter family sums exactly to
    // the database's row count, per vantage and in total.
    let platform = Platform::new(
        study.world(),
        FeedConfig {
            urls_per_day: 200,
            ..FeedConfig::default()
        },
        study.seed().child("telemetry-example"),
    );
    let ((db, stats), report) = RunReport::collect(global(), "platform", || {
        platform.run(Day::from_ymd(2020, 5, 1), Day::from_ymd(2020, 5, 4))
    });
    let by_vantage = report.captures_by_location();
    let telemetry_total: u64 = by_vantage.values().sum();
    assert_eq!(
        telemetry_total,
        db.len(),
        "per-vantage telemetry counts must sum to the CaptureDb row count"
    );
    assert_eq!(report.captures_total(), stats.captured);
    println!(
        "Reconciliation: {} telemetry captures == {} CaptureDb rows",
        telemetry_total,
        db.len()
    );
    for (location, n) in &by_vantage {
        println!("  {location}: {n}");
    }
    println!("\n{}\n", report.render());

    // The full registry state, as tables and as a JSONL sample.
    let snapshot = global().snapshot();
    println!("{}", snapshot.render());
    println!("JSONL sample (first 5 lines):");
    for line in snapshot.to_jsonl().lines().take(5) {
        println!("  {line}");
    }
}
