//! Longitudinal CMP adoption report: Figure 6 (adoption over time),
//! Figure 4 (switching flows), Figure 5 (market share by toplist size),
//! and the methodology statistics, from one social-feed run.
//!
//! ```sh
//! cargo run --release --bin adoption_report            # reduced scale
//! cargo run --release --bin adoption_report -- --full  # paper scale
//! ```

use consent_core::{experiments, Study, StudyConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let study = if full {
        println!("Running at paper scale (1M sites, full window) — this takes a while.\n");
        Study::new(StudyConfig::default())
    } else {
        Study::quick()
    };

    let f6 = experiments::fig6::fig6(&study);
    println!("{}", f6.render());
    println!("{}", f6.render_switching());

    let f5 = experiments::fig5::fig5(&study);
    println!("{}", f5.render());

    let m = experiments::methodology::methodology(&study, &f6);
    println!("{}", m.render());
}
