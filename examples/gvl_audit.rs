//! Audit the Global Vendor List history: Figures 7 and 8, plus a dump of
//! one version in the `vendor-list.json` wire format and a consent
//! string round-trip against it — the auditing workflow the paper's
//! §5.2 suggests regulators could adopt.
//!
//! ```sh
//! cargo run --release --bin gvl_audit
//! ```

use consent_core::{experiments, Study};
use consent_tcf::{ConsentString, PurposeId, VendorEncoding, VendorList};

fn main() {
    let study = Study::quick();
    let r = experiments::fig7_8::gvl_figures(&study);

    println!("{}", r.render_fig7());
    println!("{}", r.render_fig8());
    println!(
        "Net shift toward consent across the window: {:+}\n",
        r.net_toward_consent()
    );

    // Serialize the final version to the wire format and read it back.
    let last = r.history.last().expect("non-empty history");
    let json = last.to_json().to_compact();
    println!(
        "Final GVL: version {}, {} vendors, {} bytes of JSON",
        last.vendor_list_version,
        last.len(),
        json.len()
    );
    let parsed = VendorList::from_json_text(&json).expect("own output parses");
    assert_eq!(&parsed, last);

    // Build an accept-all consent string against it, as a CMP would.
    let consent = ConsentString::new(10, last.vendor_list_version, last.max_vendor_id())
        .accept_all(consent_tcf::purposes::all_purpose_ids());
    let encoded = consent.encode(VendorEncoding::Auto);
    println!(
        "Accept-all consent string ({} chars): {encoded}",
        encoded.len()
    );
    let decoded = ConsentString::decode(&encoded).expect("round-trips");
    println!(
        "Decoded: {} vendor consents, purpose 1 allowed: {}",
        decoded.consent_count(),
        decoded.purpose_allowed(PurposeId(1))
    );

    // Who claims legitimate interest for purpose 3 (ad selection)?
    let li3 = last.leg_int_count(PurposeId(3));
    println!(
        "\nVendors claiming legitimate interest for purpose 3: {li3} of {} ({:.0}%)",
        last.len(),
        li3 as f64 / last.len() as f64 * 100.0
    );
}
