//! Vantage-point sensitivity: Table 1 (May 2020) vs Table A.3
//! (January 2020), showing how the same toplist measured from six crawl
//! configurations yields systematically different CMP counts — and how
//! US-vantage coverage grows as CCPA adoption ramps.
//!
//! ```sh
//! cargo run --release --bin vantage_compare
//! ```

use consent_core::{experiments, Study};
use consent_util::table::pct;

fn main() {
    let study = Study::quick();

    let jan = experiments::table1::table_a3(&study);
    let may = experiments::table1::table1(&study);
    println!("{}", jan.render());
    println!("{}", may.render());

    println!(
        "US-cloud coverage: {} (January) -> {} (May)",
        pct(jan.table.coverage(0)),
        pct(may.table.coverage(0))
    );
    println!("Paper: 70% -> 79%, driven by CCPA adoption outside the EU.\n");

    // The customization analysis reuses the May campaign's EU-university
    // DOM snapshots.
    let i3 = experiments::i3::i3_customization(&may);
    println!("{}", i3.render());

    // §4.1 jurisdiction: Quantcast's EU+UK skew vs OneTrust's US focus.
    let j = experiments::i3::jurisdiction(&may);
    println!("{}", j.render());
    println!("Paper: Quantcast 38.3% EU+UK TLDs, OneTrust 16.3%.");
}
