//! Quickstart: build a study and reproduce the paper's headline results
//! at reduced scale.
//!
//! ```sh
//! cargo run --release --bin quickstart
//! ```

use consent_core::{experiments, Study};

fn main() {
    println!("consent-observatory quickstart");
    println!("==============================\n");
    println!("Building a reduced-scale study (50k sites, seeded)...\n");
    let study = Study::quick();

    // Table A.2: the fingerprints everything below relies on.
    println!("{}", experiments::tables_a::table_a2());
    println!();

    // Table 1: CMP occurrence by vantage point.
    let t1 = experiments::table1::table1(&study);
    println!("{}", t1.render());

    // Figure 10: the time-to-consent field experiment.
    let f10 = experiments::fig10::fig10(&study);
    println!("{}", f10.render());

    // Figure 9: the TrustArc opt-out cost.
    let f9 = experiments::fig9::fig9_with_hours(&study, 72);
    println!("{}", f9.render());

    println!("Done. See EXPERIMENTS.md for the full paper-vs-measured index.");
}
