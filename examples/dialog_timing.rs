//! The user-interface experiments in isolation: the randomized Quantcast
//! field experiment (Figure 10) and the TrustArc opt-out probes
//! (Figure 9), with distribution detail beyond the paper's medians.
//!
//! ```sh
//! cargo run --release --bin dialog_timing
//! ```

use consent_core::{experiments, Study};
use consent_stats::{median_ci, Histogram};

fn main() {
    let study = Study::quick();

    let f10 = experiments::fig10::fig10(&study);
    println!("{}", f10.render());

    // Distribution detail: histogram of reject times in the
    // "More Options" arm, where the paper finds the doubled median.
    let rejects = &f10.experiment.more_options.reject_times;
    let mut h = Histogram::new(0.0, 20.0, 10);
    h.record_all(rejects.iter().copied());
    println!("Reject-time distribution, \"More Options\" arm (seconds):");
    println!("{}", h.render(40));

    // Bootstrap CI on the headline medians.
    for (name, xs) in [
        ("accept (direct)", &f10.experiment.direct.accept_times),
        ("reject (direct)", &f10.experiment.direct.reject_times),
        (
            "reject (more options)",
            &f10.experiment.more_options.reject_times,
        ),
    ] {
        if let Some(ci) = median_ci(xs, 1_000, 0.95, study.seed().child(name)) {
            println!(
                "median {name}: {:.2}s (95% CI {:.2}–{:.2})",
                ci.estimate, ci.lower, ci.upper
            );
        }
    }
    println!();

    let f9 = experiments::fig9::fig9(&study);
    println!("{}", f9.render());
}
