//! Campaign watchdog: run a durable campaign under chaos with the
//! `consent-watch` rule engine wired into the checkpoint driver, then
//! print the alert log and the annotated health/flight reports.
//!
//! The watch engine evaluates deterministic detectors — burn-rate SLOs,
//! EWMA drift, and per-vantage coverage gaps — over the same
//! logical-tick windows the flight recorder samples. Detector state
//! rides inside every checkpoint (section `watch-state`), so alerts are
//! crash-consistent: an alert event exists iff the window that produced
//! it is durable, and the `ALERTS` export is byte-identical across
//! thread counts and kill-halfway resumes (see `tests/it_watch.rs`).
//!
//! ```sh
//! CONSENT_CHAOS=mild cargo run --release --bin watchdog
//! CONSENT_WATCH='slo:usable:900:2;gap:5' cargo run --release --bin watchdog
//! ```
//!
//! Outputs land under `target/` (the CI watch job uploads all three):
//!
//! * `WATCH_ALERTS_OUT` (default `target/ALERTS_campaign.jsonl`) — the
//!   deterministic alert lifecycle log, one JSON object per line;
//! * `WATCH_REPORT_OUT` (default `target/watch_report.json`) — the
//!   flight report document with its watchdog-alerts section;
//! * `WATCH_PROM_OUT` (default `target/watch_metrics.prom`) —
//!   Prometheus exposition including the `watch_*` alert metrics.

use consent_crawler::{
    build_toplist, open_chaos_store, run_durable_campaign, CampaignConfig, DurableOpts,
};
use consent_faultsim::{CrashPlan, FaultProfile};
use consent_httpsim::Vantage;
use consent_obs::{prometheus, FlightReport, ObsConfig, Sampler};
use consent_util::{Day, SeedTree};
use consent_watch::rules::WatchConfig;
use consent_watch::Watch;
use consent_webgraph::{AdoptionConfig, World, WorldConfig};

const DOMAINS: usize = 60;
const CHECKPOINT_EVERY: u64 = 25;

fn out_path(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| {
        // Default artifacts live under target/ — already gitignored,
        // and created here in case the example runs before any build.
        let _ = std::fs::create_dir_all("target");
        format!("target/{default}")
    })
}

fn main() {
    // Mild chaos unless CONSENT_CHAOS says otherwise: a watchdog run
    // where nothing can possibly fire demonstrates very little.
    let profile = if std::env::var("CONSENT_CHAOS").is_ok() {
        FaultProfile::from_env()
    } else {
        FaultProfile::mild()
    };
    consent_telemetry::enable();
    consent_trace::enable();

    let world = World::new(WorldConfig {
        n_sites: 4_000,
        seed: 42,
        adoption: AdoptionConfig::default(),
    });
    let list = build_toplist(&world, DOMAINS, SeedTree::new(7));
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];

    let registry = consent_telemetry::global();
    let before = registry.snapshot();
    let sampler = Sampler::attach(registry, ObsConfig::deterministic());
    // `CONSENT_WATCH` overrides the rule set; tight thresholds here so
    // a mild-chaos demo run actually exercises the alert lifecycle.
    let rules = match std::env::var("CONSENT_WATCH") {
        Ok(_) => WatchConfig::from_env(),
        Err(_) => WatchConfig::parse(
            "slo:usable:990:2;slo:deadletter:5:2;slo:iofault:250:3;\
             drift:throughput:150:2;gap:3",
        )
        .expect("built-in demo rules parse"),
    };
    println!("watch rules: {rules}");
    let watch = Watch::attach(registry, rules);

    let dir = std::env::temp_dir().join(format!("consent-watchdog-{}", std::process::id()));
    let store = open_chaos_store(&dir).expect("open checkpoint store");
    let run = run_durable_campaign(
        &world,
        &list,
        Day::from_ymd(2020, 5, 15),
        &vantages,
        SeedTree::new(9),
        &store,
        &DurableOpts {
            threads: 4,
            config: CampaignConfig {
                fault_profile: profile,
                ..CampaignConfig::default()
            },
            checkpoint_every: CHECKPOINT_EVERY,
            crash: CrashPlan::none(),
            sampler: Some(sampler.clone()),
            watch: Some(watch.clone()),
            ..DurableOpts::default()
        },
    )
    .expect("durable campaign io");
    assert!(run.outcome.finished(), "campaign wedged: {:?}", run.outcome);
    let total = registry.delta(&before);

    println!("{}", run.health.render());
    let report = FlightReport::build(&sampler.series(), &total).with_alerts(watch.flight_alerts());
    print!("{}", report.render());
    println!(
        "\n{} pairs durable, {} alert events ({} currently firing)",
        run.state.pairs_done,
        watch.len(),
        watch.firing(),
    );

    let alerts_out = out_path("WATCH_ALERTS_OUT", "ALERTS_campaign.jsonl");
    std::fs::write(&alerts_out, watch.export_jsonl()).expect("write ALERTS jsonl");
    let report_out = out_path("WATCH_REPORT_OUT", "watch_report.json");
    std::fs::write(&report_out, format!("{}\n", report.to_json().to_pretty()))
        .expect("write watch report");
    let prom_out = out_path("WATCH_PROM_OUT", "watch_metrics.prom");
    std::fs::write(&prom_out, prometheus::exposition(&registry.snapshot()))
        .expect("write prometheus exposition");
    eprintln!("wrote {alerts_out}, {report_out}, {prom_out}");

    std::fs::remove_dir_all(&dir).expect("clean up store");
}
