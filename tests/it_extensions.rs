//! Extensions beyond the paper's core results: the TCF v2 migration path
//! and the consent-coalition dynamics of §5.2.

use consent_dialog::{
    run_experiment, simulate_coalitions, CoalitionConfig, Decision, ExperimentConfig,
};
use consent_tcf::{upgrade_from_v1, ConsentString, PurposeId, TcStringV2};
use consent_util::SeedTree;
use consent_webgraph::Cmp;

#[test]
fn field_experiment_consents_upgrade_to_v2() {
    // Every consent string produced by the Figure 10 experiment must
    // upgrade losslessly to TCF v2 and round-trip on the v2 wire format.
    let r = run_experiment(&ExperimentConfig::default(), SeedTree::new(11));
    let mut checked = 0;
    for visit in r.direct.visits.iter().chain(&r.more_options.visits) {
        let Some(s) = &visit.consent_string else {
            continue;
        };
        let v1 = ConsentString::decode(s).expect("experiment emits valid v1");
        let v2 = upgrade_from_v1(&v1);
        let wire = v2.encode();
        assert!(wire.starts_with('C'), "v2 signature");
        let back = TcStringV2::decode(&wire).unwrap();
        assert_eq!(back.vendor_consents, v1.vendor_consents);
        assert_eq!(back.purposes_consent, v1.purposes_allowed);
        match visit.decision {
            Decision::Accepted => {
                assert!(back.vendor_allowed(1));
                assert!(back.purposes_consent.contains(&1));
            }
            Decision::Rejected => {
                assert!(back.vendor_consents.is_empty());
            }
            Decision::None => unreachable!("no consent string without a decision"),
        }
        checked += 1;
    }
    assert!(checked > 2_000, "only {checked} strings checked");
}

#[test]
fn coalition_network_effect_scales_with_size() {
    // Doubling every coalition's size must not increase any prompt rate,
    // and the big-vs-small gradient must persist.
    let base = CoalitionConfig::default();
    let mut doubled = base.clone();
    for v in doubled.coalition_sizes.values_mut() {
        *v *= 2;
    }
    let r1 = simulate_coalitions(&base, SeedTree::new(5));
    let r2 = simulate_coalitions(&doubled, SeedTree::new(5));
    // Same users, more sites: per-coalition prompt counts are bounded by
    // users, so rates cannot blow up; the ordering stays.
    for r in [&r1, &r2] {
        let big = r.per_cmp[&Cmp::OneTrust].prompt_rate();
        let small = r.per_cmp[&Cmp::Crownpeak].prompt_rate();
        assert!(big < small, "big {big} !< small {small}");
    }
    // Global scope keeps overall prompting rare.
    assert!(
        r1.overall_prompt_rate() < 0.25,
        "{}",
        r1.overall_prompt_rate()
    );
}

#[test]
fn v2_publisher_restrictions_survive_upgrade_pipeline() {
    // Build a v2 string with restrictions on top of an upgraded v1 and
    // confirm wire fidelity — the part of v2 with no v1 counterpart.
    let v1 = ConsentString::new(5, 200, 100).accept_all(consent_tcf::purposes::all_purpose_ids());
    let mut v2 = upgrade_from_v1(&v1);
    v2.purposes_li_transparency = [2, 3].into();
    v2.publisher_restrictions.insert(
        (3, consent_tcf::RestrictionType::RequireConsent),
        [10, 11, 12, 50].into(),
    );
    v2.publisher_restrictions
        .insert((1, consent_tcf::RestrictionType::NotAllowed), [99].into());
    let wire = v2.encode();
    let back = TcStringV2::decode(&wire).unwrap();
    assert_eq!(back, v2);
    assert!(back.purposes_consent.contains(&PurposeId(1).0));
    assert_eq!(back.publisher_restrictions.len(), 2);
}
