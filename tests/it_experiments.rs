//! Paper-shape assertions over a mid-sized study: the qualitative claims
//! of every results subsection must hold end-to-end.

use consent_core::experiments;
use consent_integration_tests::midsize_study;
use consent_util::Day;
use consent_webgraph::Cmp;

#[test]
fn headline_adoption_story_holds() {
    let study = midsize_study();
    let f6 = experiments::fig6::fig6(&study);

    // Figure 6: adoption roughly doubles June 2018 → June 2019 → June
    // 2020 (abstract's headline claim).
    let jun18 = experiments::fig6::count_at(&f6.series, Day::from_ymd(2018, 6, 15));
    let jun19 = experiments::fig6::count_at(&f6.series, Day::from_ymd(2019, 6, 15));
    let jun20 = experiments::fig6::count_at(&f6.series, Day::from_ymd(2020, 6, 15));
    assert!(jun18 > 0, "no adoption visible in June 2018");
    let r1 = jun19 as f64 / jun18 as f64;
    let r2 = jun20 as f64 / jun19 as f64;
    // Early-window measurements ramp in as the feed first covers the
    // toplist (the paper's crawl volume was ~3 orders of magnitude
    // higher), so the first ratio can overshoot the paper's ~2x.
    assert!(
        (1.3..=9.0).contains(&r1),
        "2018→2019 growth {r1} ({jun18} → {jun19})"
    );
    assert!(
        (1.2..=3.2).contains(&r2),
        "2019→2020 growth {r2} ({jun19} → {jun20})"
    );

    // Figure 4: Cookiebot is the clear net loser.
    let cb_net = f6.switching.net(Cmp::Cookiebot);
    assert!(cb_net < 0, "Cookiebot net {cb_net}");
    let lost = f6.switching.lost_by(Cmp::Cookiebot);
    let gained = f6.switching.gained_by(Cmp::Cookiebot);
    assert!(lost >= 4 * gained.max(1), "lost {lost} vs gained {gained}");
}

#[test]
fn vantage_gradient_matches_table1() {
    let study = midsize_study();
    let t1 = experiments::table1::table1(&study);
    // Coverage gradient: US cloud < EU cloud < EU university (paper:
    // 79% < 87% < 97-100%).
    let us = t1.table.coverage(0);
    let eu = t1.table.coverage(1);
    let uni = t1.table.coverage(3);
    assert!(us < eu, "US {us} !< EU {eu}");
    assert!(eu < uni, "EU {eu} !< university {uni}");
    assert!((0.70..0.92).contains(&us), "US coverage {us} (paper: 0.79)");
    assert!((0.80..0.97).contains(&eu), "EU coverage {eu} (paper: 0.87)");
    // Languages don't matter (§3.5).
    let de = t1.table.total(4) as f64;
    let gb = t1.table.total(5) as f64;
    assert!((de - gb).abs() / gb < 0.05, "language effect {de} vs {gb}");
}

#[test]
fn fig5_mid_market_hump() {
    let study = midsize_study();
    let f5 = experiments::fig5::fig5(&study);
    let at = |s: u32| {
        let i = f5.curve.sizes.iter().position(|&x| x == s).unwrap();
        f5.curve.total_share(i)
    };
    // §5.1: "From 4% in the Top 100, it reaches 13% in the Top 1k, and
    // then falls in the long-tail."
    assert!(at(100) < at(1_000), "head {} !< 1k {}", at(100), at(1_000));
    assert!(
        at(1_000) > at(50_000),
        "1k {} !> 50k {}",
        at(1_000),
        at(50_000)
    );
    // Quantcast dominates the head; OneTrust leads the 10k band.
    let idx_10k = f5.curve.sizes.iter().position(|&x| x == 10_000).unwrap();
    assert!(
        f5.curve.share_of(idx_10k, Cmp::OneTrust) > f5.curve.share_of(idx_10k, Cmp::Quantcast),
        "OneTrust should lead the Tranco 10k"
    );
}

#[test]
fn gvl_and_dialog_results_hold_at_midsize() {
    let study = midsize_study();
    let gvl = experiments::fig7_8::gvl_figures(&study);
    assert!(gvl.net_toward_consent() > 0);
    let final_vendors = gvl.fig7.last().unwrap().vendors;
    assert!(
        (400..=900).contains(&final_vendors),
        "vendors {final_vendors}"
    );

    let f10 = experiments::fig10::fig10(&study);
    let e = &f10.experiment;
    assert!(e.more_options.median_reject().unwrap() > 1.6 * e.direct.median_reject().unwrap());
    assert!(e.more_options.consent_rate() > e.direct.consent_rate());

    let f9 = experiments::fig9::fig9_with_hours(&study, 100);
    assert!(f9.min_clicks >= 7);
    assert!(f9.median_wait_s >= 30.0);
}
