//! Determinism guarantees: identical seeds must reproduce identical
//! results byte-for-byte across every experiment surface.

use consent_core::{experiments, Study, StudyConfig};

fn study() -> Study {
    Study::new(StudyConfig::quick())
}

#[test]
fn table1_renders_identically() {
    let a = experiments::table1::table1(&study()).render();
    let b = experiments::table1::table1(&study()).render();
    assert_eq!(a, b);
}

#[test]
fn fig10_identical_statistics() {
    let a = experiments::fig10::fig10(&study());
    let b = experiments::fig10::fig10(&study());
    assert_eq!(
        a.experiment.direct.accept_times,
        b.experiment.direct.accept_times
    );
    assert_eq!(a.render(), b.render());
}

#[test]
fn gvl_history_identical_json() {
    let a = experiments::fig7_8::gvl_figures(&study());
    let b = experiments::fig7_8::gvl_figures(&study());
    let ja = a.history.last().unwrap().to_json().to_compact();
    let jb = b.history.last().unwrap().to_json().to_compact();
    assert_eq!(ja, jb);
}

#[test]
fn different_seeds_differ() {
    let mut config = StudyConfig::quick();
    config.seed = 1;
    let a = experiments::fig9::fig9_with_hours(&Study::new(config.clone()), 48);
    config.seed = 2;
    let b = experiments::fig9::fig9_with_hours(&Study::new(config), 48);
    assert_ne!(a.median_wait_s, b.median_wait_s);
}

#[test]
fn fig9_stable_across_runs() {
    let a = experiments::fig9::fig9_with_hours(&study(), 48);
    let b = experiments::fig9::fig9_with_hours(&study(), 48);
    assert_eq!(a.median_wait_s, b.median_wait_s);
    assert_eq!(a.probes, b.probes);
}
