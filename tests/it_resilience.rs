//! Chaos determinism, checkpoint/resume, and failure-policy invariants.
//!
//! Telemetry stays disabled here (the global registry belongs to
//! `it_telemetry`); these tests pin down the *data* guarantees of the
//! robustness layer: seeded fault injection is reproducible, a none
//! profile is indistinguishable from the unwrapped engine, permanent
//! failures never retry, the breaker dead-letters escalating anti-bot
//! domains, and an interrupted campaign resumes to the exact same state
//! as an uninterrupted one.

use consent_crawler::{
    build_toplist, resume_campaign, run_campaign_with, BreakerConfig, CampaignConfig,
    CampaignState, Outcome, RetryPolicy,
};
use consent_faultsim::FaultProfile;
use consent_httpsim::{CaptureOptions, CaptureStatus, Engine, Location, Vantage};
use consent_util::{Day, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};

fn world() -> World {
    World::new(WorldConfig {
        n_sites: 5_000,
        seed: 42,
        adoption: AdoptionConfig::default(),
    })
}

fn config(profile: FaultProfile) -> CampaignConfig {
    CampaignConfig {
        fault_profile: profile,
        retry: RetryPolicy::paper(),
        breaker: BreakerConfig::default(),
    }
}

const DAY: fn() -> Day = || Day::from_ymd(2020, 5, 15);

#[test]
fn seeded_chaos_is_deterministic() {
    let w = world();
    let list = build_toplist(&w, 150, SeedTree::new(7));
    let vantages = [Vantage::eu_cloud(), Vantage::table1_columns()[3]];
    let run = |_: u32| {
        run_campaign_with(
            &w,
            &list,
            DAY(),
            &vantages,
            SeedTree::new(9),
            &config(FaultProfile::heavy()),
        )
    };
    let a = run(0);
    let b = run(1);
    assert!(a.complete && b.complete);
    // Same seed + same profile ⇒ identical capture db, dead letters, and
    // per-pair attempt histories, down to the serialized byte.
    assert_eq!(a.state.export(), b.state.export());
    assert!(
        !a.state.dead_letters.is_empty(),
        "heavy chaos produced no dead letters"
    );
    for ((va, ca), (vb, cb)) in a.result.columns.iter().zip(b.result.columns.iter()) {
        assert_eq!(va, vb);
        for (x, y) in ca.iter().zip(cb.iter()) {
            assert_eq!(x.capture, y.capture);
            assert_eq!(x.attempts, y.attempts);
            assert_eq!(x.outcome, y.outcome);
        }
    }
    // A different fault seed genuinely changes the injected faults.
    let c = run_campaign_with(
        &w,
        &list,
        DAY(),
        &vantages,
        SeedTree::new(10),
        &config(FaultProfile::heavy()),
    );
    assert_ne!(a.state.export(), c.state.export());
}

#[test]
fn none_profile_matches_the_unwrapped_engine() {
    let w = world();
    let list = build_toplist(&w, 120, SeedTree::new(7));
    let vantages = [Vantage::us_cloud(), Vantage::table1_columns()[3]];
    let seed = SeedTree::new(9);
    let run = run_campaign_with(
        &w,
        &list,
        DAY(),
        &vantages,
        seed,
        &config(FaultProfile::none()),
    );
    // Replay every recorded capture through a bare engine built from the
    // same seed node the campaign uses: the fault layer must have been a
    // pure passthrough.
    let bare = Engine::new(&w, seed.child("engine"));
    for (vantage, captures) in &run.result.columns {
        let collect_dom = vantage.location == Location::EuUniversity;
        for c in captures {
            let url = &run.result.seeds[c.rank - 1].url;
            let replay = bare.capture(url, c.capture.day, *vantage, CaptureOptions { collect_dom });
            assert_eq!(
                c.capture, replay,
                "{} diverged from the bare engine",
                c.domain
            );
        }
    }
    // No injected statuses can exist without a fault profile.
    for (_, captures) in &run.result.columns {
        for c in captures {
            assert!(!matches!(
                c.capture.status,
                CaptureStatus::ConnectionReset | CaptureStatus::Truncated | CaptureStatus::Timeout
            ));
        }
    }
}

#[test]
fn interrupted_campaign_resumes_to_the_uninterrupted_state() {
    let w = world();
    let list = build_toplist(&w, 90, SeedTree::new(7));
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let seed = SeedTree::new(9);
    let cfg = config(FaultProfile::mild());

    let full = run_campaign_with(&w, &list, DAY(), &vantages, seed, &cfg);
    assert!(full.complete);
    let total_pairs = (vantages.len() * list.len()) as u64;
    assert_eq!(full.state.pairs_done, total_pairs);

    // Kill the campaign halfway (mid-column), checkpoint through the
    // text format, and resume.
    let half = total_pairs / 2;
    let first = resume_campaign(
        &w,
        &list,
        DAY(),
        &vantages,
        seed,
        &cfg,
        CampaignState::new(),
        Some(half),
    );
    assert!(!first.complete);
    assert_eq!(first.state.pairs_done, half);
    assert_eq!(first.state.db.len(), half);

    let checkpoint = first.state.export();
    let restored = CampaignState::import(&checkpoint).expect("checkpoint parses");
    let second = resume_campaign(&w, &list, DAY(), &vantages, seed, &cfg, restored, None);
    assert!(second.complete);

    // The merged halves equal the uninterrupted run: same cumulative
    // state (db rows, dead letters, cursor) and same per-pair captures.
    assert_eq!(second.state.export(), full.state.export());
    let merged = first.result.merge(second.result);
    for (vantage, captures) in &full.result.columns {
        let m = merged.column(*vantage).unwrap();
        assert_eq!(m.len(), captures.len());
        for (x, y) in captures.iter().zip(m.iter()) {
            assert_eq!(x.rank, y.rank);
            assert_eq!(x.capture, y.capture);
            assert_eq!(x.attempts, y.attempts);
        }
    }
}

#[test]
fn breaker_dead_letters_escalating_antibot_domains() {
    let w = world();
    let list = build_toplist(&w, 300, SeedTree::new(7));
    // Even without injected faults, anti-bot CDN sites serve
    // interstitials to cloud vantages on every attempt: the breaker must
    // open at the threshold instead of burning the full schedule.
    let run = run_campaign_with(
        &w,
        &list,
        DAY(),
        &[Vantage::eu_cloud()],
        SeedTree::new(9),
        &config(FaultProfile::none()),
    );
    let opened: Vec<_> = run.state.dead_letters.breaker_opened().collect();
    assert!(!opened.is_empty(), "no breaker opens in 300 domains");
    for dl in &opened {
        assert_eq!(
            dl.attempts.len(),
            usize::from(BreakerConfig::default().antibot_threshold)
        );
        assert!(dl
            .attempts
            .iter()
            .all(|a| a.status == CaptureStatus::AntiBotInterstitial));
        assert_eq!(dl.outcome, Outcome::Transient);
    }
    // Breaker-opened pairs are in the dead-letter record *and* the db
    // (one row per pair, final status preserved for §3.5 accounting).
    assert_eq!(run.state.db.len(), list.len() as u64);
}

#[test]
fn degraded_captures_are_kept_not_retried() {
    let w = world();
    let list = build_toplist(&w, 100, SeedTree::new(7));
    // Truncate every capture: all outcomes become Degraded.
    let profile = FaultProfile {
        truncation: 1.0,
        ..FaultProfile::none()
    };
    let run = run_campaign_with(
        &w,
        &list,
        DAY(),
        &[Vantage::us_cloud()],
        SeedTree::new(9),
        &config(profile),
    );
    let captures = run.result.column(Vantage::us_cloud()).unwrap();
    let degraded: Vec<_> = captures
        .iter()
        .filter(|c| c.outcome == Outcome::Degraded)
        .collect();
    assert!(!degraded.is_empty());
    for c in &degraded {
        assert_eq!(c.attempts, 1, "degraded capture was retried");
        assert!(c.capture.usable() && c.capture.degraded());
        // Kept, not abandoned: degraded pairs are absent from the
        // dead-letter record.
        assert!(!run
            .state
            .dead_letters
            .records()
            .iter()
            .any(|dl| dl.rank == c.rank));
    }
    // Opting in to degraded retries spends more attempts.
    let eager = CampaignConfig {
        retry: RetryPolicy {
            retry_degraded: true,
            ..RetryPolicy::paper()
        },
        ..config(profile)
    };
    let eager_run = run_campaign_with(
        &w,
        &list,
        DAY(),
        &[Vantage::us_cloud()],
        SeedTree::new(9),
        &eager,
    );
    let eager_attempts: u64 = eager_run
        .result
        .column(Vantage::us_cloud())
        .unwrap()
        .iter()
        .map(|c| u64::from(c.attempts))
        .sum();
    let lazy_attempts: u64 = captures.iter().map(|c| u64::from(c.attempts)).sum();
    assert!(eager_attempts > lazy_attempts);
}

#[test]
fn schedule_is_explicit_and_stays_inside_the_week() {
    let day = DAY();
    let schedule = RetryPolicy::paper().schedule(day);
    assert_eq!(schedule, vec![day, day + 2, day + 4, day + 6]);
    assert!(schedule.iter().all(|&d| (d - day) <= 7));
    // Every attempt day recorded by a campaign comes from that schedule.
    let w = world();
    let list = build_toplist(&w, 80, SeedTree::new(7));
    let run = run_campaign_with(
        &w,
        &list,
        day,
        &[Vantage::eu_cloud()],
        SeedTree::new(9),
        &config(FaultProfile::heavy()),
    );
    for dl in run.state.dead_letters.records() {
        for a in &dl.attempts {
            assert!(
                schedule.contains(&a.day),
                "off-schedule attempt on {}",
                a.day
            );
        }
    }
    for c in run.result.column(Vantage::eu_cloud()).unwrap() {
        assert!(schedule.contains(&c.capture.day));
    }
}
