//! Causal-trace and provenance guarantees, end to end.
//!
//! This binary owns the process-global `consent_trace` log (nothing
//! else in the workspace enables it), the same way `it_telemetry` owns
//! the telemetry registry. Tests serialize on a lock because cargo runs
//! test fns of one binary concurrently and the log is global; each test
//! leaves the log cleared and disabled.
//!
//! Pinned guarantees: a traced chaos campaign replays to byte-identical
//! JSONL; an interrupted + resumed campaign produces the *same bytes*
//! as the uninterrupted one; `FaultProfile::none` emits zero fault
//! events; every recorded trace is a well-formed causal tree whose
//! distilled [`Provenance`] equals the record the campaign persisted;
//! and the Chrome export is valid trace-event JSON with one thread
//! track per vantage.

use consent_crawler::{
    build_toplist, resume_campaign, run_campaign_with, vantage_code, BreakerConfig, CampaignConfig,
    CampaignRun, CampaignState, RetryPolicy,
};
use consent_faultsim::FaultProfile;
use consent_httpsim::Vantage;
use consent_trace::{Phase, Provenance, TraceEvent, TraceTree};
use consent_util::{Day, Json, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, OnceLock};

static LOCK: Mutex<()> = Mutex::new(());

/// Hold the global trace log for one test (or one property case).
fn lock() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    consent_trace::clear();
    consent_trace::enable();
    guard
}

fn unlock(guard: MutexGuard<'static, ()>) {
    consent_trace::disable();
    consent_trace::clear();
    drop(guard);
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::new(WorldConfig {
            n_sites: 5_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    })
}

fn toplist() -> &'static [String] {
    static LIST: OnceLock<Vec<String>> = OnceLock::new();
    LIST.get_or_init(|| build_toplist(world(), 120, SeedTree::new(7)))
}

fn config(profile: FaultProfile) -> CampaignConfig {
    CampaignConfig {
        fault_profile: profile,
        retry: RetryPolicy::paper(),
        breaker: BreakerConfig::default(),
    }
}

const DAY: fn() -> Day = || Day::from_ymd(2020, 5, 15);

fn campaign(
    domains: &[String],
    vantages: &[Vantage],
    seed: u64,
    profile: FaultProfile,
) -> CampaignRun {
    run_campaign_with(
        world(),
        domains,
        DAY(),
        vantages,
        SeedTree::new(seed),
        &config(profile),
    )
}

/// Structural well-formedness of one trace's event stream, beyond what
/// `TraceTree::build` checks: dense sequence numbers, known parents,
/// exactly one root pair span.
fn assert_well_formed(events: &[TraceEvent]) {
    assert!(!events.is_empty());
    let mut seen_spans = BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "seq numbers must be dense from 0");
        assert_eq!(e.trace_id, events[0].trace_id);
        match e.phase {
            Phase::Begin => {
                if e.parent == 0 {
                    assert_eq!(e.span_id, 1, "only the root has no parent");
                } else {
                    assert!(seen_spans.contains(&e.parent), "parent must exist");
                }
                assert!(seen_spans.insert(e.span_id), "span ids are unique");
            }
            Phase::Instant => {
                assert!(seen_spans.contains(&e.parent), "parent must exist");
                assert!(seen_spans.insert(e.span_id), "span ids are unique");
            }
            Phase::End => assert!(seen_spans.contains(&e.span_id)),
        }
    }
    let tree = TraceTree::build(events).expect("trace builds into a tree");
    assert_eq!(tree.root.name(), "pair");
    // The pretty-printer covers every event name.
    let rendered = tree.render();
    for e in events {
        assert!(rendered.contains(e.name), "render misses {}", e.name);
    }
}

#[test]
fn chaos_replay_and_resume_are_byte_identical() {
    let guard = lock();
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let list = &toplist()[..60];

    let full = campaign(list, &vantages, 9, FaultProfile::heavy());
    assert!(full.complete);
    let jsonl = consent_trace::global().export_jsonl();
    assert!(!jsonl.is_empty());
    assert_eq!(
        jsonl.lines().count() as u64,
        consent_trace::global().len() as u64
    );

    // Same seed, same profile: the whole trace log replays to the byte.
    consent_trace::clear();
    let replay = campaign(list, &vantages, 9, FaultProfile::heavy());
    assert_eq!(consent_trace::global().export_jsonl(), jsonl);
    assert_eq!(replay.state.export(), full.state.export());

    // A different seed diverges (ids are stable but attempt events are
    // seeded): the export is not trivially constant.
    consent_trace::clear();
    campaign(list, &vantages, 10, FaultProfile::heavy());
    assert_ne!(consent_trace::global().export_jsonl(), jsonl);

    // Kill the campaign halfway, checkpoint through the text format,
    // resume — the accumulated trace log is byte-identical to the
    // uninterrupted run's, because ids and seqs are per-pair.
    consent_trace::clear();
    let half = (vantages.len() * list.len()) as u64 / 2;
    let first = resume_campaign(
        world(),
        list,
        DAY(),
        &vantages,
        SeedTree::new(9),
        &config(FaultProfile::heavy()),
        CampaignState::new(),
        Some(half),
    );
    assert!(!first.complete);
    let restored = CampaignState::import(&first.state.export()).expect("checkpoint parses");
    assert_eq!(restored.provenance.len() as u64, half);
    let second = resume_campaign(
        world(),
        list,
        DAY(),
        &vantages,
        SeedTree::new(9),
        &config(FaultProfile::heavy()),
        restored,
        None,
    );
    assert!(second.complete);
    assert_eq!(consent_trace::global().export_jsonl(), jsonl);
    assert_eq!(second.state.export(), full.state.export());

    unlock(guard);
}

#[test]
fn traces_reconcile_with_provenance_and_faults() {
    let guard = lock();
    let vantages = [Vantage::eu_cloud()];
    let list = &toplist()[..50];

    // Under a none profile: zero fault events, zero provenance faults.
    let clean = campaign(list, &vantages, 9, FaultProfile::none());
    let snapshot = consent_trace::global().snapshot();
    assert!(
        !snapshot.iter().any(|e| e.name == "fault.injected"),
        "none profile must inject nothing"
    );
    for p in clean.state.provenance.records() {
        assert_eq!(p.injected_faults().count(), 0);
    }

    // Under chaos: every trace is well-formed, its distilled provenance
    // equals the persisted record, and fault events reconcile 1:1 with
    // the provenance fault entries.
    consent_trace::clear();
    let run = campaign(list, &vantages, 9, FaultProfile::heavy());
    let log = consent_trace::global();
    let ids = log.trace_ids();
    assert_eq!(ids.len(), list.len());
    let mut fault_events = 0usize;
    for id in &ids {
        let events = log.trace(*id);
        assert_well_formed(&events);
        let tree = TraceTree::build(&events).unwrap();
        fault_events += tree.find_all("fault.injected").len();
        let distilled = Provenance::from_tree(&tree).expect("pair trace distills");
        let stored = run
            .state
            .provenance
            .by_trace(*id)
            .expect("every trace has a stored record");
        assert_eq!(&distilled, stored);
        // Dead-lettered pairs end their trace with the dead_letter
        // event; kept pairs never carry one.
        assert_eq!(
            tree.find_all("dead_letter").len(),
            usize::from(stored.dead_lettered)
        );
        // Each attempt span contains exactly one page_load span or is a
        // connection-level fault preemption (still one attempt.outcome).
        let attempts = tree.find_all("attempt");
        assert_eq!(attempts.len(), stored.attempts.len());
        for a in &attempts {
            assert_eq!(
                a.children
                    .iter()
                    .filter(|c| c.name() == "attempt.outcome")
                    .count(),
                1
            );
        }
    }
    assert!(fault_events > 0, "heavy chaos injected nothing");
    let provenance_faults: usize = run
        .state
        .provenance
        .records()
        .iter()
        .map(|p| p.injected_faults().count())
        .sum();
    assert_eq!(fault_events, provenance_faults);

    unlock(guard);
}

#[test]
fn chrome_export_is_valid_with_one_track_per_vantage() {
    let guard = lock();
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let list = &toplist()[..12];
    campaign(list, &vantages, 9, FaultProfile::mild());

    let events = consent_trace::global().snapshot();
    let text = consent_trace::export_chrome_string(&events);
    let doc = Json::parse(&text).expect("chrome export is valid JSON");
    let list_json = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!list_json.is_empty());

    let mut tracks = Vec::new();
    let mut tids = BTreeSet::new();
    for e in list_json {
        for key in ["ph", "ts", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing {key}");
        }
        assert_eq!(e.get("pid").and_then(Json::as_f64), Some(1.0));
        let ph = e.get("ph").and_then(Json::as_str).unwrap();
        assert!(["B", "E", "i", "M"].contains(&ph), "unknown phase {ph}");
        if ph == "M" {
            tracks.push(
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string(),
            );
        } else {
            tids.insert(e.get("tid").and_then(Json::as_f64).unwrap() as u64);
        }
    }
    // One thread track per vantage, named after its code, and every
    // non-metadata event rides on one of them.
    let expected: Vec<String> = {
        let mut codes: Vec<String> = vantages
            .iter()
            .map(|&v| format!("vantage {}", vantage_code(v)))
            .collect();
        codes.sort();
        codes
    };
    assert_eq!(tracks, expected);
    assert_eq!(tids.len(), vantages.len());

    unlock(guard);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any small campaign slice, any seed, any chaos tier: every trace
    /// is a well-formed causal tree and distills to the stored
    /// provenance, and the JSONL export replays byte-identically.
    #[test]
    fn any_campaign_produces_well_formed_replayable_traces(
        seed in 11u64..1_000,
        start in 0usize..100,
        n in 2usize..8,
        chaos in 0u8..3,
    ) {
        let guard = lock();
        let profile = match chaos {
            0 => FaultProfile::none(),
            1 => FaultProfile::mild(),
            _ => FaultProfile::heavy(),
        };
        let list = &toplist()[start..start + n];
        let vantages = [Vantage::eu_cloud()];
        let run = campaign(list, &vantages, seed, profile);
        let log = consent_trace::global();
        let ids = log.trace_ids();
        prop_assert_eq!(ids.len(), n);
        for id in &ids {
            let events = log.trace(*id);
            assert_well_formed(&events);
            let tree = TraceTree::build(&events).unwrap();
            let distilled = Provenance::from_tree(&tree).expect("pair trace distills");
            let stored = run.state.provenance.by_trace(*id).expect("stored record");
            prop_assert_eq!(&distilled, stored);
        }
        let jsonl = log.export_jsonl();
        consent_trace::clear();
        campaign(list, &vantages, seed, profile);
        prop_assert_eq!(log.export_jsonl(), jsonl);
        unlock(guard);
    }
}
