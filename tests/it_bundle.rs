//! Content-addressed campaign bundles, end to end (see
//! `docs/BUNDLES.md`):
//!
//! * the durable driver's post-completion pack produces byte-identical
//!   manifests at 1/2/4 threads — archival is inside the determinism
//!   boundary;
//! * flipping one byte in a blob of *every* blob class is detected by
//!   `bundle verify` and localized to the exact blob and its owning
//!   section/label, and repairing the byte restores a clean fsck;
//! * replay is byte-identical — including from a bundle packed by a
//!   resumed incarnation after a kill halfway through the campaign.
//!
//! Like the durability binaries, the assertions degrade gracefully
//! under the CI `io-chaos` job (`CONSENT_IO_CHAOS=mild`): structural
//! expectations relax, byte-identity of whatever was packed never does.

use consent_analysis::standard_exports;
use consent_bundle::{verify, BlobStatus, BlobStore, Manifest};
use consent_crawler::{
    build_toplist, open_chaos_store, pack_campaign_bundle, replay_campaign_bundle,
    run_campaign_parallel, run_durable_campaign, ArchiveContext, BundleSpec, CampaignArtifacts,
    CampaignConfig, DurableOpts, ExportFn, ParallelOpts,
};
use consent_faultsim::{CrashPlan, FaultProfile, IoFaultPlan};
use consent_httpsim::Vantage;
use consent_util::{Day, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A world wide enough that the toplist includes unreachable,
/// 451-blocked, and anti-bot domains — the capture classes whose
/// artifact documents dedup across days and vantages.
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::new(WorldConfig {
            n_sites: 800,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    })
}

fn toplist() -> &'static [String] {
    static LIST: OnceLock<Vec<String>> = OnceLock::new();
    LIST.get_or_init(|| build_toplist(world(), 48, SeedTree::new(7)))
}

const VANTAGES: fn() -> [Vantage; 2] = || [Vantage::us_cloud(), Vantage::eu_cloud()];
const DAY: fn() -> Day = || Day::from_ymd(2020, 5, 15);

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "consent-it-bundle-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// True when `CONSENT_IO_CHAOS` schedules storage faults for this whole
/// process (the CI `io-chaos` job).
fn io_chaos() -> bool {
    !IoFaultPlan::from_env().is_none()
}

fn quiet() -> CampaignConfig {
    CampaignConfig {
        fault_profile: FaultProfile::none(),
        ..CampaignConfig::default()
    }
}

fn provider() -> Arc<ExportFn> {
    Arc::new(standard_exports)
}

/// One durable campaign over the shared toplist that packs a bundle
/// into `bundle_dir` on completion.
fn durable_with_bundle(
    store_dir: &Path,
    bundle_dir: &Path,
    threads: usize,
    crash: CrashPlan,
) -> consent_crawler::DurableRun {
    let store = open_chaos_store(store_dir).expect("store open");
    let opts = DurableOpts {
        threads,
        config: quiet(),
        checkpoint_every: 16,
        crash,
        bundle: Some(BundleSpec {
            dir: bundle_dir.to_path_buf(),
            provider: Some(provider()),
            gvl_json: Some("{\"vendors\":[]}".to_string()),
        }),
        ..DurableOpts::default()
    };
    run_durable_campaign(
        world(),
        toplist(),
        DAY(),
        &VANTAGES(),
        SeedTree::new(9),
        &store,
        &opts,
    )
    .expect("durable campaign io")
}

#[test]
fn durable_pack_is_byte_identical_across_thread_counts() {
    let mut baseline: Option<String> = None;
    for threads in [1usize, 2, 4] {
        let (store_dir, bundle_dir) = (tmp_dir(), tmp_dir());
        let run = durable_with_bundle(&store_dir, &bundle_dir, threads, CrashPlan::none());
        assert!(run.outcome.finished(), "{:?}", run.outcome);
        let Some(report) = &run.bundle else {
            // Only a storage collapse to memory-only skips the pack,
            // and only the chaos job may produce one.
            assert!(io_chaos(), "pack skipped without chaos: {:?}", run.outcome);
            std::fs::remove_dir_all(&store_dir).ok();
            std::fs::remove_dir_all(&bundle_dir).ok();
            continue;
        };
        // The manifest in the report and the manifest on disk agree.
        let store = BlobStore::open(&bundle_dir).unwrap();
        let on_disk = store.read_manifest().expect("bundle manifest readable");
        assert!(
            report.manifest.serialize() == on_disk,
            "reported and on-disk manifests disagree at {threads} threads"
        );
        match &baseline {
            None => baseline = Some(on_disk),
            Some(b) => assert!(
                *b == on_disk,
                "bundle manifest diverged at {threads} threads"
            ),
        }
        std::fs::remove_dir_all(&store_dir).unwrap();
        std::fs::remove_dir_all(&bundle_dir).unwrap();
    }
}

/// Pack a fully-populated bundle (every section present) directly from
/// a two-day campaign, returning the bundle directory.
fn packed_everything() -> PathBuf {
    let days = [DAY(), Day::from_ymd(2020, 5, 16)];
    let seed = SeedTree::new(9);
    let runs: Vec<_> = days
        .iter()
        .map(|&day| {
            run_campaign_parallel(
                world(),
                toplist(),
                day,
                &VANTAGES(),
                seed,
                &ParallelOpts {
                    threads: 1,
                    config: quiet(),
                    max_pairs: None,
                },
            )
        })
        .collect();
    let ctx = ArchiveContext::from_campaign(days[1], toplist(), &VANTAGES(), &seed);
    let artifacts = CampaignArtifacts {
        results: runs.iter().map(|r| &r.result).collect(),
        trace_jsonl: "{\"kind\":\"trace\"}\n".to_string(),
        obs_jsonl: Some("{\"kind\":\"obs\"}\n".to_string()),
        alerts_jsonl: Some("{\"kind\":\"alerts\"}\n".to_string()),
        gvl_json: Some("{\"vendors\":[]}".to_string()),
    };
    let p = provider();
    // Under the chaos job a pack can die on a hard injected fault
    // (e.g. a directory fsync) before the scrub loop can absorb it; a
    // fresh directory draws a fresh fault schedule, so retry a few
    // times like an operator would.
    let mut last_err = None;
    for _ in 0..5 {
        let dir = tmp_dir();
        match pack_campaign_bundle(&dir, &runs[1].state, &ctx, &artifacts, Some(&*p)) {
            Ok((report, fsck)) => {
                assert!(fsck.clean(), "{}", fsck.render());
                assert!(
                    report.dedup_ratio() > 1.0,
                    "two-day workload must dedup: {}",
                    report.summary()
                );
                return dir;
            }
            Err(e) => {
                assert!(io_chaos(), "pack failed without chaos: {e}");
                std::fs::remove_dir_all(&dir).ok();
                last_err = Some(e);
            }
        }
    }
    panic!("pack failed 5 times under chaos: {last_err:?}");
}

#[test]
fn corruption_in_every_blob_class_is_detected_and_localized() {
    let dir = packed_everything();
    let store = BlobStore::open(&dir).unwrap();
    let manifest = Manifest::parse(&store.read_manifest().unwrap()).unwrap();

    // One representative blob per class: a class is a section plus the
    // document-label prefix (`req`, `req-dyn`, `cookies`, …), so every
    // kind of archived document gets a flipped byte.
    let mut classes: Vec<(String, String)> = Vec::new();
    let mut targets = Vec::new();
    for section in &manifest.sections {
        for blob in &section.blobs {
            let prefix = blob.label.split('/').next().unwrap_or(&blob.label);
            let class = (section.name.clone(), prefix.to_string());
            if !classes.contains(&class) {
                classes.push(class);
                targets.push((section.name.clone(), blob.label.clone(), blob.addr));
            }
        }
    }
    let expected = [
        "config",
        "state",
        "trace",
        "observability",
        "gvl",
        "analysis",
        "artifacts",
    ];
    for want in expected {
        assert!(
            classes.iter().any(|(s, _)| s == want),
            "packed bundle is missing the {want} section"
        );
    }
    assert!(classes.len() >= 12, "classes covered: {classes:?}");

    for (section, label, addr) in targets {
        let path = store.blob_path(&addr);
        let pristine = std::fs::read(&path).expect("blob readable");
        let mut bytes = pristine.clone();
        match bytes.first().copied() {
            Some(b) => bytes[0] = b ^ 0x01,
            None => bytes.push(0x01),
        }
        std::fs::write(&path, &bytes).unwrap();

        let report = verify(&store).expect("verify runs");
        assert!(!report.clean(), "flipped byte in {section}/{label} missed");
        let corrupt = report.corrupt();
        assert!(
            corrupt.iter().all(|v| v.addr == addr),
            "corruption in {section}/{label} implicated other blobs: {:?}",
            corrupt.iter().map(|v| v.describe()).collect::<Vec<_>>()
        );
        assert!(
            corrupt
                .iter()
                .any(|v| v.section == section && v.label == label),
            "verdicts for {addr} did not name {section}/{label}"
        );
        assert!(
            corrupt
                .iter()
                .all(|v| matches!(v.status, BlobStatus::Corrupt(_))),
            "flipped bytes must verify as corrupt, not unreadable"
        );

        std::fs::write(&path, &pristine).unwrap();
        assert!(
            verify(&store).expect("verify runs").clean(),
            "restoring {section}/{label} did not restore a clean fsck"
        );
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn replay_is_byte_identical_including_after_a_kill_halfway() {
    // The uninterrupted reference run.
    let (store_a, bundle_a) = (tmp_dir(), tmp_dir());
    let full = durable_with_bundle(&store_a, &bundle_a, 1, CrashPlan::none());
    assert!(full.outcome.finished(), "{:?}", full.outcome);
    if full.bundle.is_some() {
        let replay = replay_campaign_bundle(&bundle_a, Some(&*provider())).expect("replay io");
        assert!(replay.ok(), "{}", replay.summary());
        assert_eq!(replay.pairs, full.state.pairs_done);
    } else {
        assert!(io_chaos(), "pack skipped without chaos");
    }

    // Kill halfway; the crashed incarnation packs nothing.
    let (store_b, bundle_b) = (tmp_dir(), tmp_dir());
    let crashed = durable_with_bundle(&store_b, &bundle_b, 1, CrashPlan::after_apply(40));
    assert!(!crashed.outcome.finished(), "{:?}", crashed.outcome);
    assert!(crashed.bundle.is_none(), "a crashed run must not pack");

    // The resumed incarnation completes, reconverges on the same state
    // bytes, and packs a bundle whose replay is byte-identical.
    let resumed = durable_with_bundle(&store_b, &bundle_b, 2, CrashPlan::none());
    assert!(resumed.outcome.finished(), "{:?}", resumed.outcome);
    assert!(
        resumed.state.export() == full.state.export(),
        "resume did not reconverge on the reference state"
    );
    let Some(_) = &resumed.bundle else {
        assert!(io_chaos(), "pack skipped without chaos");
        return;
    };
    let replay = replay_campaign_bundle(&bundle_b, Some(&*provider())).expect("replay io");
    assert!(replay.ok(), "{}", replay.summary());
    assert_eq!(replay.pairs, resumed.state.pairs_done);

    // The state and analysis sections are content-addressed, so the
    // reconverged campaign maps to the exact same blobs as the
    // uninterrupted one — only per-incarnation sections (trace,
    // artifacts) may differ.
    if full.bundle.is_some() {
        let addrs = |dir: &Path, name: &str| {
            let store = BlobStore::open(dir).unwrap();
            let m = Manifest::parse(&store.read_manifest().unwrap()).unwrap();
            m.section(name)
                .map(|s| {
                    s.blobs
                        .iter()
                        .map(|b| (b.label.clone(), b.addr))
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default()
        };
        for section in ["config", "state", "analysis", "gvl"] {
            assert_eq!(
                addrs(&bundle_a, section),
                addrs(&bundle_b, section),
                "{section} section diverged between uninterrupted and resumed bundles"
            );
        }
    }
    for d in [&store_a, &bundle_a, &store_b, &bundle_b] {
        std::fs::remove_dir_all(d).unwrap();
    }
}
