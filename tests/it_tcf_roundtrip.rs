//! Cross-crate TCF properties: consent strings built against generated
//! GVL versions, exchanged through the __cmp API model.

use consent_tcf::{
    generate_history, purposes::all_purpose_ids, CmpApi, ConsentString, HistoryConfig, PurposeId,
    VendorEncoding, VendorList,
};
use consent_util::{SeedTree, SimInstant};
use proptest::prelude::*;

fn history() -> Vec<VendorList> {
    generate_history(&HistoryConfig::default(), SeedTree::new(42))
}

#[test]
fn consent_string_tracks_gvl_versions() {
    let history = history();
    for v in history.iter().step_by(40) {
        let consent = ConsentString::new(10, v.vendor_list_version, v.max_vendor_id())
            .accept_all(all_purpose_ids());
        let s = consent.encode(VendorEncoding::Auto);
        let decoded = ConsentString::decode(&s).unwrap();
        assert_eq!(decoded.vendor_list_version, v.vendor_list_version);
        assert_eq!(decoded.consent_count(), usize::from(v.max_vendor_id()));
        // Every vendor on the list is covered.
        for vendor in v.vendors.iter().step_by(25) {
            assert!(decoded.vendor_allowed(vendor.id.0));
        }
    }
}

#[test]
fn cmp_api_round_trips_decisions() {
    let history = history();
    let last = history.last().unwrap();
    let mut cmp = CmpApi::new(true);
    cmp.script_loaded(SimInstant::from_millis(500));
    assert!(cmp.show_dialog(SimInstant::from_millis(900)));
    let mut consent = ConsentString::new(10, last.vendor_list_version, last.max_vendor_id());
    // Consent only to vendors that do NOT claim legitimate interest for
    // purpose 1 (a plausible selective decision).
    consent.purposes_allowed = [1u8, 5].into();
    consent.vendor_consents = last
        .vendors
        .iter()
        .filter(|v| !v.leg_int_purpose_ids.contains(&PurposeId(1)))
        .map(|v| v.id.0)
        .collect();
    let expected = consent.vendor_consents.len();
    cmp.store_decision(consent, SimInstant::from_secs(5));
    let s = cmp.get_consent_data().consent_data.unwrap();
    let decoded = ConsentString::decode(&s).unwrap();
    assert_eq!(decoded.consent_count(), expected);
    assert!(decoded.purpose_allowed(PurposeId(5)));
    assert!(!decoded.purpose_allowed(PurposeId(2)));
}

#[test]
fn gvl_json_roundtrip_across_full_history() {
    let history = history();
    for v in history.iter().step_by(30) {
        let text = v.to_json().to_pretty();
        let parsed = VendorList::from_json_text(&text).unwrap();
        assert_eq!(&parsed, v);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_selective_consent_roundtrips(
        vendor_bits in proptest::collection::vec(any::<bool>(), 1..500),
        purposes in proptest::collection::btree_set(1u8..=24, 0..8),
    ) {
        let max = vendor_bits.len() as u16;
        let mut c = ConsentString::new(21, 180, max);
        c.purposes_allowed = purposes;
        c.vendor_consents = vendor_bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i as u16 + 1)
            .collect();
        for enc in [VendorEncoding::BitField, VendorEncoding::Range, VendorEncoding::Auto] {
            let s = c.encode(enc);
            prop_assert_eq!(ConsentString::decode(&s).unwrap(), c.clone());
        }
    }
}
