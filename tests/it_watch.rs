//! Watchdog alerting, end to end.
//!
//! The deterministic claim under test: a durable campaign run with a
//! [`Watch`] wired into the checkpoint driver produces an `ALERTS`
//! JSONL export that is **byte-identical across thread counts and
//! kill-halfway resumes** — the same contract `tests/it_obs.rs` pins
//! for the `OBS` export. The engine only evaluates detector windows at
//! checkpoint cuts, detector state rides inside every checkpoint
//! (section `watch-state`), and a window's alert events are committed
//! only after its checkpoint is durable, so the alert log is a pure
//! function of the workload.
//!
//! On top of the byte contract, a seeded-chaos campaign must actually
//! *fire* — at least one burn-rate SLO alert and one drift alert — and
//! everything the watchdog reports must reconcile: the event log, the
//! `watch.alert` telemetry counters, the firing gauges, and the
//! supervisor health report annotation all describe the same alerts.
//!
//! Tests serialize on a lock because the trace log and telemetry
//! registry are process-global; each test leaves both cleared and
//! disabled, mirroring `it_obs`.

use consent_checkpoint::CheckpointStore;
use consent_crawler::{
    build_toplist, run_durable_campaign, CampaignConfig, DurableOpts, DurableOutcome, DurableRun,
};
use consent_faultsim::{CrashPlan, FaultProfile};
use consent_httpsim::Vantage;
use consent_util::{Day, Json, SeedTree};
use consent_watch::rules::WatchConfig;
use consent_watch::Watch;
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

static LOCK: Mutex<()> = Mutex::new(());

/// Hold the global trace log + telemetry registry for one test.
fn lock() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    consent_trace::clear();
    consent_trace::enable();
    guard
}

fn unlock(guard: MutexGuard<'static, ()>) {
    consent_telemetry::disable();
    consent_telemetry::reset();
    consent_trace::disable();
    consent_trace::clear();
    drop(guard);
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::new(WorldConfig {
            n_sites: 2_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    })
}

fn toplist() -> &'static [String] {
    static LIST: OnceLock<Vec<String>> = OnceLock::new();
    LIST.get_or_init(|| build_toplist(world(), 12, SeedTree::new(7)))
}

const DAY: fn() -> Day = || Day::from_ymd(2020, 5, 15);

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "consent-it-watch-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn config(profile: FaultProfile) -> CampaignConfig {
    CampaignConfig {
        fault_profile: profile,
        ..CampaignConfig::default()
    }
}

/// Thresholds tight enough that a mild-chaos 16-pair campaign walks
/// alerts through their whole lifecycle within four windows.
fn tight_rules() -> WatchConfig {
    WatchConfig::parse("slo:usable:995:2;slo:deadletter:5:2;drift:throughput:50:1;gap:3")
        .expect("tight rule spec parses")
}

/// One durable-campaign incarnation with a fresh watch: trace and
/// telemetry are wiped first (a new process starts empty), and the
/// watch's `ALERTS` export is returned alongside the run. The driver
/// re-imports detector state from the checkpoint's `watch-state`
/// section, exactly like a restarted process would.
fn watch_incarnation(
    store: &CheckpointStore,
    threads: usize,
    crash: CrashPlan,
) -> (DurableRun, String) {
    consent_trace::clear();
    consent_telemetry::reset();
    consent_telemetry::enable();
    let watch = Watch::attach(consent_telemetry::global(), tight_rules());
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let run = run_durable_campaign(
        world(),
        &toplist()[..8],
        DAY(),
        &vantages,
        SeedTree::new(9),
        store,
        &DurableOpts {
            threads,
            config: config(FaultProfile::mild()),
            checkpoint_every: 5,
            crash,
            watch: Some(watch.clone()),
            ..DurableOpts::default()
        },
    )
    .expect("durable campaign io");
    (run, watch.export_jsonl())
}

fn ticks_of(jsonl: &str) -> Vec<u64> {
    jsonl
        .lines()
        .map(|l| {
            Json::parse(l)
                .expect("ALERTS line parses")
                .get("tick")
                .and_then(Json::as_f64)
                .expect("ALERTS line has a tick") as u64
        })
        .collect()
}

#[test]
fn alerts_export_is_byte_identical_across_threads_and_kill_halfway_resume() {
    let guard = lock();

    // The uninterrupted single-thread export: the bytes every other
    // incarnation pattern must reproduce.
    let dir = tmp_dir();
    let store = CheckpointStore::open(&dir).unwrap();
    let (run, baseline) = watch_incarnation(&store, 1, CrashPlan::none());
    assert_eq!(run.outcome, DurableOutcome::Complete);
    std::fs::remove_dir_all(&dir).unwrap();

    // The tight rules must actually exercise the lifecycle — an empty
    // log would make byte-identity trivially (and meaninglessly) true.
    assert!(!baseline.is_empty(), "tight rules produced no alerts");
    let states: Vec<String> = baseline
        .lines()
        .map(|l| {
            let j = Json::parse(l).expect("ALERTS line parses");
            assert_eq!(j.get("kind").and_then(Json::as_str), Some("alert"));
            assert_eq!(j.get("schema").and_then(Json::as_f64), Some(1.0));
            assert!(j.get("id").and_then(Json::as_str).is_some());
            assert!(j.get("rule").and_then(Json::as_str).is_some());
            j.get("state").and_then(Json::as_str).unwrap().to_string()
        })
        .collect();
    assert!(states.iter().any(|s| s == "firing"), "{states:?}");
    // Alert events only exist at durable window boundaries: 8 domains
    // × 2 vantages in chunks of 5 cuts checkpoints at 5, 10, 15, 16.
    for t in ticks_of(&baseline) {
        assert!([5, 10, 15, 16].contains(&t), "event at non-window tick {t}");
    }

    // Same bytes at every thread count.
    for threads in [2usize, 4] {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let (run, jsonl) = watch_incarnation(&store, threads, CrashPlan::none());
        assert_eq!(run.outcome, DurableOutcome::Complete);
        assert!(
            jsonl == baseline,
            "ALERTS export diverged at {threads} threads"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Kill halfway (after applied pair 11, mid third chunk): the dead
    // process logged alerts for windows 5 and 10; the resumed process —
    // fresh registry, fresh watch, detector state re-imported from the
    // checkpoint — logs windows 15 and 16. Concatenated, the two
    // incarnations equal the uninterrupted run byte for byte: no alert
    // is lost, re-emitted, or doubled, and multi-window detector memory
    // (burn-rate rings, EWMA, gap anchors) survives the crash.
    for threads in [1usize, 2, 4] {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let (crashed, first) = watch_incarnation(&store, threads, CrashPlan::after_apply(11));
        match crashed.outcome {
            DurableOutcome::Crashed { durable_pairs, .. } => assert_eq!(durable_pairs, 10),
            other => panic!("crashpoint apply:11 never fired: {other:?}"),
        }
        assert!(
            ticks_of(&first).iter().all(|t| [5, 10].contains(t)),
            "undurable window alerted"
        );
        let (resumed, second) = watch_incarnation(&store, threads, CrashPlan::none());
        assert_eq!(resumed.outcome, DurableOutcome::Complete);
        assert!(
            format!("{first}{second}") == baseline,
            "concatenated ALERTS export diverged after kill at {threads} threads"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    unlock(guard);
}

#[test]
fn seeded_chaos_fires_and_reconciles_with_telemetry_and_health() {
    let guard = lock();
    consent_telemetry::reset();
    consent_telemetry::enable();
    let base = consent_telemetry::global().snapshot();
    // Burn-rate thresholds a hot chaos profile is certain to breach,
    // plus a drift rule armed after two windows.
    let rules =
        WatchConfig::parse("slo:usable:950:2;slo:deadletter:10:2;drift:throughput:50:2;gap:2")
            .unwrap();
    let watch = Watch::attach(consent_telemetry::global(), rules);
    // Heavy chaos: near-certain anti-bot escalation dead-letters pairs
    // through the breaker, and failed attempts leave unusable statuses.
    let profile = FaultProfile::heavy();
    let dir = tmp_dir();
    let store = CheckpointStore::open(&dir).unwrap();
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let run = run_durable_campaign(
        world(),
        toplist(),
        DAY(),
        &vantages,
        SeedTree::new(9),
        &store,
        &DurableOpts {
            threads: 2,
            config: config(profile),
            checkpoint_every: 5,
            crash: CrashPlan::none(),
            watch: Some(Arc::clone(&watch)),
            ..DurableOpts::default()
        },
    )
    .unwrap();
    assert_eq!(run.outcome, DurableOutcome::Complete);
    std::fs::remove_dir_all(&dir).unwrap();

    let events = watch.events();
    assert!(
        events.iter().any(|e| e.state == "resolved"),
        "no alert resolved — lifecycle not fully exercised"
    );
    assert!(
        events
            .iter()
            .any(|e| e.rule.starts_with("slo:") && e.state == "firing"),
        "no burn-rate alert fired under hot chaos"
    );
    assert!(
        events
            .iter()
            .any(|e| e.rule.starts_with("drift:") && e.state == "firing"),
        "no drift alert fired under hot chaos"
    );

    // The `watch.alert` counters are written exactly once per recorded
    // event, labeled by rule and state: the cumulative delta must
    // reconcile with the event log event-for-event.
    let total = consent_telemetry::global().delta(&base);
    let counted: u64 = total
        .counters_with_prefix("watch.alert{")
        .map(|(_, n)| n)
        .sum();
    assert_eq!(counted, events.len() as u64, "counter/event-log mismatch");
    for state in ["pending", "firing", "resolved"] {
        let by_state: u64 = total
            .counters_with_prefix("watch.alert{")
            .filter(|(k, _)| k.contains(&format!("state={state}")))
            .map(|(_, n)| n)
            .sum();
        assert_eq!(
            by_state,
            events.iter().filter(|e| e.state == state).count() as u64,
            "state {state} out of reconciliation"
        );
    }

    // The health report's alert annotation is the watch's firing
    // summary: one line per firing transition, verbatim.
    assert_eq!(run.health.alerts, watch.fired_summaries());
    assert_eq!(
        run.health.alerts.len(),
        events.iter().filter(|e| e.state == "firing").count()
    );
    assert!(run.health.summary().contains("alerts_fired="));

    // Still-open alerts show as gauges — what a scrape would see.
    let open = events.iter().filter(|e| e.state == "firing").count()
        - events.iter().filter(|e| e.state == "resolved").count();
    assert_eq!(watch.firing(), open);
    unlock(guard);
}

#[test]
fn consent_watch_env_wiring_rejects_garbage_and_counts_it() {
    let guard = lock();
    consent_telemetry::reset();
    consent_telemetry::enable();
    let prev = std::env::var("CONSENT_WATCH").ok();

    std::env::set_var("CONSENT_WATCH", "slo:usable:700:3;gap:9");
    let parsed = WatchConfig::from_env();
    assert_eq!(parsed.to_string(), "slo:usable:700:3;gap:9");

    std::env::set_var("CONSENT_WATCH", "totally/bogus");
    let before = consent_telemetry::global()
        .counter("watch.rules.unrecognized")
        .get();
    assert!(WatchConfig::from_env().is_none(), "garbage must disarm");
    assert_eq!(
        consent_telemetry::global()
            .counter("watch.rules.unrecognized")
            .get(),
        before + 1,
        "garbage spec must be counted"
    );

    std::env::remove_var("CONSENT_WATCH");
    assert!(WatchConfig::from_env().is_none());

    match prev {
        Some(v) => std::env::set_var("CONSENT_WATCH", v),
        None => std::env::remove_var("CONSENT_WATCH"),
    }
    unlock(guard);
}

mod watch_grammar_properties {
    use super::*;
    use consent_watch::rules::{DriftMetric, DriftRule, GapRule, SloMetric, SloRule};
    use proptest::prelude::*;

    /// Structured configs drawn from the full rule grammar: up to four
    /// SLO rules, up to three drift rules, an optional gap rule.
    fn config_strategy() -> impl Strategy<Value = WatchConfig> {
        let slo = (0u8..4, 1u64..=1000, 1u64..9).prop_map(|(m, pm, w)| SloRule {
            metric: [
                SloMetric::Usable,
                SloMetric::DeadLetter,
                SloMetric::IoFault,
                SloMetric::Retry,
            ][m as usize],
            threshold_pm: pm,
            long_windows: w,
        });
        let drift = (0u8..2, 1u64..2000, 1u64..16).prop_map(|(m, z, w)| DriftRule {
            metric: [DriftMetric::Cmp, DriftMetric::Throughput][m as usize],
            z_centi: z,
            warmup: w,
        });
        (
            proptest::collection::vec(slo, 0..4),
            proptest::collection::vec(drift, 0..3),
            proptest::option::of(1u64..100),
        )
            .prop_map(|(slo, drift, gap)| WatchConfig {
                slo,
                drift,
                gap: gap.map(|ticks| GapRule { ticks }),
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Every config the grammar can express survives an env-spec
        /// round-trip: `parse(display(config)) == config` — the same
        /// property the `CONSENT_IO_CHAOS` grammar pins.
        #[test]
        fn watch_config_env_spec_round_trips(config in config_strategy()) {
            let spec = config.to_string();
            let reparsed = WatchConfig::parse(&spec);
            prop_assert_eq!(reparsed.as_ref(), Some(&config), "spec {}", spec);
            // Display is a fixpoint: re-displaying the reparse is stable.
            prop_assert_eq!(reparsed.unwrap().to_string(), spec);
        }
    }
}
