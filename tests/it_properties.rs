//! Cross-crate property tests on the reconstruction invariants.

use consent_analysis::{Timeline, FADE_OUT_DAYS};
use consent_crawler::{Admission, CaptureSummary, CmpSet, DedupQueue};
use consent_httpsim::{CaptureStatus, Location};
use consent_util::Day;
use consent_webgraph::{Cmp, ALL_CMPS};
use proptest::prelude::*;

fn capture_strategy() -> impl Strategy<Value = CaptureSummary> {
    (
        0i32..400,
        proptest::option::of(0usize..6),
        any::<bool>(),
        0u8..10,
    )
        .prop_map(
            |(day_off, cmp_idx, redirected, status_sel)| CaptureSummary {
                domain: "site.example".into(),
                day: Day::from_ymd(2019, 1, 1) + day_off,
                location: Location::EuCloud,
                status: if status_sel == 0 {
                    CaptureStatus::AntiBotInterstitial
                } else {
                    CaptureStatus::Ok
                },
                cmps: cmp_idx.map_or(CmpSet::empty(), |i| CmpSet::from_iter([ALL_CMPS[i]])),
                redirected,
                dialog_visible: false,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The reconstructed timeline never invents a CMP that was not
    /// observed, and never reports presence more than FADE_OUT_DAYS past
    /// the last observation.
    #[test]
    fn timeline_never_invents_cmps(history in proptest::collection::vec(capture_strategy(), 0..60)) {
        let timeline = Timeline::from_history(&history);
        let observed: Vec<Cmp> = history
            .iter()
            .filter(|c| matches!(c.status, CaptureStatus::Ok))
            .flat_map(|c| c.cmps.iter().collect::<Vec<_>>())
            .collect();
        let last_day = timeline.observations.last().map(|o| o.day);
        for off in -5i32..420 {
            let day = Day::from_ymd(2019, 1, 1) + off;
            if let Some(cmp) = timeline.cmp_on(day) {
                prop_assert!(observed.contains(&cmp), "invented {cmp}");
                let last = last_day.expect("presence implies an observation");
                if day > last {
                    prop_assert!(day - last <= FADE_OUT_DAYS, "presence beyond fade-out");
                }
            }
        }
        // Observation days are strictly ascending.
        for w in timeline.observations.windows(2) {
            prop_assert!(w[0].day < w[1].day);
        }
    }

    /// Dedup queue invariants: monotone counts, at most one acceptance
    /// per URL per 48h window, and acceptance is deterministic in the
    /// offer sequence.
    #[test]
    fn dedup_queue_invariants(
        offers in proptest::collection::vec((0u8..12, 0i64..200_000), 1..150)
    ) {
        let mut q1 = DedupQueue::new();
        let mut q2 = DedupQueue::new();
        let mut sorted = offers.clone();
        sorted.sort_by_key(|&(_, t)| t);
        let mut results = Vec::new();
        for &(url_id, ts) in &sorted {
            let url = format!("https://d{}.example/page{}", url_id % 4, url_id);
            let a = q1.offer(&url, ts);
            let b = q2.offer(&url, ts);
            prop_assert_eq!(a, b, "same sequence must decide identically");
            results.push((url, ts, a));
        }
        prop_assert_eq!(q1.accepted() + q1.skipped(), sorted.len() as u64);
        prop_assert!(q1.skip_rate() >= 0.0 && q1.skip_rate() <= 1.0);
        // No URL accepted twice within 48 hours.
        for (i, (url, ts, adm)) in results.iter().enumerate() {
            if *adm != Admission::Accepted {
                continue;
            }
            for (url2, ts2, adm2) in results.iter().skip(i + 1) {
                if url2 == url && ts2 - ts < 48 * 3_600 {
                    prop_assert_ne!(*adm2, Admission::Accepted,
                        "duplicate acceptance of {} at {} and {}", url, ts, ts2);
                }
            }
        }
    }

    /// eTLD+1 extraction is idempotent: normalizing a registrable domain
    /// yields itself.
    #[test]
    fn psl_idempotent(label in "[a-z]{1,8}", sub in "[a-z]{1,6}") {
        let psl = consent_psl::PublicSuffixList::embedded();
        for tld in ["com", "co.uk", "github.io", "de"] {
            let host = format!("{sub}.{label}.{tld}");
            if let Some(reg) = psl.registrable_domain(&host) {
                let again = psl.registrable_domain(&reg);
                prop_assert_eq!(again.as_deref(), Some(reg.as_str()));
                prop_assert!(host.ends_with(&reg));
            }
        }
    }
}
