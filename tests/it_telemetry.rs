//! End-to-end telemetry reconciliation.
//!
//! The reconciliation test uses the process-global telemetry registry,
//! so it lives in its own integration-test binary and must stay the
//! only test fn that touches the global: nothing else may enable
//! recording or the deltas would mix. The sampler-race test below is
//! safe to share the binary because it runs against its own leaked
//! local registry.

use consent_core::{experiments, Study};
use consent_crawler::{FeedConfig, Platform};
use consent_telemetry::{global, Registry, RunReport};
use consent_util::Day;

#[test]
fn run_reports_reconcile_with_capture_db() {
    consent_telemetry::enable();
    let study = Study::quick();

    // Social-feed pipeline: every insert into the CaptureDb increments
    // the capture_db.insert{location,status} family, so the report's
    // totals must equal the database row count exactly.
    let platform = Platform::new(
        study.world(),
        FeedConfig {
            urls_per_day: 150,
            ..FeedConfig::default()
        },
        study.seed().child("it-telemetry"),
    );
    let ((db, stats), report) = RunReport::collect(global(), "platform", || {
        platform.run(Day::from_ymd(2020, 5, 1), Day::from_ymd(2020, 5, 3))
    });
    assert!(!db.is_empty(), "pipeline produced no captures");
    assert_eq!(report.captures_total(), db.len());
    assert_eq!(report.captures_total(), stats.captured);

    let by_location = report.captures_by_location();
    assert_eq!(by_location.values().sum::<u64>(), db.len());
    // The social feed assigns US and EU cloud vantages only.
    assert_eq!(by_location.len(), 2);
    assert!(by_location.contains_key("US cloud"));
    assert!(by_location.contains_key("EU cloud"));
    let by_status = report.captures_by_status();
    assert_eq!(by_status.values().sum::<u64>(), db.len());

    // Every platform capture either ran through the engine or was
    // preempted by a connection-level injected fault (brownout, reset,
    // anti-bot escalation never reach the origin; injected timeouts and
    // truncations degrade a real engine capture). With chaos off (no
    // CONSENT_CHAOS) the fault terms are zero and this reduces to
    // engine outcomes == captures.
    let outcomes: u64 = report
        .delta
        .counters_with_prefix("engine.capture.outcome")
        .map(|(_, n)| n)
        .sum();
    let preempting: u64 = ["brownout", "reset", "antibot_escalation"]
        .iter()
        .map(|f| {
            report
                .delta
                .counter(&format!("faultsim.injected{{fault={f}}}"))
        })
        .sum();
    assert_eq!(outcomes + preempting, stats.captured);
    let skips = report.delta.counter("queue.offer{decision=SkippedUrl}")
        + report.delta.counter("queue.offer{decision=SkippedDomain}");
    assert_eq!(skips, stats.skipped);
    assert_eq!(
        report.delta.counter("queue.offer{decision=Accepted}"),
        stats.captured
    );

    // Campaign retry accounting: retries are attempts minus one, summed
    // over pairs, and permanent failures short-circuit after their first
    // attempt — a geo-blocked 451 must never burn retry budget, so the
    // retries counter reconciles exactly with the per-capture attempt
    // numbers.
    let toplist = consent_crawler::build_toplist(study.world(), 120, study.seed().child("it-top"));
    let (run, campaign_report) = RunReport::collect(global(), "campaign", || {
        consent_crawler::run_campaign_with(
            study.world(),
            &toplist,
            Day::from_ymd(2020, 5, 15),
            &[consent_httpsim::Vantage::eu_cloud()],
            study.seed().child("it-campaign"),
            &consent_crawler::CampaignConfig {
                fault_profile: consent_faultsim::FaultProfile::none(),
                ..consent_crawler::CampaignConfig::default()
            },
        )
    });
    let captures = run
        .result
        .column(consent_httpsim::Vantage::eu_cloud())
        .unwrap();
    let expected_retries: u64 = captures.iter().map(|c| u64::from(c.attempts) - 1).sum();
    assert_eq!(
        campaign_report.delta.counter("campaign.retries"),
        expected_retries
    );
    let permanents = captures
        .iter()
        .filter(|c| c.outcome == consent_crawler::Outcome::Permanent)
        .count() as u64;
    assert!(permanents > 0, "no permanent failures in 120 EU domains");
    for c in captures {
        if c.outcome == consent_crawler::Outcome::Permanent {
            assert_eq!(c.attempts, 1, "{} retried a permanent failure", c.domain);
        }
    }
    assert_eq!(
        campaign_report
            .delta
            .counter("campaign.outcome{outcome=permanent}"),
        permanents
    );
    // One db row per (domain, vantage) pair, reconciled via the insert
    // family like the platform above.
    assert_eq!(campaign_report.captures_total(), run.state.db.len());
    assert_eq!(run.state.db.len(), toplist.len() as u64);
    // Dead letters cover exactly the pairs without a usable capture.
    assert_eq!(
        run.state.dead_letters.len() as u64,
        captures.iter().filter(|c| !c.capture.usable()).count() as u64
    );
    assert_eq!(
        campaign_report
            .delta
            .counters_with_prefix("campaign.dead_letter{")
            .map(|(_, n)| n)
            .sum::<u64>(),
        run.state.dead_letters.len() as u64
    );

    // Provenance: one record per pair, counted into the
    // campaign.provenance{outcome=…} family, and the dead-letter queue
    // is exactly the dead_lettered subset of the provenance log — three
    // views of the same campaign that must agree record for record.
    let provenance = &run.state.provenance;
    assert_eq!(provenance.len() as u64, run.state.pairs_done);
    assert_eq!(
        campaign_report
            .delta
            .counters_with_prefix("campaign.provenance{")
            .map(|(_, n)| n)
            .sum::<u64>(),
        provenance.len() as u64
    );
    let dead: Vec<&consent_trace::Provenance> = provenance
        .records()
        .iter()
        .filter(|p| p.dead_lettered)
        .collect();
    assert_eq!(dead.len(), run.state.dead_letters.len());
    for dl in run.state.dead_letters.records() {
        let p = provenance
            .find(&dl.domain, &consent_crawler::vantage_code(dl.vantage))
            .expect("dead letter without a provenance record");
        assert!(p.dead_lettered);
        assert_eq!(p.rank as usize, dl.rank);
        assert_eq!(p.attempts.len(), dl.attempts.len());
        assert_eq!(p.outcome, dl.outcome.name());
        assert_eq!(p.breaker_opened, dl.breaker_opened);
    }
    // No chaos profile ⇒ no recorded faults, and per-pair attempt counts
    // reconcile with the capture column.
    for (p, c) in provenance.records().iter().zip(captures.iter()) {
        assert_eq!(p.injected_faults().count(), 0);
        assert_eq!(p.attempts.len(), usize::from(c.attempts));
        assert_eq!(p.domain, c.domain);
    }

    // A reported experiment records onto the study, and a second report
    // only contains its own delta (snapshots isolate runs).
    let before_reports = study.reports().len();
    let _f9 = experiments::fig9::fig9_reported(&study);
    let reports = study.reports();
    assert_eq!(reports.len(), before_reports + 1);
    let f9_report = reports.last().unwrap();
    assert_eq!(f9_report.name, "fig9");
    // fig9 is a dialog-interaction experiment: no captures are stored.
    assert_eq!(f9_report.captures_total(), 0);

    // Instrumentation is observational only: a re-run of the same
    // pipeline yields byte-identical capture sets.
    let platform2 = Platform::new(
        study.world(),
        FeedConfig {
            urls_per_day: 150,
            ..FeedConfig::default()
        },
        study.seed().child("it-telemetry"),
    );
    consent_telemetry::disable();
    let (db2, stats2) = platform2.run(Day::from_ymd(2020, 5, 1), Day::from_ymd(2020, 5, 3));
    assert_eq!(stats2, stats);
    assert_eq!(db2.len(), db.len());
    let d1: Vec<&str> = db.iter().map(|(d, _)| d).collect();
    let d2: Vec<&str> = db2.iter().map(|(d, _)| d).collect();
    assert_eq!(d1, d2);
}

/// `Registry::reset` racing a live flight-recorder sampler: writers,
/// a resetter, and the sampler's background thread all hit the same
/// registry concurrently. Resets may drop in-window traffic (they wipe
/// it by design) but must never corrupt a sample — deltas saturate
/// instead of wrapping, exports stay parseable, and nothing panics.
///
/// Runs against a leaked *local* registry, not the process-global one,
/// so it can share this binary with the reconciliation test above.
#[test]
fn reset_racing_a_live_sampler_is_lossy_never_corrupt() {
    use consent_obs::{ObsConfig, Sampler};
    use consent_util::Json;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let registry: &'static Registry = Box::leak(Box::new(Registry::new()));
    let sampler = Sampler::attach(registry, ObsConfig::wall(Duration::from_micros(200)));
    let handle = sampler.start();

    let stop = Arc::new(AtomicBool::new(false));
    let written = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..2)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let written = Arc::clone(&written);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    registry.counter("race.counter").inc();
                    written.fetch_add(1, Ordering::Relaxed);
                    registry.histogram("race.lat").record(i % 89 + w);
                    registry.gauge("race.gauge").set(i as i64);
                    i += 1;
                }
            })
        })
        .collect();
    let resetter = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                registry.reset();
                std::thread::sleep(Duration::from_micros(500));
            }
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    resetter.join().unwrap();
    handle.stop();

    assert!(!sampler.is_empty(), "sampler recorded nothing");
    let total_written = written.load(Ordering::Relaxed);
    let mut seen = 0u64;
    for line in sampler.export_jsonl().lines() {
        let j = Json::parse(line).expect("raced OBS line must stay parseable");
        let n = j
            .get("counters")
            .and_then(|c| c.get("race.counter"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64;
        assert!(n <= total_written, "window delta wrapped: {n}");
        seen += n;
    }
    // Resets lose traffic; they never invent it.
    assert!(seen <= total_written, "{seen} > {total_written}");
    // The scrape endpoint stays serviceable mid-race (empty is fine if
    // the last reset won the race; malformed or panicking is not).
    let prom = sampler.prometheus();
    assert!(prom.is_empty() || prom.ends_with('\n'));
}
