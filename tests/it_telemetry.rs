//! End-to-end telemetry reconciliation.
//!
//! This test uses the process-global telemetry registry, so it lives in
//! its own integration-test binary (one process, one test fn): nothing
//! else may enable recording or the deltas would mix.

use consent_core::{experiments, Study};
use consent_crawler::{FeedConfig, Platform};
use consent_telemetry::{global, RunReport};
use consent_util::Day;

#[test]
fn run_reports_reconcile_with_capture_db() {
    consent_telemetry::enable();
    let study = Study::quick();

    // Social-feed pipeline: every insert into the CaptureDb increments
    // the capture_db.insert{location,status} family, so the report's
    // totals must equal the database row count exactly.
    let platform = Platform::new(
        study.world(),
        FeedConfig {
            urls_per_day: 150,
            ..FeedConfig::default()
        },
        study.seed().child("it-telemetry"),
    );
    let ((db, stats), report) = RunReport::collect(global(), "platform", || {
        platform.run(Day::from_ymd(2020, 5, 1), Day::from_ymd(2020, 5, 3))
    });
    assert!(db.len() > 0, "pipeline produced no captures");
    assert_eq!(report.captures_total(), db.len());
    assert_eq!(report.captures_total(), stats.captured);

    let by_location = report.captures_by_location();
    assert_eq!(by_location.values().sum::<u64>(), db.len());
    // The social feed assigns US and EU cloud vantages only.
    assert_eq!(by_location.len(), 2);
    assert!(by_location.contains_key("US cloud"));
    assert!(by_location.contains_key("EU cloud"));
    let by_status = report.captures_by_status();
    assert_eq!(by_status.values().sum::<u64>(), db.len());

    // The engine saw at least as many captures as the db recorded
    // (identical here, since the platform ingests every capture), and
    // the dedup queue skipped what the stats say it skipped.
    let outcomes: u64 = report
        .delta
        .counters_with_prefix("engine.capture.outcome")
        .map(|(_, n)| n)
        .sum();
    assert_eq!(outcomes, stats.captured);
    let skips = report.delta.counter("queue.offer{decision=SkippedUrl}")
        + report.delta.counter("queue.offer{decision=SkippedDomain}");
    assert_eq!(skips, stats.skipped);
    assert_eq!(
        report.delta.counter("queue.offer{decision=Accepted}"),
        stats.captured
    );

    // A reported experiment records onto the study, and a second report
    // only contains its own delta (snapshots isolate runs).
    let before_reports = study.reports().len();
    let _f9 = experiments::fig9::fig9_reported(&study);
    let reports = study.reports();
    assert_eq!(reports.len(), before_reports + 1);
    let f9_report = reports.last().unwrap();
    assert_eq!(f9_report.name, "fig9");
    // fig9 is a dialog-interaction experiment: no captures are stored.
    assert_eq!(f9_report.captures_total(), 0);

    // Instrumentation is observational only: a re-run of the same
    // pipeline yields byte-identical capture sets.
    let platform2 = Platform::new(
        study.world(),
        FeedConfig {
            urls_per_day: 150,
            ..FeedConfig::default()
        },
        study.seed().child("it-telemetry"),
    );
    consent_telemetry::disable();
    let (db2, stats2) = platform2.run(Day::from_ymd(2020, 5, 1), Day::from_ymd(2020, 5, 3));
    assert_eq!(stats2, stats);
    assert_eq!(db2.len(), db.len());
    let d1: Vec<&str> = db.iter().map(|(d, _)| d).collect();
    let d2: Vec<&str> = db2.iter().map(|(d, _)| d).collect();
    assert_eq!(d1, d2);
}
