//! Shared helpers for the integration tests.

use consent_core::{Study, StudyConfig};

/// A mid-sized study: larger than `Study::quick()` for statistical
/// stability, still fast enough for CI.
pub fn midsize_study() -> Study {
    Study::new(StudyConfig {
        seed: 7_777,
        n_sites: 80_000,
        toplist_size: 3_000,
        feed_urls_per_day: 600,
        window_start: consent_util::Day::from_ymd(2018, 3, 1),
        window_end: consent_util::Day::from_ymd(2020, 9, 30),
        fig5_stratum_sample: 600,
    })
}
