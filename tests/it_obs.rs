//! Flight-recorder observability, end to end.
//!
//! The deterministic claim under test: a durable campaign run with a
//! logical-tick [`Sampler`] produces an `OBS` JSONL export that is
//! **byte-identical across thread counts and kill-halfway resumes**.
//! Samples are emitted only when a covering checkpoint is durable, the
//! sampler is rebased over recovery's re-import traffic, and the
//! thread-count-dependent metric families are deny-listed — so the
//! export is a pure function of the workload, like the state and trace
//! exports the durability suite pins.
//!
//! The wall-clock mode is the opposite trade: a background thread, real
//! gauges and latency quantiles, no byte guarantees — here we only
//! assert liveness and well-formedness (every line parses, the
//! Prometheus exposition follows the text format line grammar), plus
//! that a `Registry::reset` racing the live sampler is lossy but never
//! corrupting.
//!
//! Tests serialize on a lock because the trace log and telemetry
//! registry are process-global; each test leaves both cleared and
//! disabled, mirroring `it_durability`.

use consent_checkpoint::CheckpointStore;
use consent_crawler::{
    build_toplist, run_campaign_parallel, run_durable_campaign, CampaignConfig, DurableOpts,
    DurableOutcome, DurableRun, ParallelOpts,
};
use consent_faultsim::{CrashPlan, FaultProfile};
use consent_httpsim::Vantage;
use consent_obs::{FlightReport, ObsConfig, Sampler};
use consent_util::{Day, Json, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

/// Hold the global trace log + telemetry registry for one test.
fn lock() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    consent_trace::clear();
    consent_trace::enable();
    guard
}

fn unlock(guard: MutexGuard<'static, ()>) {
    consent_telemetry::disable();
    consent_telemetry::reset();
    consent_trace::disable();
    consent_trace::clear();
    drop(guard);
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::new(WorldConfig {
            n_sites: 2_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    })
}

fn toplist() -> &'static [String] {
    static LIST: OnceLock<Vec<String>> = OnceLock::new();
    LIST.get_or_init(|| build_toplist(world(), 12, SeedTree::new(7)))
}

const DAY: fn() -> Day = || Day::from_ymd(2020, 5, 15);

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "consent-it-obs-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn config(profile: FaultProfile) -> CampaignConfig {
    CampaignConfig {
        fault_profile: profile,
        ..CampaignConfig::default()
    }
}

/// One durable-campaign incarnation with a fresh deterministic sampler:
/// trace and telemetry are wiped first (a new process starts empty),
/// and the sampler's `OBS` export is returned alongside the run.
fn obs_incarnation(
    store: &CheckpointStore,
    threads: usize,
    crash: CrashPlan,
) -> (DurableRun, String) {
    consent_trace::clear();
    consent_telemetry::reset();
    consent_telemetry::enable();
    let sampler = Sampler::attach(consent_telemetry::global(), ObsConfig::deterministic());
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let run = run_durable_campaign(
        world(),
        &toplist()[..8],
        DAY(),
        &vantages,
        SeedTree::new(9),
        store,
        &DurableOpts {
            threads,
            config: config(FaultProfile::mild()),
            checkpoint_every: 5,
            crash,
            sampler: Some(sampler.clone()),
            ..DurableOpts::default()
        },
    )
    .expect("durable campaign io");
    (run, sampler.export_jsonl())
}

fn ticks_of(jsonl: &str) -> Vec<u64> {
    jsonl
        .lines()
        .map(|l| {
            Json::parse(l)
                .expect("OBS line parses")
                .get("tick")
                .and_then(Json::as_f64)
                .expect("OBS line has a tick") as u64
        })
        .collect()
}

#[test]
fn obs_export_is_byte_identical_across_threads_and_kill_halfway_resume() {
    let guard = lock();

    // The uninterrupted single-thread export: the bytes every other
    // incarnation pattern must reproduce.
    let dir = tmp_dir();
    let store = CheckpointStore::open(&dir).unwrap();
    let (run, baseline) = obs_incarnation(&store, 1, CrashPlan::none());
    assert_eq!(run.outcome, DurableOutcome::Complete);
    std::fs::remove_dir_all(&dir).unwrap();

    // 8 domains × 2 vantages in chunks of 5: a sample per durable
    // checkpoint, nothing else.
    assert_eq!(ticks_of(&baseline), vec![5, 10, 15, 16]);
    for line in baseline.lines() {
        let j = Json::parse(line).unwrap();
        assert_eq!(j.get("kind").and_then(Json::as_str), Some("obs"));
        assert_eq!(
            j.get("seq").and_then(Json::as_f64),
            j.get("tick").and_then(Json::as_f64)
        );
        // Logical samples stay inside the determinism boundary: no wall
        // clock, no thread-count-dependent families.
        assert!(j.get("elapsed_us").is_none(), "wall clock leaked: {line}");
        assert!(j.get("gauges").is_none(), "gauges leaked: {line}");
        assert!(
            !line.contains("campaign.parallel."),
            "denied family leaked: {line}"
        );
        // Windows carry real traffic.
        assert!(j.get("counters").is_some(), "empty sample: {line}");
    }

    // Same bytes at every thread count.
    for threads in [2usize, 4] {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let (run, jsonl) = obs_incarnation(&store, threads, CrashPlan::none());
        assert_eq!(run.outcome, DurableOutcome::Complete);
        assert!(
            jsonl == baseline,
            "OBS export diverged at {threads} threads"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Kill halfway (after applied pair 11, mid third chunk): the dead
    // process exported windows 5 and 10; the resumed process — fresh
    // registry, fresh sampler, rebased over recovery — exports 15 and
    // 16. Concatenated, the two incarnations equal the uninterrupted
    // run byte for byte: no window is lost, re-emitted, or doubled.
    for threads in [1usize, 2, 4] {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let (crashed, first) = obs_incarnation(&store, threads, CrashPlan::after_apply(11));
        match crashed.outcome {
            DurableOutcome::Crashed { durable_pairs, .. } => assert_eq!(durable_pairs, 10),
            other => panic!("crashpoint apply:11 never fired: {other:?}"),
        }
        assert_eq!(ticks_of(&first), vec![5, 10], "undurable window sampled");
        let (resumed, second) = obs_incarnation(&store, threads, CrashPlan::none());
        assert_eq!(resumed.outcome, DurableOutcome::Complete);
        assert_eq!(ticks_of(&second), vec![15, 16]);
        assert!(
            format!("{first}{second}") == baseline,
            "concatenated OBS export diverged after kill at {threads} threads"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    unlock(guard);
}

/// Structural check against the Prometheus text format 0.0.4 line
/// grammar: every line is a `# HELP`/`# TYPE` comment or
/// `name[{labels}] value` with a sane metric name and a parseable
/// value, and every TYPE is directly preceded by its family's HELP.
fn assert_prometheus_well_formed(text: &str) {
    assert!(!text.is_empty());
    assert!(text.ends_with('\n'), "exposition must end with a newline");
    let name_ok = |name: &str| {
        !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP has name + text");
            assert!(name_ok(name), "bad HELP name: {line}");
            assert!(!help.is_empty(), "empty HELP text: {line}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            assert!(name_ok(name), "bad TYPE name: {line}");
            assert!(
                ["counter", "gauge", "summary"].contains(&kind),
                "bad TYPE kind: {line}"
            );
            let help_line = format!("# HELP {name} ");
            assert!(
                i > 0 && lines[i - 1].starts_with(&help_line),
                "TYPE without its family's HELP directly above: {line}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (series, value) = line.rsplit_once(' ').expect("metric line has a value");
        let name = series.split('{').next().unwrap();
        assert!(name_ok(name), "bad metric name: {line}");
        if let Some(labels) = series.strip_prefix(name) {
            assert!(
                labels.is_empty() || (labels.starts_with('{') && labels.ends_with('}')),
                "bad label block: {line}"
            );
        }
        assert!(value.parse::<f64>().is_ok(), "bad value: {line}");
    }
}

#[test]
fn wall_sampler_records_live_state_and_serves_prometheus() {
    let guard = lock();
    consent_telemetry::reset();
    consent_telemetry::enable();
    let sampler = Sampler::attach(
        consent_telemetry::global(),
        ObsConfig::wall(Duration::from_millis(2)),
    );
    let handle = sampler.start();

    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let run = run_campaign_parallel(
        world(),
        toplist(),
        DAY(),
        &vantages,
        SeedTree::new(9),
        &ParallelOpts {
            threads: 4,
            config: config(FaultProfile::mild()),
            max_pairs: None,
        },
    );
    assert!(run.complete);
    // A marker gauge set before shutdown must appear in the final
    // sample the background thread takes on its way out.
    consent_telemetry::gauge_set("it.obs.marker", 7);
    handle.stop();

    assert!(!sampler.is_empty(), "wall sampler recorded nothing");
    let series = sampler.series();
    let last = series.latest().unwrap();
    assert!(last.elapsed_us.is_some(), "wall samples carry a clock");
    assert_eq!(last.gauges.get("it.obs.marker"), Some(&7));
    // The per-window pair latency summaries partition the campaign:
    // window counts sum to exactly one observation per pair.
    assert_eq!(
        series
            .samples()
            .flat_map(|s| s.histograms.get("campaign.pair"))
            .map(|h| h.count)
            .sum::<u64>(),
        24,
        "every pair sampled exactly once across wall windows"
    );
    for line in sampler.export_jsonl().lines() {
        Json::parse(line).expect("wall OBS line parses");
    }

    let prom = sampler.prometheus();
    assert_prometheus_well_formed(&prom);
    assert!(prom.contains("# TYPE campaign_pair summary"), "{prom}");
    assert!(prom.contains("campaign_pair{quantile=\"0.95\"}"), "{prom}");
    assert!(prom.contains("campaign_pair_count"), "{prom}");
    assert!(prom.contains("# TYPE it_obs_marker gauge"), "{prom}");
    unlock(guard);
}

/// Re-parse the exposition like a scraper would: HELP/TYPE metadata per
/// family, then label blocks unescaped back to their raw values. Hostile
/// label values (quotes, newlines, backslashes) must round-trip exactly,
/// and every family must carry usable HELP metadata.
#[test]
fn prometheus_exposition_reparses_with_escaped_labels_and_help() {
    let guard = lock();
    consent_telemetry::reset();
    consent_telemetry::enable();
    let hostile = "EU \"cloud\"\n\\x";
    consent_telemetry::count_labeled("esc.metric", &[("loc", hostile)], 3);
    consent_telemetry::count_labeled("watch.alert", &[("rule", "gap:3"), ("state", "firing")], 2);
    let prom = consent_obs::prometheus::exposition(&consent_telemetry::global().snapshot());
    assert_prometheus_well_formed(&prom);

    let unescape = |s: &str| {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => panic!("dangling escape in {s:?}"),
            }
        }
        out
    };

    let mut help: Vec<(String, String)> = Vec::new();
    let mut labels: Vec<(String, String, String)> = Vec::new();
    for line in prom.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, text) = rest.split_once(' ').unwrap();
            help.push((name.to_string(), unescape(text)));
        } else if line.starts_with('#') {
            continue;
        } else if let Some((series, _)) = line.rsplit_once(' ') {
            if let Some((name, block)) = series.split_once('{') {
                let block = block.strip_suffix('}').expect("label block closes");
                // One label pair per k="v" segment; escaped quotes never
                // terminate a value, so split on `",` boundaries.
                for pair in block.split("\",") {
                    let pair = pair.strip_suffix('"').unwrap_or(pair);
                    let (k, v) = pair.split_once("=\"").expect("label pair");
                    labels.push((name.to_string(), k.to_string(), unescape(v)));
                }
            }
        }
    }
    assert!(
        labels
            .iter()
            .any(|(n, k, v)| n == "esc_metric_total" && k == "loc" && v == hostile),
        "hostile label value did not round-trip: {labels:?}"
    );
    assert!(
        labels
            .iter()
            .any(|(n, k, v)| n == "watch_alert_total" && k == "state" && v == "firing"),
        "watch alert series missing"
    );
    // Curated HELP for the watch family; fallback HELP for the unknown
    // one — and each family documented exactly once.
    let help_of = |name: &str| {
        let texts: Vec<&String> = help
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(
            texts.len(),
            1,
            "family {name} documented {} times",
            texts.len()
        );
        texts[0].clone()
    };
    assert!(help_of("watch_alert_total").starts_with("Campaign watchdog:"));
    assert_eq!(help_of("esc_metric_total"), "Metric esc_metric.");
    unlock(guard);
}

#[test]
fn registry_reset_racing_a_live_sampler_is_lossy_never_corrupt() {
    let guard = lock();
    consent_telemetry::reset();
    consent_telemetry::enable();
    let sampler = Sampler::attach(
        consent_telemetry::global(),
        ObsConfig::wall(Duration::from_micros(200)),
    );
    let handle = sampler.start();

    // Hammer the registry while the sampler is live: writes interleave
    // with resets at arbitrary points inside sample windows.
    const WRITES: u64 = 5_000;
    for i in 0..WRITES {
        consent_telemetry::count("race.counter", 1);
        consent_telemetry::observe("race.lat", i % 97);
        if i % 250 == 0 {
            consent_telemetry::reset();
        }
        if i % 50 == 0 {
            std::thread::yield_now();
        }
    }
    handle.stop();

    assert!(!sampler.is_empty());
    let mut seen = 0u64;
    for line in sampler.export_jsonl().lines() {
        let j = Json::parse(line).expect("raced OBS line parses");
        // Deltas saturate at reset boundaries: a window straddling a
        // reset under-counts, it never wraps around to 2^64-ish.
        let n = j
            .get("counters")
            .and_then(|c| c.get("race.counter"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64;
        assert!(n <= WRITES, "counter delta wrapped: {n}");
        seen += n;
    }
    assert!(seen <= WRITES, "windows double-counted: {seen} > {WRITES}");
    assert_prometheus_well_formed(&sampler.prometheus());
    unlock(guard);
}

#[test]
fn ring_buffer_evicts_oldest_samples_and_reports_drops() {
    let guard = lock();
    consent_telemetry::reset();
    consent_telemetry::enable();
    let sampler = Sampler::attach(
        consent_telemetry::global(),
        ObsConfig {
            capacity: 4,
            ..ObsConfig::deterministic()
        },
    );
    for tick in 1..=10u64 {
        consent_telemetry::count("ring.pairs", 1);
        sampler.tick_at(tick);
    }
    assert_eq!(sampler.len(), 4);
    assert_eq!(sampler.dropped(), 6);
    assert_eq!(ticks_of(&sampler.export_jsonl()), vec![7, 8, 9, 10]);
    unlock(guard);
}

#[test]
fn flight_report_covers_a_chaotic_durable_campaign() {
    let guard = lock();
    consent_telemetry::reset();
    consent_telemetry::enable();
    let base = consent_telemetry::global().snapshot();
    let sampler = Sampler::attach(consent_telemetry::global(), ObsConfig::deterministic());
    // Chaos hot enough that fault injection is certain over 24 pairs.
    let profile = FaultProfile {
        timeout: 0.35,
        reset: 0.2,
        ..FaultProfile::none()
    };
    let dir = tmp_dir();
    let store = CheckpointStore::open(&dir).unwrap();
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let run = run_durable_campaign(
        world(),
        toplist(),
        DAY(),
        &vantages,
        SeedTree::new(9),
        &store,
        &DurableOpts {
            threads: 2,
            config: config(profile),
            checkpoint_every: 5,
            crash: CrashPlan::none(),
            sampler: Some(Arc::clone(&sampler)),
            ..DurableOpts::default()
        },
    )
    .unwrap();
    assert_eq!(run.outcome, DurableOutcome::Complete);
    std::fs::remove_dir_all(&dir).unwrap();

    let total = consent_telemetry::global().delta(&base);
    let report = FlightReport::build(&sampler.series(), &total);

    assert_eq!(report.pairs_total, 24, "12 domains × 2 vantages");
    assert_eq!(report.samples_dropped, 0);
    assert!(
        report.phases.iter().any(|p| p.key == "campaign.pair"),
        "pair processing missing from the phase breakdown"
    );
    assert_eq!(report.throughput.len(), 5, "24 pairs in chunks of 5");
    assert!(
        report.throughput.iter().all(|p| p.pairs_per_sec.is_none()),
        "logical windows must not claim wall rates"
    );
    // The heatmap reconciles with the registry: per-window injection
    // counts sum to the cumulative faultsim.injected totals.
    let injected: u64 = total
        .counters_with_prefix("faultsim.injected{")
        .map(|(_, n)| n)
        .sum();
    assert!(injected > 0, "hot chaos profile injected nothing");
    assert_eq!(report.faults.iter().map(|r| r.total).sum::<u64>(), injected);
    // Logical mode: no per-window latency, cumulative fallback instead.
    assert!(report.slowest.is_empty());
    assert_eq!(report.pair_total.unwrap().count, 24);

    let text = report.render();
    for section in [
        "flight report",
        "Phase breakdown",
        "Throughput curve",
        "Fault heatmap",
        "cumulative",
    ] {
        assert!(text.contains(section), "missing {section:?}:\n{text}");
    }
    let json = report.to_json();
    assert_eq!(
        json.get("kind").and_then(Json::as_str),
        Some("flight_report")
    );
    assert_eq!(json.get("schema").and_then(Json::as_f64), Some(1.0));
    unlock(guard);
}
