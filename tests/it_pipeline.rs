//! End-to-end pipeline integration: synthetic web → crawler → detection
//! → analysis, crossing every crate boundary in one flow.

use consent_analysis::{build_timelines, Timeline};
use consent_crawler::{CaptureDb, CmpSet, FeedConfig, Platform};
use consent_fingerprint::Detector;
use consent_httpsim::{CaptureOptions, Engine, Vantage};
use consent_psl::PublicSuffixList;
use consent_util::{Day, SeedTree};
use consent_webgraph::{AdoptionConfig, Reachability, World, WorldConfig};

fn world() -> World {
    World::new(WorldConfig {
        n_sites: 30_000,
        seed: 99,
        adoption: AdoptionConfig::default(),
    })
}

#[test]
fn ground_truth_recovered_through_full_pipeline() {
    // For clean sites (no geo gating, no anti-bot, not slow), what the
    // pipeline measures at the EU-university vantage must equal ground
    // truth exactly.
    let w = world();
    let day = Day::from_ymd(2020, 5, 15);
    let engine = Engine::new(&w, SeedTree::new(1));
    let det = Detector::hostname_only();
    let psl = PublicSuffixList::embedded();
    let mut db = CaptureDb::new();
    let vantage = Vantage::table1_columns()[3];

    let mut truth = 0usize;
    for rank in 1..=2_000u32 {
        let p = w.profile(rank);
        if p.reachability != Reachability::Ok {
            continue;
        }
        let clean = p.behavior.as_ref().is_none_or(|b| {
            b.geo == consent_webgraph::GeoBehavior::EmbedAlways && !b.anti_bot_cdn && !b.slow_load
        });
        if !clean {
            continue;
        }
        if p.cmp_on(day).is_some() {
            truth += 1;
        }
        let c = engine.capture(
            &format!("https://{}/", p.domain),
            day,
            vantage,
            CaptureOptions::default(),
        );
        let cmps = CmpSet::from_iter(det.detect(&c));
        db.ingest(&c, cmps, &psl);
    }
    let timelines = build_timelines(&db, None);
    let measured = timelines
        .values()
        .filter(|t: &&Timeline| t.cmp_on(day).is_some())
        .count();
    assert_eq!(measured, truth, "clean-site measurement must be exact");
    assert!(
        truth > 50,
        "need a meaningful number of adopters, got {truth}"
    );
}

#[test]
fn social_pipeline_measures_within_tolerance_of_truth() {
    // Over the full pipeline with all distortions, the measured count
    // should be below but near ground truth.
    let w = world();
    let platform = Platform::new(
        &w,
        FeedConfig {
            urls_per_day: 2_500,
            ..FeedConfig::default()
        },
        SeedTree::new(5),
    );
    let day = Day::from_ymd(2020, 5, 10);
    let (db, stats) = platform.run(day - 20, day + 1);
    assert!(stats.captured > 10_000);

    let timelines = build_timelines(&db, None);
    let measured = timelines
        .values()
        .filter(|t| t.cmp_on(day).is_some())
        .count();
    // Ground truth over the same domain set.
    let truth = timelines
        .keys()
        .filter_map(|d| w.site_by_host(d))
        .filter(|p| p.cmp_on(day).is_some())
        .count();
    assert!(truth > 100, "truth {truth}");
    let ratio = measured as f64 / truth as f64;
    // Cloud vantages, geo gating and timeouts lose some CMPs; random
    // vantage mixing recovers most.
    assert!(
        (0.55..=1.02).contains(&ratio),
        "measured {measured} / truth {truth} = {ratio}"
    );
}

#[test]
fn etld1_normalization_spans_crates() {
    // A site hosted on a private suffix must be counted by its platform
    // subdomain, not the platform apex.
    let w = world();
    let platform_site = (1..=30_000u32)
        .map(|r| w.profile(r))
        .find(|p| p.domain.ends_with(".github.io") && p.reachability == Reachability::Ok)
        .expect("platform-hosted site exists");
    let engine = Engine::new(&w, SeedTree::new(2));
    let psl = PublicSuffixList::embedded();
    let c = engine.capture(
        &format!("https://{}/", platform_site.domain),
        Day::from_ymd(2020, 5, 15),
        Vantage::eu_cloud(),
        CaptureOptions::default(),
    );
    let mut db = CaptureDb::new();
    db.ingest(&c, CmpSet::empty(), &psl);
    assert_eq!(db.domain_history(&platform_site.domain).len(), 1);
    assert_eq!(db.domain_history("github.io").len(), 0);
}
