//! Parallel-executor equivalence guarantees, end to end.
//!
//! The worker-pool executor (`run_campaign_parallel`) promises that
//! parallelism is *invisible* in every artifact the pipeline persists:
//! checkpoint exports, per-pair captures, dead letters, and the causal
//! trace JSONL are byte-identical to the sequential runner at any
//! thread count — with and without chaos, and across a kill-halfway
//! checkpoint/resume cycle. This binary pins those promises.
//!
//! The trace test enables the process-global `consent_trace` log; tests
//! serialize on a lock (cargo runs one binary's test fns concurrently)
//! and leave the log cleared and disabled, mirroring `it_trace`.

use consent_crawler::{
    build_toplist, resume_campaign_parallel, run_campaign_parallel, run_campaign_with,
    BreakerConfig, CampaignConfig, CampaignRun, CampaignState, ParallelOpts, RetryPolicy,
};
use consent_faultsim::FaultProfile;
use consent_httpsim::Vantage;
use consent_util::{Day, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::sync::{Mutex, MutexGuard, OnceLock};

static LOCK: Mutex<()> = Mutex::new(());

/// Hold the global trace log for one test.
fn lock() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    consent_trace::clear();
    consent_trace::enable();
    guard
}

fn unlock(guard: MutexGuard<'static, ()>) {
    consent_trace::disable();
    consent_trace::clear();
    drop(guard);
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::new(WorldConfig {
            n_sites: 5_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    })
}

fn toplist() -> &'static [String] {
    static LIST: OnceLock<Vec<String>> = OnceLock::new();
    LIST.get_or_init(|| build_toplist(world(), 110, SeedTree::new(7)))
}

fn config(profile: FaultProfile) -> CampaignConfig {
    CampaignConfig {
        fault_profile: profile,
        retry: RetryPolicy::paper(),
        breaker: BreakerConfig::default(),
    }
}

const DAY: fn() -> Day = || Day::from_ymd(2020, 5, 15);

fn vantages() -> [Vantage; 2] {
    [Vantage::eu_cloud(), Vantage::us_cloud()]
}

fn sequential(profile: FaultProfile) -> CampaignRun {
    run_campaign_with(
        world(),
        toplist(),
        DAY(),
        &vantages(),
        SeedTree::new(9),
        &config(profile),
    )
}

fn parallel(profile: FaultProfile, threads: usize) -> CampaignRun {
    run_campaign_parallel(
        world(),
        toplist(),
        DAY(),
        &vantages(),
        SeedTree::new(9),
        &ParallelOpts {
            threads,
            config: config(profile),
            max_pairs: None,
        },
    )
}

/// Every persisted artifact of `a` equals `b`: checkpoint bytes and the
/// full per-pair capture record, column by column.
fn assert_same_run(a: &CampaignRun, b: &CampaignRun) {
    assert_eq!(a.state.export(), b.state.export());
    assert_eq!(a.result.seeds.len(), b.result.seeds.len());
    for ((va, ca), (vb, cb)) in a.result.columns.iter().zip(b.result.columns.iter()) {
        assert_eq!(va, vb);
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(cb.iter()) {
            assert_eq!(x.rank, y.rank);
            assert_eq!(x.capture, y.capture);
            assert_eq!(x.attempts, y.attempts);
            assert_eq!(x.outcome, y.outcome);
        }
    }
}

#[test]
fn parallel_matches_sequential_bytes_without_chaos() {
    let seq = sequential(FaultProfile::none());
    assert!(seq.complete);
    for threads in [1usize, 2, 4] {
        let par = parallel(FaultProfile::none(), threads);
        assert!(par.complete);
        assert_same_run(&par, &seq);
    }
}

#[test]
fn parallel_matches_sequential_bytes_under_mild_chaos() {
    let seq = sequential(FaultProfile::mild());
    assert!(seq.complete);
    // Chaos means retries, breaker opens, and dead letters — all of
    // which must land identically regardless of which worker crawled
    // the pair.
    for threads in [1usize, 2, 4] {
        let par = parallel(FaultProfile::mild(), threads);
        assert!(par.complete);
        assert_same_run(&par, &seq);
        assert_eq!(
            par.state.dead_letters.records().len(),
            seq.state.dead_letters.records().len()
        );
    }
}

#[test]
fn killed_halfway_parallel_run_resumes_to_the_same_bytes() {
    let cfg = config(FaultProfile::mild());
    let full = sequential(FaultProfile::mild());
    let total = (toplist().len() * vantages().len()) as u64;
    assert_eq!(full.state.pairs_done, total);

    // Kill a 4-thread run mid-column, round-trip the checkpoint through
    // its text format, and finish on a *different* thread count.
    let half = total / 2;
    let first = run_campaign_parallel(
        world(),
        toplist(),
        DAY(),
        &vantages(),
        SeedTree::new(9),
        &ParallelOpts {
            threads: 4,
            config: cfg,
            max_pairs: Some(half),
        },
    );
    assert!(!first.complete);
    assert_eq!(first.state.pairs_done, half);

    let checkpoint = first.state.export();
    let restored = CampaignState::import(&checkpoint).expect("checkpoint parses");
    let second = resume_campaign_parallel(
        world(),
        toplist(),
        DAY(),
        &vantages(),
        SeedTree::new(9),
        &ParallelOpts {
            threads: 2,
            config: cfg,
            max_pairs: None,
        },
        restored,
    );
    assert!(second.complete);
    assert_eq!(second.state.export(), full.state.export());

    // The two halves stitch back into the uninterrupted capture record.
    let merged = first.result.merge(second.result);
    for (vantage, captures) in &full.result.columns {
        let m = merged.column(*vantage).unwrap();
        assert_eq!(m.len(), captures.len());
        for (x, y) in captures.iter().zip(m.iter()) {
            assert_eq!(x.rank, y.rank);
            assert_eq!(x.capture, y.capture);
        }
    }
}

#[test]
fn trace_jsonl_is_byte_identical_across_thread_counts() {
    let guard = lock();
    let seq = sequential(FaultProfile::mild());
    let baseline = consent_trace::global().export_jsonl();
    assert!(baseline.contains("attempt.outcome"));

    for threads in [2usize, 4] {
        consent_trace::clear();
        consent_trace::enable();
        let par = parallel(FaultProfile::mild(), threads);
        let jsonl = consent_trace::global().export_jsonl();
        assert_same_run(&par, &seq);
        assert!(
            jsonl == baseline,
            "trace JSONL diverged at {threads} threads"
        );
    }
    unlock(guard);
}
