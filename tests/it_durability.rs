//! Crash safety of the durable campaign driver, end to end.
//!
//! This binary sweeps every deterministic crashpoint of a small
//! campaign and asserts the recovery invariant the checkpoint layer
//! exists for: **no crash, torn write, or corruption can change the
//! bytes**. A resumed campaign's `CampaignState` export and trace JSONL
//! are byte-identical to an uninterrupted run's, at any thread count,
//! under chaos, whatever the store looked like when the process died.
//!
//! Four pinned guarantees:
//!
//! * crash-after-apply at *every* pair index resumes byte-identical
//!   (both executors, with and without mild chaos);
//! * a torn checkpoint write at every write index × several byte cuts
//!   falls back to an older generation (or scratch) and still resumes
//!   byte-identical;
//! * a seeded fuzzer over bit flips and truncations of a real
//!   checkpoint file never produces a silently wrong state — every
//!   mutation is either salvaged to the exact original bytes or
//!   rejected back to a state the driver re-crawls to convergence;
//! * an injected panic is contained: the pair is dead-lettered with
//!   provenance and counted, the rest of the campaign completes, and
//!   exports stay byte-identical across thread counts.
//!
//! Tests serialize on a lock because the trace log and telemetry
//! registry are process-global; each test leaves both cleared and
//! disabled, mirroring `it_trace` and `it_telemetry`.

use consent_checkpoint::CheckpointStore;
use consent_crawler::{
    build_toplist, recover_state, run_campaign_parallel, run_durable_campaign, CampaignConfig,
    DurableOpts, DurableOutcome, ParallelOpts,
};
use consent_faultsim::{CrashPlan, FaultProfile};
use consent_httpsim::Vantage;
use consent_util::{Day, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

static LOCK: Mutex<()> = Mutex::new(());

/// Hold the global trace log + telemetry registry for one test.
fn lock() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    consent_trace::clear();
    consent_trace::enable();
    guard
}

fn unlock(guard: MutexGuard<'static, ()>) {
    consent_trace::disable();
    consent_trace::clear();
    consent_telemetry::reset();
    drop(guard);
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::new(WorldConfig {
            n_sites: 2_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    })
}

fn toplist() -> &'static [String] {
    static LIST: OnceLock<Vec<String>> = OnceLock::new();
    LIST.get_or_init(|| build_toplist(world(), 12, SeedTree::new(7)))
}

const DAY: fn() -> Day = || Day::from_ymd(2020, 5, 15);

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "consent-it-durability-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn config(profile: FaultProfile) -> CampaignConfig {
    CampaignConfig {
        fault_profile: profile,
        ..CampaignConfig::default()
    }
}

fn opts(threads: usize, profile: FaultProfile, crash: CrashPlan) -> DurableOpts {
    DurableOpts {
        threads,
        config: config(profile),
        checkpoint_every: 5,
        crash,
        sampler: None,
    }
}

/// Run one durable campaign over the shared 8-domain × 2-vantage
/// workload against `store`.
fn durable(
    store: &CheckpointStore,
    threads: usize,
    profile: FaultProfile,
    crash: CrashPlan,
) -> consent_crawler::DurableRun {
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    run_durable_campaign(
        world(),
        &toplist()[..8],
        DAY(),
        &vantages,
        SeedTree::new(9),
        store,
        &opts(threads, profile, crash),
    )
    .expect("durable campaign io")
}

/// The uninterrupted run's exports: the bytes every crashed-and-resumed
/// variant must reproduce.
fn baseline(profile: FaultProfile) -> (String, String) {
    let dir = tmp_dir();
    let store = CheckpointStore::open(&dir).unwrap();
    consent_trace::clear();
    let run = durable(&store, 1, profile, CrashPlan::none());
    assert_eq!(run.outcome, DurableOutcome::Complete);
    assert!(run.salvage.is_clean(), "{}", run.salvage.render());
    let out = (run.state.export(), consent_trace::global().export_jsonl());
    std::fs::remove_dir_all(dir).unwrap();
    out
}

/// Simulate the process dying and restarting: the in-memory trace log
/// dies with it; the store directory is all that survives.
fn die() {
    consent_trace::clear();
}

#[test]
fn every_crash_after_apply_resumes_byte_identical() {
    let guard = lock();
    let pairs = 16u64; // 8 domains × 2 vantages
    for profile in [FaultProfile::none(), FaultProfile::mild()] {
        let (state_bytes, trace_bytes) = baseline(profile);
        for threads in [1usize, 4] {
            for k in 1..=pairs {
                let dir = tmp_dir();
                let store = CheckpointStore::open(&dir).unwrap();
                consent_trace::clear();
                let crashed = durable(&store, threads, profile, CrashPlan::after_apply(k));
                match crashed.outcome {
                    DurableOutcome::Crashed { durable_pairs, .. } => {
                        assert!(durable_pairs < k, "crash fires before the covering write");
                        assert!(k - durable_pairs <= 5, "at most one chunk is lost");
                    }
                    DurableOutcome::Complete => panic!("crashpoint apply:{k} never fired"),
                }
                die();
                let resumed = durable(&store, threads, profile, CrashPlan::none());
                assert_eq!(resumed.outcome, DurableOutcome::Complete);
                assert!(
                    resumed.state.export() == state_bytes,
                    "state diverged after apply:{k} at {threads} threads ({profile})"
                );
                assert!(
                    consent_trace::global().export_jsonl() == trace_bytes,
                    "trace diverged after apply:{k} at {threads} threads ({profile})"
                );
                std::fs::remove_dir_all(dir).unwrap();
            }
        }
    }
    unlock(guard);
}

#[test]
fn every_torn_write_falls_back_and_resumes_byte_identical() {
    let guard = lock();
    let (state_bytes, trace_bytes) = baseline(FaultProfile::none());

    // Probe the write sizes: the sweep's crashed runs write the same
    // generations (same campaign, same chunking), so the baseline
    // store's files give each write's exact byte length.
    let probe = tmp_dir();
    let probe_store = CheckpointStore::open(&probe).unwrap();
    consent_trace::clear();
    durable(&probe_store, 1, FaultProfile::none(), CrashPlan::none());
    let gens = probe_store.generations().unwrap();
    assert_eq!(gens, vec![1, 2, 3, 4], "16 pairs in chunks of 5 → 4 writes");
    let sizes: Vec<u64> = gens
        .iter()
        .map(|&g| std::fs::metadata(probe_store.path_for(g)).unwrap().len())
        .collect();
    std::fs::remove_dir_all(&probe).unwrap();

    for threads in [1usize, 4] {
        for (i, &size) in sizes.iter().enumerate() {
            let write = (i + 1) as u64;
            for cut in [0, 1, size / 2, size - 1] {
                let dir = tmp_dir();
                let store = CheckpointStore::open(&dir).unwrap();
                consent_trace::clear();
                let crashed = durable(
                    &store,
                    threads,
                    FaultProfile::none(),
                    CrashPlan::truncate_write(write, cut),
                );
                match crashed.outcome {
                    DurableOutcome::Crashed { durable_pairs, .. } => {
                        // Only the writes before the torn one are durable.
                        assert_eq!(durable_pairs, (write - 1) * 5);
                    }
                    DurableOutcome::Complete => panic!("crashpoint write:{write} never fired"),
                }
                die();
                let resumed = durable(&store, threads, FaultProfile::none(), CrashPlan::none());
                assert_eq!(resumed.outcome, DurableOutcome::Complete);
                assert!(
                    !resumed.salvage.is_clean(),
                    "the torn generation must be quarantined, not used"
                );
                assert!(
                    resumed.state.export() == state_bytes,
                    "state diverged after write:{write}:{cut} at {threads} threads"
                );
                assert!(
                    consent_trace::global().export_jsonl() == trace_bytes,
                    "trace diverged after write:{write}:{cut} at {threads} threads"
                );
                // The torn file was preserved for post-mortem.
                assert!(store.quarantine_dir().is_dir());
                std::fs::remove_dir_all(dir).unwrap();
            }
        }
    }
    unlock(guard);
}

#[test]
fn fuzzed_checkpoints_are_salvaged_or_rejected_never_wrong() {
    let guard = lock();
    let (state_bytes, _) = baseline(FaultProfile::none());

    // A real, trace-bearing checkpoint file to mutate.
    let seed_dir = tmp_dir();
    let seed_store = CheckpointStore::open(&seed_dir).unwrap();
    consent_trace::clear();
    durable(&seed_store, 1, FaultProfile::none(), CrashPlan::none());
    let last = *seed_store.generations().unwrap().last().unwrap();
    let original = std::fs::read(seed_store.path_for(last)).unwrap();
    let name = format!("gen-{last:08}.ckpt");
    std::fs::remove_dir_all(&seed_dir).unwrap();
    consent_trace::disable();
    consent_trace::clear();

    // Deterministic xorshift64* so the mutation set never drifts.
    let mut rng_state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rng = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };

    // The meta section body starts right after the header terminator;
    // flips aimed there exercise the rebuild-from-capture-count salvage,
    // which blind flips over a multi-kilobyte file would rarely hit.
    let marker = b"#end-header\n";
    let meta_start = original
        .windows(marker.len())
        .position(|w| w == marker)
        .expect("checkpoint has a header terminator")
        + marker.len();

    let mut salvaged = 0usize;
    let mut rejected = 0usize;
    for case in 0..64u32 {
        let mut mutated = original.clone();
        let label = match case % 4 {
            3 => {
                // Truncation at a seeded length (strictly shorter).
                let keep = (rng() as usize) % mutated.len();
                mutated.truncate(keep);
                format!("truncate:{keep}")
            }
            2 => {
                // Seeded bit flip inside the meta section body.
                let pos = meta_start + (rng() as usize) % 20;
                let bit = 1u8 << (rng() % 8);
                mutated[pos] ^= bit;
                format!("meta-flip:{pos}:{bit:#04x}")
            }
            _ => {
                // Seeded bit flip anywhere in the file.
                let pos = (rng() as usize) % mutated.len();
                let bit = 1u8 << (rng() % 8);
                mutated[pos] ^= bit;
                format!("flip:{pos}:{bit:#04x}")
            }
        };

        let dir = tmp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(&name), &mutated).unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        let (state, _, report) = recover_state(&store).expect("recover io");
        if state.export() == state_bytes {
            // Exact original bytes back — either the intact path (only
            // possible if the mutation was a no-op, which ours never
            // are) or an honest salvage that says so.
            assert!(
                !report.is_clean(),
                "{label}: corrupted file recovered without a salvage action"
            );
            salvaged += 1;
        } else {
            // Rejected: the driver falls back to scratch and must say
            // so. Anything else would be a silently wrong state.
            assert_eq!(
                state.pairs_done,
                0,
                "{label}: recovered a state that is neither the original nor fresh:\n{}",
                report.render()
            );
            assert!(!report.is_clean(), "{label}: silent rejection");
            rejected += 1;
        }
        // Whatever recovery decided, resuming re-crawls the gap and
        // reconverges on the same bytes.
        let resumed = durable(&store, 1, FaultProfile::none(), CrashPlan::none());
        assert_eq!(resumed.outcome, DurableOutcome::Complete);
        assert!(
            resumed.state.export() == state_bytes,
            "{label}: resume did not reconverge"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
    // The sweep exercises both recovery paths, not just one.
    assert!(salvaged > 0, "no mutation was salvaged");
    assert!(rejected > 0, "no mutation was rejected");
    unlock(guard);
}

/// Silence the default panic hook for the faults this suite injects on
/// purpose; genuine panics still print.
fn silence_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected panic") {
                prev(info);
            }
        }));
    });
}

#[test]
fn injected_panics_are_contained_and_dead_lettered() {
    let guard = lock();
    silence_injected_panics();
    let profile = FaultProfile {
        panic: 0.15,
        ..FaultProfile::none()
    };
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let list = &toplist()[..12];
    let pairs = (list.len() * vantages.len()) as u64;

    let run_at = |threads: usize| {
        consent_trace::clear();
        consent_telemetry::reset();
        consent_telemetry::enable();
        let run = run_campaign_parallel(
            world(),
            list,
            DAY(),
            &vantages,
            SeedTree::new(9),
            &ParallelOpts {
                threads,
                config: config(profile),
                max_pairs: None,
            },
        );
        consent_telemetry::disable();
        let counted = consent_telemetry::global()
            .snapshot()
            .counter("campaign.panic");
        (run, counted)
    };

    let (base, counted) = run_at(1);
    assert!(base.complete, "panics must not abort the campaign");
    assert_eq!(base.state.pairs_done, pairs, "every pair is accounted for");
    let panicked: Vec<_> = base
        .state
        .provenance
        .records()
        .iter()
        .filter(|p| p.outcome == "panic")
        .collect();
    assert!(!panicked.is_empty(), "0.15 panic rate injected nothing");
    assert!(
        (panicked.len() as u64) < pairs,
        "the whole campaign panicked — nothing was contained"
    );
    assert_eq!(counted, panicked.len() as u64, "campaign.panic counter");
    for p in &panicked {
        assert!(p.dead_lettered, "{} not dead-lettered", p.domain);
        assert_eq!(p.attempts.len(), 1, "synthetic history is one attempt");
        assert_eq!(p.attempts[0].fault.as_deref(), Some("panic"));
    }
    let dl_panics = base
        .state
        .dead_letters
        .records()
        .iter()
        .filter(|l| l.outcome == consent_crawler::Outcome::Panic)
        .count();
    assert_eq!(dl_panics, panicked.len());
    // Every panicked pair also leaves a containment marker trace
    // (counted by distinct trace id — a span is two events).
    let marker_traces = consent_trace::global()
        .snapshot()
        .iter()
        .filter(|e| e.name == "pair.panic")
        .map(|e| e.trace_id)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert_eq!(marker_traces, panicked.len());
    let baseline_state = base.state.export();
    let baseline_trace = consent_trace::global().export_jsonl();

    // Containment is deterministic: the pool survives and the exports
    // match at every thread count.
    for threads in [2usize, 4] {
        let (run, counted) = run_at(threads);
        assert!(run.complete);
        assert_eq!(counted, panicked.len() as u64);
        assert!(
            run.state.export() == baseline_state,
            "state diverged at {threads} threads"
        );
        assert!(
            consent_trace::global().export_jsonl() == baseline_trace,
            "trace diverged at {threads} threads"
        );
    }
    unlock(guard);
}

#[test]
fn corrupt_meta_on_newest_generation_salvages_not_refalls() {
    let guard = lock();
    let (state_bytes, trace_bytes) = baseline(FaultProfile::none());

    let dir = tmp_dir();
    let store = CheckpointStore::open(&dir).unwrap();
    consent_trace::clear();
    // Die mid-campaign with two durable generations on disk…
    durable(&store, 1, FaultProfile::none(), CrashPlan::after_apply(11));
    die();
    assert_eq!(store.generations().unwrap(), vec![1, 2]);
    // …then flip a byte in the newest generation's meta section.
    let path = store.path_for(2);
    let mut bytes = std::fs::read(&path).unwrap();
    let marker = b"#end-header\n";
    let start = bytes
        .windows(marker.len())
        .position(|w| w == marker)
        .unwrap()
        + marker.len();
    bytes[start + 1] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let resumed = durable(&store, 1, FaultProfile::none(), CrashPlan::none());
    assert_eq!(resumed.outcome, DurableOutcome::Complete);
    // Salvage kept generation 2's ten pairs instead of falling back to
    // generation 1's five.
    assert!(
        resumed
            .salvage
            .actions
            .iter()
            .any(|a| a.contains("salvaged state (10 pairs)")),
        "{}",
        resumed.salvage.render()
    );
    assert!(resumed.state.export() == state_bytes);
    assert!(consent_trace::global().export_jsonl() == trace_bytes);
    std::fs::remove_dir_all(dir).unwrap();
    unlock(guard);
}
