//! Crash safety of the durable campaign driver, end to end.
//!
//! This binary sweeps every deterministic crashpoint of a small
//! campaign and asserts the recovery invariant the checkpoint layer
//! exists for: **no crash, torn write, or corruption can change the
//! bytes**. A resumed campaign's `CampaignState` export and trace JSONL
//! are byte-identical to an uninterrupted run's, at any thread count,
//! under chaos, whatever the store looked like when the process died.
//!
//! Four pinned guarantees:
//!
//! * crash-after-apply at *every* pair index resumes byte-identical
//!   (both executors, with and without mild chaos);
//! * a torn checkpoint write at every write index × several byte cuts
//!   falls back to an older generation (or scratch) and still resumes
//!   byte-identical;
//! * a seeded fuzzer over bit flips and truncations of a real
//!   checkpoint file never produces a silently wrong state — every
//!   mutation is either salvaged to the exact original bytes or
//!   rejected back to a state the driver re-crawls to convergence;
//! * an injected panic is contained: the pair is dead-lettered with
//!   provenance and counted, the rest of the campaign completes, and
//!   exports stay byte-identical across thread counts.
//!
//! Tests serialize on a lock because the trace log and telemetry
//! registry are process-global; each test leaves both cleared and
//! disabled, mirroring `it_trace` and `it_telemetry`.

use consent_checkpoint::CheckpointStore;
use consent_crawler::{
    build_toplist, open_chaos_store, recover_state, run_campaign_parallel, run_durable_campaign,
    CampaignConfig, DegradeLevel, DurableOpts, DurableOutcome, ParallelOpts,
};
use consent_faultsim::{CrashPlan, FaultProfile, FaultyVfs, IoFaultKind, IoFaultPlan};
use consent_httpsim::Vantage;
use consent_util::{Day, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

static LOCK: Mutex<()> = Mutex::new(());

/// Hold the global trace log + telemetry registry for one test.
fn lock() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    consent_trace::clear();
    consent_trace::enable();
    guard
}

fn unlock(guard: MutexGuard<'static, ()>) {
    consent_trace::disable();
    consent_trace::clear();
    consent_telemetry::reset();
    drop(guard);
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::new(WorldConfig {
            n_sites: 2_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    })
}

fn toplist() -> &'static [String] {
    static LIST: OnceLock<Vec<String>> = OnceLock::new();
    LIST.get_or_init(|| build_toplist(world(), 12, SeedTree::new(7)))
}

const DAY: fn() -> Day = || Day::from_ymd(2020, 5, 15);

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "consent-it-durability-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// True when `CONSENT_IO_CHAOS` schedules storage faults for this whole
/// process (the CI `io-chaos` job). Under chaos, *structural*
/// durability expectations — exact generation counts, chunk-loss
/// bounds, trace byte-identity — are relaxed: faults may legitimately
/// degrade them. State byte-identity and the finished (complete or
/// cleanly degraded) verdict are never relaxed.
fn io_chaos() -> bool {
    !IoFaultPlan::from_env().is_none()
}

/// Open a store honoring `CONSENT_IO_CHAOS`, like production would.
fn open_store(dir: &Path) -> CheckpointStore {
    open_chaos_store(dir).expect("store open")
}

fn config(profile: FaultProfile) -> CampaignConfig {
    CampaignConfig {
        fault_profile: profile,
        ..CampaignConfig::default()
    }
}

fn opts(threads: usize, profile: FaultProfile, crash: CrashPlan) -> DurableOpts {
    DurableOpts {
        threads,
        config: config(profile),
        checkpoint_every: 5,
        crash,
        sampler: None,
        ..DurableOpts::default()
    }
}

/// Run one durable campaign over the shared 8-domain × 2-vantage
/// workload against `store`.
fn durable(
    store: &CheckpointStore,
    threads: usize,
    profile: FaultProfile,
    crash: CrashPlan,
) -> consent_crawler::DurableRun {
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    run_durable_campaign(
        world(),
        &toplist()[..8],
        DAY(),
        &vantages,
        SeedTree::new(9),
        store,
        &opts(threads, profile, crash),
    )
    .expect("durable campaign io")
}

/// The uninterrupted run's exports: the bytes every crashed-and-resumed
/// variant must reproduce.
fn baseline(profile: FaultProfile) -> (String, String) {
    let dir = tmp_dir();
    let store = open_store(&dir);
    consent_trace::clear();
    let run = durable(&store, 1, profile, CrashPlan::none());
    assert!(run.outcome.finished(), "{:?}", run.outcome);
    assert!(run.salvage.is_clean(), "{}", run.salvage.render());
    let out = (run.state.export(), consent_trace::global().export_jsonl());
    std::fs::remove_dir_all(dir).unwrap();
    out
}

/// Simulate the process dying and restarting: the in-memory trace log
/// dies with it; the store directory is all that survives.
fn die() {
    consent_trace::clear();
}

#[test]
fn every_crash_after_apply_resumes_byte_identical() {
    let guard = lock();
    let pairs = 16u64; // 8 domains × 2 vantages
    for profile in [FaultProfile::none(), FaultProfile::mild()] {
        let (state_bytes, trace_bytes) = baseline(profile);
        for threads in [1usize, 4] {
            for k in 1..=pairs {
                let dir = tmp_dir();
                let store = open_store(&dir);
                consent_trace::clear();
                let crashed = durable(&store, threads, profile, CrashPlan::after_apply(k));
                match crashed.outcome {
                    DurableOutcome::Crashed { durable_pairs, .. } => {
                        assert!(durable_pairs < k, "crash fires before the covering write");
                        if !io_chaos() {
                            assert!(k - durable_pairs <= 5, "at most one chunk is lost");
                        }
                    }
                    other => panic!("crashpoint apply:{k} never fired: {other:?}"),
                }
                die();
                let resumed = durable(&store, threads, profile, CrashPlan::none());
                assert!(resumed.outcome.finished(), "{:?}", resumed.outcome);
                assert!(
                    resumed.state.export() == state_bytes,
                    "state diverged after apply:{k} at {threads} threads ({profile})"
                );
                // Storage chaos may shed the trace section (a documented
                // degradation); without it, trace bytes are pinned too.
                if !io_chaos() {
                    assert!(
                        consent_trace::global().export_jsonl() == trace_bytes,
                        "trace diverged after apply:{k} at {threads} threads ({profile})"
                    );
                }
                std::fs::remove_dir_all(dir).unwrap();
            }
        }
    }
    unlock(guard);
}

#[test]
fn every_torn_write_falls_back_and_resumes_byte_identical() {
    let guard = lock();
    let (state_bytes, trace_bytes) = baseline(FaultProfile::none());

    // Probe the write sizes: the sweep's crashed runs write the same
    // generations (same campaign, same chunking), so the baseline
    // store's files give each write's exact byte length.
    let probe = tmp_dir();
    let probe_store = open_store(&probe);
    consent_trace::clear();
    durable(&probe_store, 1, FaultProfile::none(), CrashPlan::none());
    let gens = probe_store.generations().unwrap();
    if !io_chaos() {
        assert_eq!(gens, vec![1, 2, 3, 4], "16 pairs in chunks of 5 → 4 writes");
    }
    let sizes: Vec<u64> = gens
        .iter()
        .map(|&g| std::fs::metadata(probe_store.path_for(g)).unwrap().len())
        .collect();
    std::fs::remove_dir_all(&probe).unwrap();

    for threads in [1usize, 4] {
        for (i, &size) in sizes.iter().enumerate() {
            let write = (i + 1) as u64;
            for cut in [0, 1, size / 2, size - 1] {
                let dir = tmp_dir();
                let store = open_store(&dir);
                consent_trace::clear();
                let crashed = durable(
                    &store,
                    threads,
                    FaultProfile::none(),
                    CrashPlan::truncate_write(write, cut),
                );
                match crashed.outcome {
                    DurableOutcome::Crashed { durable_pairs, .. } => {
                        // Only the writes before the torn one are durable.
                        if !io_chaos() {
                            assert_eq!(durable_pairs, (write - 1) * 5);
                        }
                    }
                    other => panic!("crashpoint write:{write} never fired: {other:?}"),
                }
                die();
                let resumed = durable(&store, threads, FaultProfile::none(), CrashPlan::none());
                assert!(resumed.outcome.finished(), "{:?}", resumed.outcome);
                assert!(
                    resumed.state.export() == state_bytes,
                    "state diverged after write:{write}:{cut} at {threads} threads"
                );
                if !io_chaos() {
                    assert!(
                        !resumed.salvage.is_clean(),
                        "the torn generation must be quarantined, not used"
                    );
                    assert!(
                        consent_trace::global().export_jsonl() == trace_bytes,
                        "trace diverged after write:{write}:{cut} at {threads} threads"
                    );
                    // The torn file was preserved for post-mortem.
                    assert!(store.quarantine_dir().is_dir());
                }
                std::fs::remove_dir_all(dir).unwrap();
            }
        }
    }
    unlock(guard);
}

#[test]
fn fuzzed_checkpoints_are_salvaged_or_rejected_never_wrong() {
    let guard = lock();
    let (state_bytes, _) = baseline(FaultProfile::none());

    // A real, trace-bearing checkpoint file to mutate.
    let seed_dir = tmp_dir();
    let seed_store = CheckpointStore::open(&seed_dir).unwrap();
    consent_trace::clear();
    durable(&seed_store, 1, FaultProfile::none(), CrashPlan::none());
    let last = *seed_store.generations().unwrap().last().unwrap();
    let original = std::fs::read(seed_store.path_for(last)).unwrap();
    let name = format!("gen-{last:08}.ckpt");
    std::fs::remove_dir_all(&seed_dir).unwrap();
    consent_trace::disable();
    consent_trace::clear();

    // Deterministic xorshift64* so the mutation set never drifts.
    let mut rng_state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rng = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };

    // The meta section body starts right after the header terminator;
    // flips aimed there exercise the rebuild-from-capture-count salvage,
    // which blind flips over a multi-kilobyte file would rarely hit.
    let marker = b"#end-header\n";
    let meta_start = original
        .windows(marker.len())
        .position(|w| w == marker)
        .expect("checkpoint has a header terminator")
        + marker.len();

    let mut salvaged = 0usize;
    let mut rejected = 0usize;
    for case in 0..64u32 {
        let mut mutated = original.clone();
        let label = match case % 4 {
            3 => {
                // Truncation at a seeded length (strictly shorter).
                let keep = (rng() as usize) % mutated.len();
                mutated.truncate(keep);
                format!("truncate:{keep}")
            }
            2 => {
                // Seeded bit flip inside the meta section body.
                let pos = meta_start + (rng() as usize) % 20;
                let bit = 1u8 << (rng() % 8);
                mutated[pos] ^= bit;
                format!("meta-flip:{pos}:{bit:#04x}")
            }
            _ => {
                // Seeded bit flip anywhere in the file.
                let pos = (rng() as usize) % mutated.len();
                let bit = 1u8 << (rng() % 8);
                mutated[pos] ^= bit;
                format!("flip:{pos}:{bit:#04x}")
            }
        };

        let dir = tmp_dir();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(&name), &mutated).unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        let (state, _, report) = recover_state(&store).expect("recover io");
        if state.export() == state_bytes {
            // Exact original bytes back — either the intact path (only
            // possible if the mutation was a no-op, which ours never
            // are) or an honest salvage that says so.
            assert!(
                !report.is_clean(),
                "{label}: corrupted file recovered without a salvage action"
            );
            salvaged += 1;
        } else {
            // Rejected: the driver falls back to scratch and must say
            // so. Anything else would be a silently wrong state.
            assert_eq!(
                state.pairs_done,
                0,
                "{label}: recovered a state that is neither the original nor fresh:\n{}",
                report.render()
            );
            assert!(!report.is_clean(), "{label}: silent rejection");
            rejected += 1;
        }
        // Whatever recovery decided, resuming re-crawls the gap and
        // reconverges on the same bytes.
        let resumed = durable(&store, 1, FaultProfile::none(), CrashPlan::none());
        assert_eq!(resumed.outcome, DurableOutcome::Complete);
        assert!(
            resumed.state.export() == state_bytes,
            "{label}: resume did not reconverge"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
    // The sweep exercises both recovery paths, not just one.
    assert!(salvaged > 0, "no mutation was salvaged");
    assert!(rejected > 0, "no mutation was rejected");
    unlock(guard);
}

/// Silence the default panic hook for the faults this suite injects on
/// purpose; genuine panics still print.
fn silence_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected panic") {
                prev(info);
            }
        }));
    });
}

#[test]
fn injected_panics_are_contained_and_dead_lettered() {
    let guard = lock();
    silence_injected_panics();
    let profile = FaultProfile {
        panic: 0.15,
        ..FaultProfile::none()
    };
    let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
    let list = &toplist()[..12];
    let pairs = (list.len() * vantages.len()) as u64;

    let run_at = |threads: usize| {
        consent_trace::clear();
        consent_telemetry::reset();
        consent_telemetry::enable();
        let run = run_campaign_parallel(
            world(),
            list,
            DAY(),
            &vantages,
            SeedTree::new(9),
            &ParallelOpts {
                threads,
                config: config(profile),
                max_pairs: None,
            },
        );
        consent_telemetry::disable();
        let counted = consent_telemetry::global()
            .snapshot()
            .counter("campaign.panic");
        (run, counted)
    };

    let (base, counted) = run_at(1);
    assert!(base.complete, "panics must not abort the campaign");
    assert_eq!(base.state.pairs_done, pairs, "every pair is accounted for");
    let panicked: Vec<_> = base
        .state
        .provenance
        .records()
        .iter()
        .filter(|p| p.outcome == "panic")
        .collect();
    assert!(!panicked.is_empty(), "0.15 panic rate injected nothing");
    assert!(
        (panicked.len() as u64) < pairs,
        "the whole campaign panicked — nothing was contained"
    );
    assert_eq!(counted, panicked.len() as u64, "campaign.panic counter");
    for p in &panicked {
        assert!(p.dead_lettered, "{} not dead-lettered", p.domain);
        assert_eq!(p.attempts.len(), 1, "synthetic history is one attempt");
        assert_eq!(p.attempts[0].fault.as_deref(), Some("panic"));
    }
    let dl_panics = base
        .state
        .dead_letters
        .records()
        .iter()
        .filter(|l| l.outcome == consent_crawler::Outcome::Panic)
        .count();
    assert_eq!(dl_panics, panicked.len());
    // Every panicked pair also leaves a containment marker trace
    // (counted by distinct trace id — a span is two events).
    let marker_traces = consent_trace::global()
        .snapshot()
        .iter()
        .filter(|e| e.name == "pair.panic")
        .map(|e| e.trace_id)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert_eq!(marker_traces, panicked.len());
    let baseline_state = base.state.export();
    let baseline_trace = consent_trace::global().export_jsonl();

    // Containment is deterministic: the pool survives and the exports
    // match at every thread count.
    for threads in [2usize, 4] {
        let (run, counted) = run_at(threads);
        assert!(run.complete);
        assert_eq!(counted, panicked.len() as u64);
        assert!(
            run.state.export() == baseline_state,
            "state diverged at {threads} threads"
        );
        assert!(
            consent_trace::global().export_jsonl() == baseline_trace,
            "trace diverged at {threads} threads"
        );
    }
    unlock(guard);
}

#[test]
fn corrupt_meta_on_newest_generation_salvages_not_refalls() {
    let guard = lock();
    let (state_bytes, trace_bytes) = baseline(FaultProfile::none());

    let dir = tmp_dir();
    let store = CheckpointStore::open(&dir).unwrap();
    consent_trace::clear();
    // Die mid-campaign with two durable generations on disk…
    durable(&store, 1, FaultProfile::none(), CrashPlan::after_apply(11));
    die();
    assert_eq!(store.generations().unwrap(), vec![1, 2]);
    // …then flip a byte in the newest generation's meta section.
    let path = store.path_for(2);
    let mut bytes = std::fs::read(&path).unwrap();
    let marker = b"#end-header\n";
    let start = bytes
        .windows(marker.len())
        .position(|w| w == marker)
        .unwrap()
        + marker.len();
    bytes[start + 1] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let resumed = durable(&store, 1, FaultProfile::none(), CrashPlan::none());
    assert_eq!(resumed.outcome, DurableOutcome::Complete);
    // Salvage kept generation 2's ten pairs instead of falling back to
    // generation 1's five.
    assert!(
        resumed
            .salvage
            .actions
            .iter()
            .any(|a| a.contains("salvaged state (10 pairs)")),
        "{}",
        resumed.salvage.render()
    );
    assert!(resumed.state.export() == state_bytes);
    assert!(consent_trace::global().export_jsonl() == trace_bytes);
    std::fs::remove_dir_all(dir).unwrap();
    unlock(guard);
}

// ---------------------------------------------------------------------------
// Storage-fault injection: the IO-fault sweep and the degradation ladder.
// ---------------------------------------------------------------------------

/// A store whose filesystem seam is a [`FaultyVfs`] driven by `plan`,
/// returned alongside the vfs handle for op/injection accounting.
fn store_with_plan(dir: &Path, plan: IoFaultPlan) -> (CheckpointStore, Arc<FaultyVfs>) {
    let vfs = Arc::new(FaultyVfs::new(plan));
    let store = CheckpointStore::with_vfs(dir, consent_checkpoint::DEFAULT_KEEP, vfs.clone())
        .expect("store open");
    (store, vfs)
}

/// The tentpole sweep: inject each fault kind at **every** filesystem
/// operation index of the campaign, at 1/2/4 threads, under mild
/// network chaos — and assert the run either heals to byte-identical
/// state or degrades cleanly, then that a kill-and-resume on the
/// survivor store reconverges on the same bytes. Never silent
/// divergence, never a wedged campaign.
#[test]
fn every_io_fault_at_every_op_heals_or_degrades_byte_identical() {
    let guard = lock();
    let profile = FaultProfile::mild();
    let (state_bytes, trace_bytes) = baseline(profile);

    for threads in [1usize, 2, 4] {
        // Probe: a fault-free instrumented run counts the campaign's
        // vfs operations, which the sweep then enumerates. The probe
        // also pins the passthrough invariant: a FaultyVfs with no
        // plan changes nothing.
        let probe = tmp_dir();
        let (pstore, pvfs) = store_with_plan(&probe, IoFaultPlan::none());
        consent_trace::clear();
        let run = durable(&pstore, threads, profile, CrashPlan::none());
        assert_eq!(run.outcome, DurableOutcome::Complete);
        assert!(run.health.is_healthy());
        assert!(
            run.state.export() == state_bytes,
            "fault-free FaultyVfs changed campaign bytes"
        );
        let ops = pvfs.ops();
        assert_eq!(pvfs.injected(), 0);
        assert!(ops >= 20, "4 writes x 5 ops minimum, saw {ops}");
        std::fs::remove_dir_all(&probe).unwrap();

        for kind in [IoFaultKind::Enospc, IoFaultKind::Eio, IoFaultKind::Short] {
            for at in 0..ops {
                let dir = tmp_dir();
                let (store, _vfs) = store_with_plan(&dir, IoFaultPlan::rule(kind, None, at, 1));
                consent_trace::clear();
                let run = durable(&store, threads, profile, CrashPlan::none());
                assert!(
                    run.outcome.finished(),
                    "{kind:?}@{at} x{threads}: wedged: {:?}",
                    run.outcome
                );
                assert!(
                    run.state.export() == state_bytes,
                    "{kind:?}@{at} x{threads}: state diverged ({})",
                    run.health.summary()
                );
                // Shedding the trace section is the only sanctioned
                // trace loss; below that rung the bytes are pinned.
                if run.health.level < DegradeLevel::ShedTrace {
                    assert!(
                        consent_trace::global().export_jsonl() == trace_bytes,
                        "{kind:?}@{at} x{threads}: trace diverged while healthy"
                    );
                }
                // Kill the process and resume on whatever the fault
                // left on disk: corrupt generations (short writes) are
                // quarantined, gaps re-crawled, bytes reconverge.
                die();
                let resumed = durable(&store, threads, profile, CrashPlan::none());
                assert!(
                    resumed.outcome.finished(),
                    "{kind:?}@{at} x{threads}: resume wedged: {:?}",
                    resumed.outcome
                );
                assert!(
                    resumed.state.export() == state_bytes,
                    "{kind:?}@{at} x{threads}: resume did not reconverge"
                );
                std::fs::remove_dir_all(dir).unwrap();
            }
        }
    }
    unlock(guard);
}

/// Faults aimed at the *recovery* path (the reads and re-writes of a
/// resumed process) must also heal or degrade — a half-dead disk at
/// startup cannot wedge or silently corrupt the campaign.
#[test]
fn io_faults_during_recovery_still_converge() {
    let guard = lock();
    let (state_bytes, _) = baseline(FaultProfile::none());

    // Probe the op index ranges of the crashed run and the resume leg.
    let probe = tmp_dir();
    let (pstore, pvfs) = store_with_plan(&probe, IoFaultPlan::none());
    consent_trace::clear();
    durable(&pstore, 1, FaultProfile::none(), CrashPlan::after_apply(11));
    let crashed_ops = pvfs.ops();
    die();
    durable(&pstore, 1, FaultProfile::none(), CrashPlan::none());
    let resume_ops = pvfs.ops() - crashed_ops;
    assert!(
        resume_ops >= 6,
        "resume must at least read a generation and finish the campaign, saw {resume_ops}"
    );
    std::fs::remove_dir_all(&probe).unwrap();

    for kind in [IoFaultKind::Enospc, IoFaultKind::Eio, IoFaultKind::Short] {
        for at in crashed_ops..crashed_ops + resume_ops {
            let dir = tmp_dir();
            let (store, _vfs) = store_with_plan(&dir, IoFaultPlan::rule(kind, None, at, 1));
            consent_trace::clear();
            let crashed = durable(&store, 1, FaultProfile::none(), CrashPlan::after_apply(11));
            assert!(
                matches!(crashed.outcome, DurableOutcome::Crashed { .. }),
                "{kind:?}@{at}: {:?}",
                crashed.outcome
            );
            die();
            let resumed = durable(&store, 1, FaultProfile::none(), CrashPlan::none());
            assert!(
                resumed.outcome.finished(),
                "{kind:?}@{at}: resume wedged: {:?}",
                resumed.outcome
            );
            assert!(
                resumed.state.export() == state_bytes,
                "{kind:?}@{at}: resume diverged ({})",
                resumed.health.summary()
            );
            std::fs::remove_dir_all(dir).unwrap();
        }
    }
    unlock(guard);
}

/// A disk that is persistently full walks the whole ladder — shed
/// trace, widen cadence, memory-only — and still finishes with
/// byte-identical state and a loud health report.
#[test]
fn persistent_enospc_descends_ladder_and_finishes_loud() {
    let guard = lock();
    let (state_bytes, _) = baseline(FaultProfile::none());

    let dir = tmp_dir();
    let (store, vfs) = store_with_plan(
        &dir,
        IoFaultPlan::rule(IoFaultKind::Enospc, None, 0, u64::MAX),
    );
    consent_trace::clear();
    consent_telemetry::reset();
    consent_telemetry::enable();
    let run = durable(&store, 1, FaultProfile::none(), CrashPlan::none());
    consent_telemetry::disable();

    let DurableOutcome::Degraded(report) = &run.outcome else {
        panic!("dead disk must degrade, got {:?}", run.outcome);
    };
    assert_eq!(report.level, DegradeLevel::MemoryOnly);
    assert_eq!(run.health, *report, "run.health mirrors the outcome report");
    assert_eq!(
        report.events.len(),
        3,
        "one descent event per rung:\n{}",
        report.render()
    );
    assert!(report.render().contains("persistent storage fault"));
    assert_eq!(report.retries, 0, "no retry budget wasted on ENOSPC");
    assert!(report.writes_skipped > 0, "{}", report.summary());
    assert!(
        run.state.export() == state_bytes,
        "degradation must never change the measurement"
    );
    assert!(
        store.generations().unwrap().is_empty(),
        "nothing can be durable on a dead disk"
    );
    assert!(vfs.injected() > 0);

    let snap = consent_telemetry::global().snapshot();
    assert!(snap.counter("checkpoint.io_fault") >= 3);
    assert!(snap.counter("checkpoint.skipped") > 0);
    assert_eq!(snap.counter("campaign.degrade{level=shed-trace}"), 1);
    assert_eq!(snap.counter("campaign.degrade{level=wide-cadence}"), 1);
    assert_eq!(snap.counter("campaign.degrade{level=memory-only}"), 1);
    consent_telemetry::reset();
    std::fs::remove_dir_all(dir).unwrap();
    unlock(guard);
}

/// Transient faults inside the retry budget heal in place: the run
/// stays `Complete`, every generation lands, and the health ledger
/// records the faults, retries, and recorded (never slept) backoff.
#[test]
fn transient_faults_retry_heal_and_complete() {
    let guard = lock();
    let (state_bytes, trace_bytes) = baseline(FaultProfile::none());

    let dir = tmp_dir();
    // Two consecutive failing ops starting inside the second write —
    // transient-then-recovers, well within the default budget of 8.
    let (store, _vfs) = store_with_plan(&dir, IoFaultPlan::rule(IoFaultKind::Eio, None, 7, 2));
    consent_trace::clear();
    let run = durable(&store, 1, FaultProfile::none(), CrashPlan::none());
    assert_eq!(
        run.outcome,
        DurableOutcome::Complete,
        "healed, not degraded"
    );
    assert_eq!(run.health.level, DegradeLevel::Normal);
    assert_eq!(run.health.io_faults, 2, "{}", run.health.summary());
    assert_eq!(run.health.retries, 2);
    assert!(run.health.backoff_ms_total > 0, "backoff recorded");
    assert!(run.state.export() == state_bytes);
    assert!(consent_trace::global().export_jsonl() == trace_bytes);
    assert_eq!(
        store.generations().unwrap(),
        vec![1, 2, 3, 4],
        "every generation eventually landed"
    );
    std::fs::remove_dir_all(dir).unwrap();
    unlock(guard);
}

/// `CONSENT_IO_CHAOS` wiring: garbage specs are counted and ignored;
/// real specs route the store through a FaultyVfs via
/// [`open_chaos_store`].
#[test]
fn env_io_chaos_is_honored_and_garbage_falls_back() {
    let guard = lock();
    let prev = std::env::var("CONSENT_IO_CHAOS").ok();

    std::env::set_var("CONSENT_IO_CHAOS", "totally/bogus");
    consent_telemetry::reset();
    consent_telemetry::enable();
    assert!(IoFaultPlan::from_env().is_none(), "typos must not inject");
    consent_telemetry::disable();
    assert_eq!(
        consent_telemetry::global()
            .snapshot()
            .counter("faultsim.io_chaos.unrecognized"),
        1,
        "malformed spec must be reported"
    );
    consent_telemetry::reset();

    // A persistently full disk from op 0, configured via env exactly as
    // the CI io-chaos job would: the campaign still finishes, loudly.
    std::env::set_var("CONSENT_IO_CHAOS", "enospc@*:0:*");
    let dir = tmp_dir();
    let store = open_store(&dir);
    consent_trace::clear();
    let run = durable(&store, 1, FaultProfile::none(), CrashPlan::none());
    assert!(
        matches!(run.outcome, DurableOutcome::Degraded(_)),
        "{:?}",
        run.outcome
    );
    assert!(store.generations().unwrap().is_empty());
    std::fs::remove_dir_all(dir).unwrap();

    match prev {
        Some(v) => std::env::set_var("CONSENT_IO_CHAOS", v),
        None => std::env::remove_var("CONSENT_IO_CHAOS"),
    }
    unlock(guard);
}

mod io_fault_plan_properties {
    use consent_faultsim::{IoFaultKind, IoFaultPlan, IoOp};
    use proptest::prelude::*;

    /// Structured plans drawn from the full spec grammar: up to three
    /// scheduled rules plus an optional background rate.
    fn plan_strategy() -> impl Strategy<Value = IoFaultPlan> {
        let rule = (0u8..3, 0usize..8, 0u64..1000, 0u64..52).prop_map(|(k, o, at, c)| {
            let kind = [IoFaultKind::Enospc, IoFaultKind::Eio, IoFaultKind::Short][k as usize];
            let op = if o == 7 { None } else { Some(IoOp::ALL[o]) };
            // 0 → the implicit single-shot count, 51 → forever.
            let count = match c {
                0 => 1,
                51 => u64::MAX,
                n => n + 1,
            };
            (kind, op, at, count)
        });
        (
            proptest::collection::vec(rule, 0..4),
            proptest::option::of((0u64..1_000_000, 1u64..1001)),
        )
            .prop_map(|(rules, rate)| {
                let mut plan = match rate {
                    Some((seed, per_mille)) => IoFaultPlan::rate(seed, per_mille),
                    None => IoFaultPlan::none(),
                };
                for (kind, op, at, count) in rules {
                    plan = plan.with_rule(kind, op, at, count);
                }
                plan
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Every plan the grammar can express survives an env-spec
        /// round-trip: `parse(display(plan)) == plan`.
        #[test]
        fn io_fault_plan_env_spec_round_trips(plan in plan_strategy()) {
            let spec = plan.to_string();
            let reparsed = IoFaultPlan::parse(&spec);
            prop_assert_eq!(reparsed.as_ref(), Some(&plan), "spec {}", spec);
            // Display is a fixpoint: re-displaying the reparse is stable.
            prop_assert_eq!(reparsed.unwrap().to_string(), spec);
        }

        /// Fault decisions are a pure function of (index, op): two
        /// identical plans always agree everywhere.
        #[test]
        fn io_fault_plan_decisions_are_pure(plan in plan_strategy(), index in 0u64..5000) {
            let clone = IoFaultPlan::parse(&plan.to_string()).unwrap();
            for op in IoOp::ALL {
                prop_assert_eq!(plan.decide(index, op), clone.decide(index, op));
            }
        }
    }
}
