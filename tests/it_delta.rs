//! Delta-chain durability and storage-format compatibility, end to end.
//!
//! `it_durability` sweeps the crash space of the *full*-checkpoint
//! driver; this binary pins the guarantees that delta generations add
//! on top (see `docs/STORAGE.md`):
//!
//! * delta mode never changes the measurement: exports are
//!   byte-identical to full mode at 1/2/4 threads;
//! * a kill halfway between delta cuts — including right at a columnar
//!   segment seal, the store's only internal boundary — resumes
//!   byte-identical at 1/2/4 threads;
//! * corrupting one member of a delta chain quarantines the head down
//!   to the break and recovery falls back to the longest intact prefix
//!   of the chain, then re-crawls to the same bytes;
//! * the committed v2 capture-db fixture keeps importing: version
//!   negotiation upgrades legacy checkpoints to v3 on re-export.
//!
//! The segment-boundary legs use a toplist drawn from a single shard,
//! so shard row counts equal pairs done and the seal at row
//! [`SEGMENT_ROWS`] lands at a known pair index between two cuts.
//!
//! Tests serialize on a lock because the trace log and telemetry
//! registry are process-global; each test leaves both cleared and
//! disabled, mirroring `it_durability`.

use consent_checkpoint::CheckpointStore;
use consent_crawler::{
    build_toplist, export_db, import_db, open_chaos_store, recover_state, run_durable_campaign,
    shard_of, CampaignConfig, CheckpointMode, DurableOpts, DurableOutcome, SECTION_DELTA_META,
    SEGMENT_ROWS, SHARD_COUNT,
};
use consent_faultsim::{CrashPlan, FaultProfile, IoFaultPlan};
use consent_httpsim::Vantage;
use consent_util::{Day, SeedTree};
use consent_webgraph::{AdoptionConfig, World, WorldConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

static LOCK: Mutex<()> = Mutex::new(());

/// Hold the global trace log + telemetry registry for one test.
fn lock() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    consent_trace::clear();
    consent_trace::enable();
    guard
}

fn unlock(guard: MutexGuard<'static, ()>) {
    consent_trace::disable();
    consent_trace::clear();
    consent_telemetry::reset();
    drop(guard);
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::new(WorldConfig {
            n_sites: 6_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    })
}

/// A toplist drawn entirely from one capture-db shard: nearly every
/// crawled pair appends to the same shard (redirects can move a
/// captured host to a sibling shard), so the segment seal at row
/// [`SEGMENT_ROWS`] falls within a pair or two of a known index. The
/// list is long enough to cross one seal.
fn same_shard_list() -> &'static [String] {
    static LIST: OnceLock<Vec<String>> = OnceLock::new();
    LIST.get_or_init(|| {
        let full = build_toplist(world(), 5_000, SeedTree::new(7));
        let mut counts = [0usize; SHARD_COUNT];
        for d in &full {
            counts[shard_of(d)] += 1;
        }
        let shard = (0..SHARD_COUNT).max_by_key(|&s| counts[s]).expect("shards");
        let list: Vec<String> = full
            .iter()
            .filter(|d| shard_of(d) == shard)
            .take(SEGMENT_ROWS + 4)
            .cloned()
            .collect();
        assert_eq!(
            list.len(),
            SEGMENT_ROWS + 4,
            "5000 domains over {SHARD_COUNT} shards must fill one shard past a seal"
        );
        list
    })
}

const DAY: fn() -> Day = || Day::from_ymd(2020, 5, 15);

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "consent-it-delta-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// True when `CONSENT_IO_CHAOS` schedules storage faults for this whole
/// process (the CI `io-chaos` job). Under chaos, structural
/// expectations — generation layout, trace byte-identity — are relaxed;
/// state byte-identity and the finished verdict never are.
fn io_chaos() -> bool {
    !IoFaultPlan::from_env().is_none()
}

fn open_store(dir: &Path) -> CheckpointStore {
    open_chaos_store(dir).expect("store open")
}

/// One single-vantage durable campaign over `list` at `mode`.
fn durable(
    store: &CheckpointStore,
    list: &[String],
    threads: usize,
    mode: CheckpointMode,
    checkpoint_every: u64,
    crash: CrashPlan,
) -> consent_crawler::DurableRun {
    let vantages = [Vantage::eu_cloud()];
    let opts = DurableOpts {
        threads,
        config: CampaignConfig {
            fault_profile: FaultProfile::none(),
            ..CampaignConfig::default()
        },
        checkpoint_every,
        mode,
        crash,
        sampler: None,
        ..DurableOpts::default()
    };
    run_durable_campaign(
        world(),
        list,
        DAY(),
        &vantages,
        SeedTree::new(9),
        store,
        &opts,
    )
    .expect("durable campaign io")
}

/// The uninterrupted *full-mode* run's exports: the bytes every
/// delta-mode variant must reproduce. Also pins the workload shape the
/// boundary sweep relies on: one row per pair, all in one shard, at
/// least one sealed segment.
fn baseline(list: &[String], checkpoint_every: u64) -> (String, String) {
    let dir = tmp_dir();
    let store = open_store(&dir);
    consent_trace::clear();
    let run = durable(
        &store,
        list,
        1,
        CheckpointMode::Full,
        checkpoint_every,
        CrashPlan::none(),
    );
    assert!(run.outcome.finished(), "{:?}", run.outcome);
    assert_eq!(run.state.db.len(), list.len() as u64, "one row per pair");
    if list.len() > SEGMENT_ROWS {
        // Rows are keyed by the *captured* host, which a redirect can
        // move to a sibling shard — so the target shard holds nearly,
        // not exactly, one row per pair. It must still cross its seal.
        let shard = shard_of(&list[0]);
        assert!(
            run.state.db.marks().shard_rows[shard] as usize > SEGMENT_ROWS,
            "shard {shard} holds {} rows, not enough to seal",
            run.state.db.marks().shard_rows[shard]
        );
        assert!(
            run.state.db.sealed_segments() >= 1,
            "the workload must cross a segment seal"
        );
    }
    let out = (run.state.export(), consent_trace::global().export_jsonl());
    std::fs::remove_dir_all(dir).unwrap();
    out
}

/// Simulate the process dying and restarting: the in-memory trace log
/// dies with it; the store directory is all that survives.
fn die() {
    consent_trace::clear();
}

#[test]
fn delta_mode_is_byte_identical_across_thread_counts() {
    let guard = lock();
    let list = &same_shard_list()[..48];
    let (state_bytes, trace_bytes) = baseline(list, 16);

    for threads in [1usize, 2, 4] {
        let dir = tmp_dir();
        let store = open_store(&dir);
        consent_trace::clear();
        let run = durable(
            &store,
            list,
            threads,
            CheckpointMode::Delta { rebase_every: 8 },
            16,
            CrashPlan::none(),
        );
        assert!(run.outcome.finished(), "{:?}", run.outcome);
        assert!(
            run.state.export() == state_bytes,
            "delta-mode state diverged at {threads} threads"
        );
        if !io_chaos() {
            assert!(
                consent_trace::global().export_jsonl() == trace_bytes,
                "delta-mode trace diverged at {threads} threads"
            );
            // The store really holds a chain, not disguised full writes:
            // 48 pairs at cadence 16 → full base + two delta members.
            let gens = store.generations().unwrap();
            assert_eq!(gens, vec![1, 2, 3]);
            for g in [2u64, 3] {
                let scan = store.scan_generation(g).unwrap();
                assert!(
                    scan.section(SECTION_DELTA_META).is_some(),
                    "generation {g} is not a delta"
                );
            }
        }
        std::fs::remove_dir_all(dir).unwrap();
    }
    unlock(guard);
}

#[test]
fn kill_halfway_between_delta_cuts_at_segment_boundaries_resumes_byte_identical() {
    let guard = lock();
    let list = same_shard_list();
    let pairs = list.len() as u64; // SEGMENT_ROWS + 4 = 260
    let cadence = 64u64; // cuts at 64, 128, 192, 256 — the last IS the seal
    let (state_bytes, trace_bytes) = baseline(list, cadence);

    let seal = SEGMENT_ROWS as u64;
    // Halfway between cuts, the insert that fills the segment, and the
    // straddling inserts either side of the seal.
    let crashpoints = [cadence / 2, 3 * cadence / 2, seal - 1, seal, seal + 1];
    for threads in [1usize, 2, 4] {
        for &k in &crashpoints {
            assert!(k < pairs);
            let dir = tmp_dir();
            let store = open_store(&dir);
            consent_trace::clear();
            let mode = CheckpointMode::Delta { rebase_every: 8 };
            let crashed = durable(
                &store,
                list,
                threads,
                mode,
                cadence,
                CrashPlan::after_apply(k),
            );
            match crashed.outcome {
                DurableOutcome::Crashed { durable_pairs, .. } => {
                    assert!(durable_pairs < k, "crash fires before the covering write");
                }
                other => panic!("crashpoint apply:{k} never fired: {other:?}"),
            }
            die();
            let resumed = durable(&store, list, threads, mode, cadence, CrashPlan::none());
            assert!(resumed.outcome.finished(), "{:?}", resumed.outcome);
            assert!(
                resumed.state.export() == state_bytes,
                "state diverged after apply:{k} at {threads} threads"
            );
            if !io_chaos() {
                assert!(
                    consent_trace::global().export_jsonl() == trace_bytes,
                    "trace diverged after apply:{k} at {threads} threads"
                );
            }
            std::fs::remove_dir_all(dir).unwrap();
        }
    }
    unlock(guard);
}

#[test]
fn corrupt_one_delta_falls_back_to_last_intact_chain_and_reconverges() {
    let guard = lock();
    let list = &same_shard_list()[..40];
    let (state_bytes, trace_bytes) = baseline(list, 8);

    let dir = tmp_dir();
    let store = CheckpointStore::open(&dir).unwrap();
    consent_trace::clear();
    // 40 pairs at cadence 8, never rebasing → full base 1, deltas 2–5.
    let mode = CheckpointMode::Delta { rebase_every: 100 };
    let run = durable(&store, list, 1, mode, 8, CrashPlan::none());
    assert!(run.outcome.finished(), "{:?}", run.outcome);
    assert_eq!(store.generations().unwrap(), vec![1, 2, 3, 4, 5]);

    // Flip one byte in the middle of delta generation 4.
    let path = store.path_for(4);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    die();

    // Recovery quarantines the head (5) and the corrupt member (4), then
    // reassembles the longest intact prefix of the chain: 1 ← 2 ← 3.
    let (state, _, report) = recover_state(&store).expect("recover io");
    assert_eq!(report.used_generation, Some(3), "{}", report.render());
    assert_eq!(
        report
            .quarantined
            .iter()
            .map(|q| q.generation)
            .collect::<Vec<_>>(),
        vec![5, 4],
        "{}",
        report.render()
    );
    assert!(
        report
            .actions
            .iter()
            .any(|a| a.contains("recovered delta chain")),
        "{}",
        report.render()
    );
    assert_eq!(state.pairs_done, 24, "generation 3 covers three cuts of 8");
    assert!(store.quarantine_dir().is_dir(), "corrupt files kept");

    // Resuming re-crawls pairs 25–40 and reconverges on the same bytes.
    let resumed = durable(&store, list, 1, mode, 8, CrashPlan::none());
    assert!(resumed.outcome.finished(), "{:?}", resumed.outcome);
    assert!(
        resumed.state.export() == state_bytes,
        "resume after chain break did not reconverge"
    );
    assert!(
        consent_trace::global().export_jsonl() == trace_bytes,
        "trace diverged after chain break"
    );
    std::fs::remove_dir_all(dir).unwrap();
    unlock(guard);
}

/// The committed legacy fixture: a v2 flat-format capture DB as an old
/// checkpoint would carry. Version negotiation must keep importing it
/// and re-export it as v3, byte-stably.
#[test]
fn committed_v2_fixture_imports_and_upgrades_to_v3() {
    let text = include_str!("fixtures/capture_db_v2.txt");
    let db = import_db(text).expect("committed v2 fixture must import");
    assert_eq!(db.len(), 20);
    assert_eq!(db.domain_count(), 8);

    // Spot-check one domain's history survived the format upgrade.
    let hist = db.domain_history("travel.example");
    assert_eq!(hist.len(), 3);
    assert!(hist[2].dialog_visible);

    // Re-export negotiates up to v3 and round-trips from there.
    let v3 = export_db(&db);
    assert!(v3.starts_with("#consent-capture-db v3\n"));
    let back = import_db(&v3).expect("v3 re-export must round-trip");
    assert_eq!(export_db(&back), v3);
    assert_eq!(back.marks(), db.marks());

    // Writing v2 is gone: nothing in the upgrade path emits the old
    // header.
    assert!(!v3.contains("#consent-capture-db v2"));
}

/// The committed v3 columnar fixture pins the *current* on-disk
/// grammar: the host table, shard headers, and per-column lines must
/// re-export byte-for-byte. Any accidental format drift (reordered
/// columns, changed separators, new header fields) fails here before
/// it silently invalidates every archived checkpoint and bundle.
#[test]
fn committed_v3_fixture_pins_the_columnar_grammar() {
    let text = include_str!("fixtures/capture_db_v3.txt");
    let db = import_db(text).expect("committed v3 fixture must import");
    assert_eq!(db.len(), 20);
    assert_eq!(db.domain_count(), 8);
    assert!(
        export_db(&db) == text,
        "v3 re-export drifted from the committed fixture bytes"
    );

    // The fixture is the upgraded form of the v2 fixture: both commit
    // the same logical database, so the upgrade path is pinned too.
    let v2 = import_db(include_str!("fixtures/capture_db_v2.txt")).unwrap();
    assert!(
        export_db(&v2) == text,
        "v2 upgrade no longer produces the committed v3 bytes"
    );

    // Spot-check the columnar round-trip kept the histories intact.
    let hist = db.domain_history("travel.example");
    assert_eq!(hist.len(), 3);
    assert!(hist[2].dialog_visible);
}
