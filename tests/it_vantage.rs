//! Vantage-point mechanics across crates: the same site measured from
//! different locations/timings yields the paper's systematic differences.

use consent_fingerprint::Detector;
use consent_httpsim::{CaptureOptions, Engine, Location, Timing, Vantage};
use consent_util::{Day, SeedTree};
use consent_webgraph::{AdoptionConfig, GeoBehavior, Reachability, World, WorldConfig};

fn world() -> World {
    World::new(WorldConfig {
        n_sites: 40_000,
        seed: 2_024,
        adoption: AdoptionConfig::default(),
    })
}

/// Count detections over a rank range at one vantage.
fn count(w: &World, vantage: Vantage, day: Day, upto: u32) -> usize {
    let engine = Engine::new(w, SeedTree::new(3));
    let det = Detector::hostname_only();
    (1..=upto)
        .filter(|&r| {
            let p = w.profile(r);
            if p.reachability != Reachability::Ok {
                return false;
            }
            let c = engine.capture(
                &format!("https://{}/", p.domain),
                day,
                vantage,
                CaptureOptions::default(),
            );
            !det.detect(&c).is_empty()
        })
        .count()
}

#[test]
fn us_vantage_misses_eu_gated_cmps() {
    let w = world();
    let day = Day::from_ymd(2020, 5, 15);
    let us = count(&w, Vantage::us_cloud(), day, 4_000);
    let eu = count(&w, Vantage::eu_cloud(), day, 4_000);
    assert!(us < eu, "US {us} should be below EU {eu}");
    let ratio = us as f64 / eu as f64;
    // Paper Table 1: 729/807 ≈ 0.90 between the two clouds.
    assert!((0.78..0.99).contains(&ratio), "US/EU ratio {ratio}");
}

#[test]
fn university_beats_cloud_by_antibot_margin() {
    let w = world();
    let day = Day::from_ymd(2020, 5, 15);
    let eu_cloud = count(&w, Vantage::eu_cloud(), day, 4_000);
    let uni = count(
        &w,
        Vantage {
            location: Location::EuUniversity,
            timing: Timing::Aggressive,
            language: consent_httpsim::Language::EnUs,
        },
        day,
        4_000,
    );
    assert!(uni > eu_cloud, "university {uni} !> cloud {eu_cloud}");
    let miss = 1.0 - eu_cloud as f64 / uni as f64;
    // Paper §3.5: cloud address space misses about 10%.
    assert!((0.04..0.20).contains(&miss), "anti-bot miss rate {miss}");
}

#[test]
fn extended_timing_catches_slow_loaders() {
    let w = world();
    let day = Day::from_ymd(2020, 5, 15);
    let uni = |timing| Vantage {
        location: Location::EuUniversity,
        timing,
        language: consent_httpsim::Language::EnUs,
    };
    let fast = count(&w, uni(Timing::Aggressive), day, 4_000);
    let ext = count(&w, uni(Timing::Extended), day, 4_000);
    assert!(ext >= fast);
    let miss = 1.0 - fast as f64 / ext as f64;
    // Paper §3.5: aggressive timeouts miss about 2%.
    assert!(miss < 0.08, "timeout miss rate {miss}");
}

#[test]
fn hide_from_eu_sites_visible_only_from_us() {
    let w = world();
    let day = Day::from_ymd(2020, 5, 15);
    let engine = Engine::new(&w, SeedTree::new(4));
    let det = Detector::hostname_only();
    let p = (1..=40_000u32)
        .map(|r| w.profile(r))
        .find(|p| {
            p.cmp_on(day).is_some()
                && p.reachability == Reachability::Ok
                && p.behavior.as_ref().is_some_and(|b| {
                    b.geo == GeoBehavior::HideFromEu && !b.anti_bot_cdn && !b.slow_load
                })
        })
        .expect("CCPA-gated site exists");
    let url = format!("https://{}/", p.domain);
    let us = engine.capture(&url, day, Vantage::us_cloud(), CaptureOptions::default());
    let eu = engine.capture(&url, day, Vantage::eu_cloud(), CaptureOptions::default());
    assert!(!det.detect(&us).is_empty(), "visible from the US");
    assert!(det.detect(&eu).is_empty(), "hidden from the EU");
}
